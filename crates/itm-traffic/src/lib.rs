//! # itm-traffic — ground-truth users, services, and traffic
//!
//! The substrate's answer to "what would a CDN's server logs say?". The
//! paper scores every technique against proprietary ground truth (Microsoft
//! CDN flow logs, ISP subscriber counts); this crate plays that role with a
//! generative model that has the skew the paper's Internet has:
//!
//! * [`services`]: a catalogue of popular services with Zipf popularity,
//!   ownership (hypergiant-operated or cloud-hosted — §1: "Most user-facing
//!   traffic flows from a handful of large providers. Most other large
//!   services are hosted by one of a few large cloud providers"), delivery
//!   mode (DNS redirection / anycast / custom URLs, §3.2.3), and ECS
//!   support flags (the §3.2.3 adoption statistics).
//! * [`users`]: heavy-tailed per-prefix user populations and per-AS
//!   subscriber counts (the ground truth Figure 2 plots on its y-axis).
//! * [`model`]: the traffic matrix — demand between every user prefix and
//!   every service, with diurnal modulation, factored so that multi-million
//!   cell matrices need no storage.
//! * [`apnic`]: a noisy AS-granularity population estimator reproducing
//!   the documented properties of APNIC's per-network user data \[33\]:
//!   unvalidated, coarse, incomplete, but rank-correlated with truth.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod apnic;
pub mod model;
pub mod objects;
pub mod services;
pub mod users;

pub use apnic::{ApnicConfig, ApnicEstimates};
pub use model::{TrafficConfig, TrafficModel};
pub use objects::ObjectModel;
pub use services::{DeliveryMode, Service, ServiceCatalog, ServiceCatalogConfig, ServiceOwner};
pub use users::UserModel;
