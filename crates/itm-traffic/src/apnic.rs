//! An APNIC-like per-AS population estimator.
//!
//! The paper's stance on APNIC's data \[33\]: "the data are coarse-grained,
//! and the approach has not been validated" (§1), "APNIC aggregates data at
//! an AS granularity, which is too coarse-grained for many use cases"
//! (§3.1.1), yet "they likely capture the major eyeball networks in each
//! country" (§2.2). The estimator therefore: (a) only reports at AS
//! granularity, (b) multiplies truth by log-normal noise, (c) misses small
//! networks entirely (its ad-based sampling never observes them), and (d)
//! keeps large networks' *ranks* mostly right — which is exactly the
//! property Figure 2 relies on.

use crate::users::UserModel;
use itm_topology::Topology;
use itm_types::rng::{lognormal, SeedDomain};
use itm_types::{Asn, Country};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Noisy per-AS user estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApnicEstimates {
    /// estimate[asn]; `None` = network not in the dataset.
    estimates: Vec<Option<f64>>,
}

/// Noise/coverage parameters for the estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApnicConfig {
    /// σ of the log-normal multiplicative error.
    pub noise_sigma: f64,
    /// Networks below this many users are likely missed; coverage
    /// probability ramps from ~0 at 0 users to ~1 at 10× this threshold.
    pub coverage_threshold: f64,
}

impl Default for ApnicConfig {
    fn default() -> Self {
        ApnicConfig {
            noise_sigma: 0.35,
            coverage_threshold: 200.0,
        }
    }
}

impl ApnicEstimates {
    /// Produce estimates from ground truth.
    pub fn generate(
        topo: &Topology,
        users: &UserModel,
        cfg: &ApnicConfig,
        seeds: &SeedDomain,
    ) -> ApnicEstimates {
        let seeds = seeds.child("apnic");
        let mut estimates = vec![None; topo.n_ases()];
        for a in &topo.ases {
            let truth = users.subscribers(a.asn);
            if truth <= 0.0 {
                continue; // non-eyeball networks have no user estimate
            }
            let mut rng = seeds.rng_indexed("as", a.asn.raw() as u64);
            // Coverage: sigmoid in log-space around the threshold.
            let x = (truth / cfg.coverage_threshold).ln();
            let p_covered = 1.0 / (1.0 + (-1.2 * x).exp());
            if !rng.gen_bool(p_covered.clamp(0.0, 1.0)) {
                continue;
            }
            estimates[a.asn.index()] = Some(truth * lognormal(&mut rng, 0.0, cfg.noise_sigma));
        }
        ApnicEstimates { estimates }
    }

    /// The estimate for an AS, if the dataset covers it.
    pub fn estimate(&self, asn: Asn) -> Option<f64> {
        self.estimates[asn.index()]
    }

    /// Number of covered networks.
    pub fn covered(&self) -> usize {
        self.estimates.iter().filter(|e| e.is_some()).count()
    }

    /// Estimated users of a country: sum over covered ASes home-countried
    /// there (how Figure 1b's shading denominates coverage).
    pub fn country_users(&self, topo: &Topology, c: Country) -> f64 {
        topo.ases
            .iter()
            .filter(|a| a.home_country == c)
            .filter_map(|a| self.estimate(a.asn))
            .sum()
    }

    /// Total estimated Internet population.
    pub fn total(&self) -> f64 {
        self.estimates.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, AsClass, TopologyConfig};
    use itm_types::stats::spearman;

    fn setup() -> (Topology, UserModel, ApnicEstimates) {
        let t = generate(&TopologyConfig::small(), 17).unwrap();
        let u = UserModel::generate(&t, &SeedDomain::new(17));
        let a = ApnicEstimates::generate(&t, &u, &ApnicConfig::default(), &SeedDomain::new(17));
        (t, u, a)
    }

    #[test]
    fn covers_large_networks_misses_tiny_ones() {
        let (t, u, a) = setup();
        let mut large_covered = 0;
        let mut large_total = 0;
        for asinfo in t.ases_of_class(AsClass::Eyeball) {
            if u.subscribers(asinfo.asn) > 2000.0 {
                large_total += 1;
                if a.estimate(asinfo.asn).is_some() {
                    large_covered += 1;
                }
            }
        }
        assert!(large_total > 0);
        assert!(
            large_covered as f64 / large_total as f64 > 0.9,
            "major eyeballs covered {large_covered}/{large_total}"
        );
        // Overall coverage is partial — small networks are missing.
        let eyeballs =
            t.ases_of_class(AsClass::Eyeball).count() + t.ases_of_class(AsClass::Stub).count();
        assert!(
            a.covered() < eyeballs,
            "nothing was missed — too optimistic"
        );
    }

    #[test]
    fn estimates_are_rank_correlated_with_truth() {
        let (t, u, a) = setup();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for asinfo in t.ases_of_class(AsClass::Eyeball) {
            if let Some(est) = a.estimate(asinfo.asn) {
                xs.push(u.subscribers(asinfo.asn));
                ys.push(est);
            }
        }
        let rho = spearman(&xs, &ys).unwrap();
        assert!(rho > 0.8, "spearman {rho}");
    }

    #[test]
    fn no_estimates_for_userless_networks() {
        let (t, u, a) = setup();
        for asinfo in &t.ases {
            if u.subscribers(asinfo.asn) == 0.0 {
                assert!(a.estimate(asinfo.asn).is_none());
            }
        }
    }

    #[test]
    fn totals_are_same_order_as_truth() {
        let (_, u, a) = setup();
        let ratio = a.total() / u.total();
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        let t = generate(&TopologyConfig::small(), 17).unwrap();
        let u = UserModel::generate(&t, &SeedDomain::new(17));
        let a = ApnicEstimates::generate(&t, &u, &ApnicConfig::default(), &SeedDomain::new(9));
        let b = ApnicEstimates::generate(&t, &u, &ApnicConfig::default(), &SeedDomain::new(9));
        for i in 0..t.n_ases() {
            assert_eq!(a.estimate(Asn(i as u32)), b.estimate(Asn(i as u32)));
        }
    }
}
