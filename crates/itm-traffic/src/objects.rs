//! Content-object popularity model.
//!
//! §3.2.3 closes with a proposed validation: "it is critical to understand
//! the efficacy of these caches. A community-driven project could host
//! caches inside research networks/universities, to measure the cache hit
//! rate under normal operation and during flash events." Cache efficacy is
//! determined by *object-level* request statistics, which this module
//! models: each service exposes a catalogue of objects with Zipf
//! popularity, and a *flash event* concentrates a burst of extra requests
//! on a handful of objects (a live event, a viral video).
//!
//! The module also implements the Che approximation for LRU hit rates —
//! the standard analytical tool the simulated cache (in `itm-measure`) is
//! validated against.

use itm_types::rng::zipf_index;
use itm_types::ServiceId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Object-popularity parameters of one service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectModel {
    /// The service.
    pub service: ServiceId,
    /// Number of distinct objects in the catalogue.
    pub n_objects: usize,
    /// Zipf exponent of object popularity (video ≈ 0.8, web ≈ 1.0).
    pub zipf_exponent: f64,
}

impl ObjectModel {
    /// A typical catalogue for a service of a given popularity rank:
    /// bigger services have (much) larger catalogues.
    pub fn typical(service: ServiceId, rank: usize) -> ObjectModel {
        ObjectModel {
            service,
            n_objects: (200_000 / (rank + 1)).clamp(2_000, 200_000),
            zipf_exponent: 0.9,
        }
    }

    /// Draw the object id of one request under normal operation.
    pub fn draw_object<R: Rng>(&self, rng: &mut R) -> u32 {
        zipf_index(rng, self.n_objects, self.zipf_exponent) as u32
    }

    /// Draw one request during a flash event: with probability
    /// `flash_share`, the request targets one of `flash_objects` hot
    /// objects; otherwise the normal catalogue.
    pub fn draw_object_flash<R: Rng>(
        &self,
        rng: &mut R,
        flash_share: f64,
        flash_objects: u32,
    ) -> u32 {
        if rng.gen_bool(flash_share.clamp(0.0, 1.0)) {
            // Hot set ids live beyond the normal catalogue so they are
            // distinguishable (fresh content nobody has cached yet).
            self.n_objects as u32 + rng.gen_range(0..flash_objects.max(1))
        } else {
            self.draw_object(rng)
        }
    }

    /// The Che approximation of the stationary LRU hit rate for a cache of
    /// `capacity` objects under this popularity law (IRM assumption).
    ///
    /// Solves `capacity = Σ_i (1 − exp(−q_i · t_C))` for the characteristic
    /// time `t_C` by bisection, then returns
    /// `hit = Σ_i q_i (1 − exp(−q_i · t_C))`.
    pub fn che_hit_rate(&self, capacity: usize) -> f64 {
        if capacity == 0 {
            return 0.0;
        }
        if capacity >= self.n_objects {
            return 1.0;
        }
        let n = self.n_objects;
        let norm: f64 = (1..=n)
            .map(|k| 1.0 / (k as f64).powf(self.zipf_exponent))
            .sum();
        let q: Vec<f64> = (1..=n)
            .map(|k| 1.0 / (k as f64).powf(self.zipf_exponent) / norm)
            .collect();
        let occupancy = |t: f64| -> f64 { q.iter().map(|&qi| 1.0 - (-qi * t).exp()).sum() };
        // Bisection on t_C: occupancy is increasing in t.
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        while occupancy(hi) < capacity as f64 {
            hi *= 2.0;
            if hi > 1e18 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if occupancy(mid) < capacity as f64 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t_c = 0.5 * (lo + hi);
        q.iter().map(|&qi| qi * (1.0 - (-qi * t_c).exp())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_types::SeedDomain;

    #[test]
    fn typical_catalogues_shrink_with_rank() {
        let top = ObjectModel::typical(ServiceId(0), 0);
        let tail = ObjectModel::typical(ServiceId(99), 99);
        assert!(top.n_objects > tail.n_objects);
        assert!(tail.n_objects >= 2_000);
    }

    #[test]
    fn draws_are_in_range_and_skewed() {
        let m = ObjectModel {
            service: ServiceId(0),
            n_objects: 1000,
            zipf_exponent: 1.0,
        };
        let mut rng = SeedDomain::new(5).rng("obj");
        let mut head = 0;
        for _ in 0..5000 {
            let o = m.draw_object(&mut rng);
            assert!((o as usize) < m.n_objects);
            if o < 10 {
                head += 1;
            }
        }
        // Top-10 objects of 1000 should draw far above uniform (1%).
        assert!(head > 500, "head draws {head}");
    }

    #[test]
    fn flash_draws_hit_the_hot_set() {
        let m = ObjectModel {
            service: ServiceId(0),
            n_objects: 100,
            zipf_exponent: 1.0,
        };
        let mut rng = SeedDomain::new(6).rng("flash");
        let mut hot = 0;
        let trials = 4000;
        for _ in 0..trials {
            let o = m.draw_object_flash(&mut rng, 0.6, 3);
            if o >= 100 {
                assert!(o < 103);
                hot += 1;
            }
        }
        let share = hot as f64 / trials as f64;
        assert!((share - 0.6).abs() < 0.05, "hot share {share}");
    }

    #[test]
    fn che_is_monotone_and_bounded() {
        let m = ObjectModel {
            service: ServiceId(0),
            n_objects: 10_000,
            zipf_exponent: 0.9,
        };
        let h100 = m.che_hit_rate(100);
        let h1000 = m.che_hit_rate(1000);
        let h5000 = m.che_hit_rate(5000);
        assert!(h100 > 0.0 && h100 < h1000 && h1000 < h5000 && h5000 < 1.0);
        assert_eq!(m.che_hit_rate(0), 0.0);
        assert_eq!(m.che_hit_rate(10_000), 1.0);
        // Zipf 0.9 with 10% capacity caches well above 10% of requests.
        assert!(h1000 > 0.3, "h1000 {h1000}");
    }
}
