//! The popular-service catalogue.
//!
//! §2 scopes the map to popular services: "With a small number of cloud and
//! content providers responsible for 90% of Internet traffic, focusing on
//! popular services provides most of the utility". Each service here has an
//! owner (a hypergiant running its own platform, or a tenant hosted on a
//! cloud), Zipf popularity, a delivery mode (§3.2.3 distinguishes DNS
//! redirection, anycast, and per-client custom URLs), and DNS/ECS metadata
//! that the measurement techniques key on.

use itm_topology::{AsClass, Topology};
use itm_types::rng::{weighted_choice, zipf_weights, SeedDomain};
use itm_types::{Asn, ServiceId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Who operates a service's serving infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceOwner {
    /// A hypergiant's own property (search, social, video…).
    Hypergiant(Asn),
    /// A third-party tenant hosted on a public cloud.
    CloudTenant {
        /// The cloud AS hosting the tenant.
        cloud: Asn,
    },
}

impl ServiceOwner {
    /// The AS whose infrastructure serves the service.
    pub fn serving_as(self) -> Asn {
        match self {
            ServiceOwner::Hypergiant(a) => a,
            ServiceOwner::CloudTenant { cloud } => cloud,
        }
    }
}

/// How clients are directed to a serving site (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Authoritative DNS returns a nearby unicast front-end.
    DnsRedirection,
    /// One anycast prefix; BGP picks the site.
    Anycast,
    /// DNS/anycast bootstrap, then per-client custom URLs for the payload
    /// (typical of video-on-demand; §3.2.3 argues these flows land on
    /// near-optimal sites).
    CustomUrl,
}

/// One popular service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Service {
    /// Dense id; also the popularity rank (0 = most popular).
    pub id: ServiceId,
    /// DNS name clients resolve.
    pub domain: String,
    /// Operator.
    pub owner: ServiceOwner,
    /// Fraction of total user-facing traffic (Zipf; sums to 1).
    pub traffic_share: f64,
    /// Client-direction mechanism.
    pub mode: DeliveryMode,
    /// Whether the service's authoritative DNS honours EDNS0 Client
    /// Subnet. Gates cache probing (§3.1.2) and user→host mapping (§3.2).
    pub ecs_support: bool,
    /// DNS record TTL in seconds — the granularity limit of cache probing
    /// ("caches hide the number of queries within a TTL", §3.1.3).
    pub ttl_secs: u32,
}

/// Configuration for catalogue generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceCatalogConfig {
    /// Number of services to generate.
    pub n_services: usize,
    /// Zipf exponent of traffic shares (≈1.0 matches measured skew).
    pub popularity_exponent: f64,
    /// Fraction of services operated by hypergiants (the rest are cloud
    /// tenants). Hypergiants are favoured at the top of the ranking.
    pub hypergiant_share: f64,
    /// Probability that a top-20 service supports ECS (§3.2.3 reports
    /// 15/20 — default 0.75).
    pub top_ecs_rate: f64,
    /// Probability that a tail service supports ECS.
    pub tail_ecs_rate: f64,
}

impl Default for ServiceCatalogConfig {
    fn default() -> Self {
        ServiceCatalogConfig {
            n_services: 200,
            popularity_exponent: 1.0,
            hypergiant_share: 0.45,
            top_ecs_rate: 0.75,
            tail_ecs_rate: 0.45,
        }
    }
}

impl ServiceCatalogConfig {
    /// A small catalogue for unit tests.
    pub fn small() -> Self {
        ServiceCatalogConfig {
            n_services: 30,
            ..Default::default()
        }
    }
}

/// The generated catalogue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceCatalog {
    /// Services in rank order (index = id = popularity rank).
    pub services: Vec<Service>,
}

impl ServiceCatalog {
    /// Generate a catalogue bound to a topology's hypergiants and clouds.
    pub fn generate(
        cfg: &ServiceCatalogConfig,
        topo: &Topology,
        seeds: &SeedDomain,
    ) -> ServiceCatalog {
        let seeds = seeds.child("services");
        let mut rng = seeds.rng("catalog");
        let hypergiants = topo.hypergiants();
        let clouds = topo.clouds();
        assert!(!hypergiants.is_empty(), "catalogue needs hypergiants");
        let shares = zipf_weights(cfg.n_services, cfg.popularity_exponent);

        // Hypergiant size factors weight which hypergiant owns a property.
        let hg_weights: Vec<f64> = hypergiants
            .iter()
            .map(|&h| topo.as_info(h).size_factor)
            .collect();
        let cloud_weights: Vec<f64> = clouds
            .iter()
            .map(|&c| topo.as_info(c).size_factor)
            .collect();

        let mut services = Vec::with_capacity(cfg.n_services);
        for (rank, &share) in shares.iter().enumerate() {
            // Top of the ranking skews hypergiant: P(hg | rank) decays from
            // ~0.95 toward the configured share.
            let p_hg =
                cfg.hypergiant_share + (0.95 - cfg.hypergiant_share) / (1.0 + rank as f64 / 8.0);
            // `weighted_choice` is None only for an all-zero weight table;
            // size factors are strictly positive, and the first entry is a
            // deterministic fallback rather than a panic.
            let owner = if rng.gen_bool(p_hg.clamp(0.0, 1.0)) {
                ServiceOwner::Hypergiant(
                    hypergiants[weighted_choice(&mut rng, &hg_weights).unwrap_or(0)],
                )
            } else if clouds.is_empty() {
                ServiceOwner::Hypergiant(hypergiants[0])
            } else {
                ServiceOwner::CloudTenant {
                    cloud: clouds[weighted_choice(&mut rng, &cloud_weights).unwrap_or(0)],
                }
            };
            // Delivery mode: video-scale top properties use custom URLs;
            // a minority of services are anycast-fronted; the rest use
            // classic DNS redirection.
            let mode = if rank < cfg.n_services / 10 && rng.gen_bool(0.35) {
                DeliveryMode::CustomUrl
            } else if rng.gen_bool(if rank < 20 { 0.10 } else { 0.22 }) {
                DeliveryMode::Anycast
            } else {
                DeliveryMode::DnsRedirection
            };
            // ECS adoption skews toward the heaviest properties (§3.2.3:
            // the supporters among the top 20 carry 91% of its traffic).
            let ecs_rate = if rank < 8 {
                0.92f64.max(cfg.top_ecs_rate)
            } else if rank < 20 {
                cfg.top_ecs_rate
            } else {
                cfg.tail_ecs_rate
            };
            // Anycast services answer identically everywhere; ECS is moot
            // but some still echo it. Custom-URL bootstrap DNS usually
            // supports ECS (they care about proximity).
            let ecs_support = match mode {
                DeliveryMode::Anycast => rng.gen_bool(0.2),
                _ => rng.gen_bool(ecs_rate),
            };
            services.push(Service {
                id: ServiceId(rank as u32),
                domain: format!("svc{rank}.example"),
                owner,
                traffic_share: share,
                mode,
                ecs_support,
                ttl_secs: [30u32, 60, 120, 300][rng.gen_range(0..4)],
            });
        }
        ServiceCatalog { services }
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Service by id.
    pub fn get(&self, id: ServiceId) -> &Service {
        &self.services[id.index()]
    }

    /// Look up a service by DNS name.
    pub fn by_domain(&self, domain: &str) -> Option<&Service> {
        self.services.iter().find(|s| s.domain == domain)
    }

    /// Services operated by one provider AS (owned or hosted).
    pub fn served_by(&self, asn: Asn) -> impl Iterator<Item = &Service> {
        self.services
            .iter()
            .filter(move |s| s.owner.serving_as() == asn)
    }

    /// Total traffic share of a provider AS.
    pub fn provider_share(&self, asn: Asn) -> f64 {
        self.served_by(asn).map(|s| s.traffic_share).sum()
    }

    /// The top `k` services by share.
    pub fn top(&self, k: usize) -> &[Service] {
        &self.services[..k.min(self.services.len())]
    }

    /// Traffic share of hypergiant-operated + cloud-hosted services per
    /// provider, descending: the consolidation rollup (E13).
    pub fn provider_shares(&self, topo: &Topology) -> Vec<(Asn, f64)> {
        let mut out: Vec<(Asn, f64)> = topo
            .ases
            .iter()
            .filter(|a| matches!(a.class, AsClass::Hypergiant | AsClass::Cloud))
            .map(|a| (a.asn, self.provider_share(a.asn)))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};

    fn setup() -> (Topology, ServiceCatalog) {
        let t = generate(&TopologyConfig::small(), 3).unwrap();
        let c = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &t, &SeedDomain::new(3));
        (t, c)
    }

    #[test]
    fn shares_sum_to_one_and_decay() {
        let (_, c) = setup();
        let sum: f64 = c.services.iter().map(|s| s.traffic_share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in c.services.windows(2) {
            assert!(w[0].traffic_share > w[1].traffic_share);
        }
    }

    #[test]
    fn owners_are_content_ases() {
        let (t, c) = setup();
        for s in &c.services {
            assert!(t.as_info(s.owner.serving_as()).class.is_content());
        }
    }

    #[test]
    fn top_ranks_skew_hypergiant() {
        let (_, c) = setup();
        let top_hg = c
            .top(10)
            .iter()
            .filter(|s| matches!(s.owner, ServiceOwner::Hypergiant(_)))
            .count();
        assert!(top_hg >= 6, "only {top_hg}/10 top services are hypergiant");
    }

    #[test]
    fn generation_is_deterministic() {
        let t = generate(&TopologyConfig::small(), 3).unwrap();
        let a = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &t, &SeedDomain::new(5));
        let b = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &t, &SeedDomain::new(5));
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.owner, y.owner);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.ecs_support, y.ecs_support);
        }
    }

    #[test]
    fn lookup_and_rollups() {
        let (t, c) = setup();
        assert!(c.by_domain("svc0.example").is_some());
        assert!(c.by_domain("nonexistent.example").is_none());
        let shares = c.provider_shares(&t);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Descending.
        for w in shares.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn ttls_are_from_the_menu() {
        let (_, c) = setup();
        for s in &c.services {
            assert!([30, 60, 120, 300].contains(&s.ttl_secs));
        }
    }
}
