//! The ground-truth traffic matrix.
//!
//! Demand between user prefix `p` and service `s` factors as
//!
//! ```text
//! demand(p, s) = users(p) · intensity(p) · per_user_rate
//!                · share(s) · affinity(p, s)
//! ```
//!
//! where `affinity` is deterministic log-normal noise keyed on `(p, s)` —
//! so the full matrix (millions of cells) is computable on demand with no
//! storage, yet every cell is stable across queries and runs. Diurnal
//! modulation multiplies in the activity curve at the prefix's longitude
//! (traffic peaks follow the sun; §3.1.3's IP ID diurnality and the cache
//! hit-rate signal both derive from this).
//!
//! The matrix answers the scoring questions the paper poses:
//! "prefixes identified … responsible for 95% of Microsoft CDN traffic"
//! becomes [`TrafficModel::provider_coverage`] over a candidate prefix set.

use crate::services::{Service, ServiceCatalog};
use crate::users::UserModel;
use itm_topology::Topology;
use itm_types::{Asn, Bps, DiurnalCurve, PrefixId, SeedDomain, ServiceId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Traffic model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Mean busy-hour traffic per user, in kbps (downstream).
    pub per_user_kbps: f64,
    /// σ of the per-(prefix, service) affinity noise.
    pub affinity_sigma: f64,
    /// The diurnal shape applied to all user prefixes.
    pub diurnal: DiurnalCurve,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            per_user_kbps: 150.0,
            affinity_sigma: 0.4,
            diurnal: DiurnalCurve::default(),
        }
    }
}

/// The assembled ground-truth traffic model.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    cfg: TrafficConfig,
    /// Cached mean of the diurnal curve over a day (used on every
    /// time-modulated query; recomputing it is 1,440 trig calls).
    diurnal_mean: f64,
    /// Cached per-prefix daily-mean total demand (bps).
    prefix_total: Vec<f64>,
    /// Cached per-service totals (bps).
    service_total: Vec<f64>,
    /// Cached per-AS totals (bps, by prefix owner).
    as_total: Vec<f64>,
    /// Solar offset per prefix (from its anchor city), for diurnal math.
    solar_offset: Vec<f64>,
    /// Seed for affinity noise.
    affinity_seed: u64,
    n_services: usize,
}

impl TrafficModel {
    /// Build the model (O(prefixes × services) once, to cache totals).
    pub fn build(
        topo: &Topology,
        users: &UserModel,
        catalog: &ServiceCatalog,
        cfg: TrafficConfig,
        seeds: &SeedDomain,
    ) -> TrafficModel {
        let affinity_seed = seeds.child("traffic").seed("affinity");
        let n_p = topo.prefixes.len();
        let n_s = catalog.len();
        let mut prefix_total = vec![0.0; n_p];
        let mut service_total = vec![0.0; n_s];
        let mut as_total = vec![0.0; topo.n_ases()];
        let mut solar_offset = vec![0.0; n_p];

        for r in topo.prefixes.iter() {
            solar_offset[r.id.index()] = topo.city_location(r.city).solar_offset_hours();
            let base = users.users_of(r.id) * users.intensity_of(r.id) * cfg.per_user_kbps * 1e3;
            if base <= 0.0 {
                continue;
            }
            let mut p_total = 0.0;
            for s in &catalog.services {
                let d = base
                    * s.traffic_share
                    * affinity(affinity_seed, r.id, s.id, cfg.affinity_sigma);
                p_total += d;
                service_total[s.id.index()] += d;
            }
            prefix_total[r.id.index()] = p_total;
            as_total[r.owner.index()] += p_total;
        }

        TrafficModel {
            diurnal_mean: cfg.diurnal.daily_mean(),
            cfg,
            prefix_total,
            service_total,
            as_total,
            solar_offset,
            affinity_seed,
            n_services: n_s,
        }
    }

    /// Shift the diurnal activity peak by `hours` (mod 24) — the epoch
    /// engine's phase-drift hook (seasonal daylight shifts, population
    /// behaviour changes). Daily-mean demand is phase-free, so cached
    /// totals stay valid; only the cached curve mean is recomputed (the
    /// mean is phase-invariant for the analytic curve, but recomputing
    /// keeps the cache definitionally correct if the curve shape changes).
    pub fn shift_diurnal_phase(&mut self, hours: f64) {
        self.cfg.diurnal.peak_hour = (self.cfg.diurnal.peak_hour + hours).rem_euclid(24.0);
        self.diurnal_mean = self.cfg.diurnal.daily_mean();
    }

    /// Daily-mean demand between a prefix and a service.
    pub fn demand(
        &self,
        topo: &Topology,
        users: &UserModel,
        catalog: &ServiceCatalog,
        p: PrefixId,
        s: ServiceId,
    ) -> Bps {
        let _ = topo;
        let svc = catalog.get(s);
        let base = users.users_of(p) * users.intensity_of(p) * self.cfg.per_user_kbps * 1e3;
        Bps(base * svc.traffic_share * affinity(self.affinity_seed, p, s, self.cfg.affinity_sigma))
    }

    /// Demand at a specific time (diurnal-modulated, normalized so the
    /// daily mean equals [`TrafficModel::demand`]).
    pub fn demand_at(
        &self,
        topo: &Topology,
        users: &UserModel,
        catalog: &ServiceCatalog,
        p: PrefixId,
        s: ServiceId,
        t: SimTime,
    ) -> Bps {
        let m = self.cfg.diurnal.at(t, self.solar_offset[p.index()]) / self.diurnal_mean;
        self.demand(topo, users, catalog, p, s) * m
    }

    /// Diurnal multiplier for a prefix at time `t` (mean 1.0 over a day).
    pub fn diurnal_multiplier(&self, p: PrefixId, t: SimTime) -> f64 {
        self.cfg.diurnal.at(t, self.solar_offset[p.index()]) / self.diurnal_mean
    }

    /// Diurnal multiplier for an arbitrary solar offset (mean 1.0 over a
    /// day) — for locations that are not prefixes (e.g. resolver PoPs).
    pub fn diurnal_multiplier_at(&self, solar_offset_hours: f64, t: SimTime) -> f64 {
        self.cfg.diurnal.at(t, solar_offset_hours) / self.diurnal_mean
    }

    /// Daily-mean total demand originated by a prefix, over all services.
    pub fn prefix_total(&self, p: PrefixId) -> Bps {
        Bps(self.prefix_total[p.index()])
    }

    /// Daily-mean total demand of one service.
    pub fn service_total(&self, s: ServiceId) -> Bps {
        Bps(self.service_total[s.index()])
    }

    /// Daily-mean demand of all prefixes owned by an AS.
    pub fn as_total(&self, asn: Asn) -> Bps {
        Bps(self.as_total[asn.index()])
    }

    /// Total Internet user-facing traffic.
    pub fn grand_total(&self) -> Bps {
        Bps(self.prefix_total.iter().sum())
    }

    /// Traffic share served by each provider AS (E13's rollup).
    pub fn provider_totals(&self, catalog: &ServiceCatalog) -> Vec<(Asn, Bps)> {
        use std::collections::HashMap;
        let mut acc: HashMap<Asn, f64> = HashMap::new();
        for s in &catalog.services {
            *acc.entry(s.owner.serving_as()).or_insert(0.0) += self.service_total[s.id.index()];
        }
        let mut v: Vec<(Asn, Bps)> = acc.into_iter().map(|(a, x)| (a, Bps(x))).collect();
        v.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0).then(a.0.cmp(&b.0)));
        v
    }

    /// The fraction of a provider's traffic that originates from a given
    /// set of client prefixes — the paper's coverage metric ("prefixes
    /// responsible for 95% of Microsoft CDN traffic", §3.1.2). `provider`
    /// restricts to services served by that AS; `None` scores against all
    /// traffic.
    pub fn provider_coverage(
        &self,
        topo: &Topology,
        users: &UserModel,
        catalog: &ServiceCatalog,
        prefixes: &BTreeSet<PrefixId>,
        provider: Option<Asn>,
    ) -> f64 {
        // All-services coverage reduces to the cached per-prefix totals
        // (the demand cells sum to them by construction).
        let services: Vec<&Service> = match provider {
            Some(a) => catalog.served_by(a).collect(),
            None => Vec::new(),
        };
        if provider.is_some() && services.is_empty() {
            return 0.0;
        }
        let mut covered = 0.0;
        let mut total = 0.0;
        for r in topo.prefixes.iter() {
            let u = users.users_of(r.id);
            if u <= 0.0 {
                continue;
            }
            let d = if provider.is_none() {
                self.prefix_total[r.id.index()]
            } else {
                let mut d = 0.0;
                for s in &services {
                    d += self.demand(topo, users, catalog, r.id, s.id).raw();
                }
                d
            };
            total += d;
            if prefixes.contains(&r.id) {
                covered += d;
            }
        }
        if total > 0.0 {
            covered / total
        } else {
            0.0
        }
    }

    /// Same coverage metric at AS granularity (for the root-log technique,
    /// which only resolves ASes — §3.1.2 approach 2).
    pub fn provider_coverage_as(
        &self,
        topo: &Topology,
        users: &UserModel,
        catalog: &ServiceCatalog,
        ases: &BTreeSet<Asn>,
        provider: Option<Asn>,
    ) -> f64 {
        let all: BTreeSet<PrefixId> = topo
            .prefixes
            .iter()
            .filter(|r| ases.contains(&r.owner))
            .map(|r| r.id)
            .collect();
        self.provider_coverage(topo, users, catalog, &all, provider)
    }

    /// Number of services in the bound catalogue.
    pub fn n_services(&self) -> usize {
        self.n_services
    }
}

/// Deterministic log-normal affinity noise keyed on (seed, prefix, service).
fn affinity(seed: u64, p: PrefixId, s: ServiceId, sigma: f64) -> f64 {
    // SplitMix hash to two uniforms, then Box–Muller.
    use itm_types::rng::mix64 as mix;
    let k = mix(seed ^ mix(((p.raw() as u64) << 32) | s.raw() as u64));
    let u1 = ((k >> 11) as f64 / (1u64 << 53) as f64).max(f64::EPSILON);
    let u2 = (mix(k) >> 11) as f64 / (1u64 << 53) as f64;
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    // Mean-one log-normal: exp(σz − σ²/2).
    (sigma * z - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::ServiceCatalogConfig;
    use itm_topology::{generate, TopologyConfig};
    use itm_types::SimDuration;

    fn setup() -> (Topology, UserModel, ServiceCatalog, TrafficModel) {
        let t = generate(&TopologyConfig::small(), 23).unwrap();
        let seeds = SeedDomain::new(23);
        let u = UserModel::generate(&t, &seeds);
        let c = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &t, &seeds);
        let m = TrafficModel::build(&t, &u, &c, TrafficConfig::default(), &seeds);
        (t, u, c, m)
    }

    #[test]
    fn totals_are_consistent() {
        let (t, _, c, m) = setup();
        let by_prefix: f64 = t.prefixes.iter().map(|r| m.prefix_total(r.id).raw()).sum();
        let by_service: f64 = c.services.iter().map(|s| m.service_total(s.id).raw()).sum();
        let by_as: f64 = t.ases.iter().map(|a| m.as_total(a.asn).raw()).sum();
        assert!((by_prefix - by_service).abs() / by_prefix < 1e-9);
        assert!((by_prefix - by_as).abs() / by_prefix < 1e-9);
        assert!((m.grand_total().raw() - by_prefix).abs() / by_prefix < 1e-9);
    }

    #[test]
    fn demand_cells_sum_to_prefix_total() {
        let (t, u, c, m) = setup();
        let p = u.user_prefixes(&t).next().unwrap();
        let sum: f64 = c
            .services
            .iter()
            .map(|s| m.demand(&t, &u, &c, p, s.id).raw())
            .sum();
        assert!((sum - m.prefix_total(p).raw()).abs() / sum < 1e-9);
    }

    #[test]
    fn demand_is_deterministic() {
        let (t, u, c, m) = setup();
        let p = u.user_prefixes(&t).next().unwrap();
        let s = c.services[0].id;
        assert_eq!(
            m.demand(&t, &u, &c, p, s).raw(),
            m.demand(&t, &u, &c, p, s).raw()
        );
    }

    #[test]
    fn diurnal_demand_averages_to_mean() {
        let (t, u, c, m) = setup();
        let p = u.user_prefixes(&t).next().unwrap();
        let s = c.services[0].id;
        let mean = m.demand(&t, &u, &c, p, s).raw();
        let mut acc = 0.0;
        let mut t0 = SimTime::ZERO;
        let n = 24 * 12;
        for _ in 0..n {
            acc += m.demand_at(&t, &u, &c, p, s, t0).raw();
            t0 += SimDuration::mins(5);
        }
        let avg = acc / n as f64;
        assert!((avg / mean - 1.0).abs() < 0.01, "avg {avg} vs mean {mean}");
    }

    #[test]
    fn full_prefix_set_covers_everything() {
        let (t, u, c, m) = setup();
        let all: BTreeSet<PrefixId> = u.user_prefixes(&t).collect();
        let cov = m.provider_coverage(&t, &u, &c, &all, None);
        assert!((cov - 1.0).abs() < 1e-9);
        let hg = t.hypergiants()[0];
        let cov_hg = m.provider_coverage(&t, &u, &c, &all, Some(hg));
        assert!((cov_hg - 1.0).abs() < 1e-9);
        let none: BTreeSet<PrefixId> = BTreeSet::new();
        assert_eq!(m.provider_coverage(&t, &u, &c, &none, None), 0.0);
    }

    #[test]
    fn as_coverage_matches_prefix_coverage() {
        let (t, u, c, m) = setup();
        // Coverage by all eyeball+stub ASes == coverage by all user prefixes.
        let ases: BTreeSet<Asn> = t.ases.iter().map(|a| a.asn).collect();
        let cov = m.provider_coverage_as(&t, &u, &c, &ases, None);
        assert!((cov - 1.0).abs() < 1e-9);
    }

    #[test]
    fn provider_totals_are_skewed() {
        let (t, _, c, m) = setup();
        let totals = m.provider_totals(&c);
        assert!(!totals.is_empty());
        let grand: f64 = totals.iter().map(|(_, b)| b.raw()).sum();
        // Top provider carries a large share — consolidation.
        assert!(totals[0].1.raw() / grand > 0.15);
        // All providers are content ASes.
        for (a, _) in &totals {
            assert!(t.as_info(*a).class.is_content());
        }
    }

    #[test]
    fn affinity_noise_is_mean_one_ish() {
        let mut acc = 0.0;
        let n = 20_000;
        for i in 0..n {
            acc += affinity(99, PrefixId(i), ServiceId(7), 0.4);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
