//! User populations: who is behind each prefix.
//!
//! Table 1's first component is "finding prefixes with users" at /24
//! granularity; Figure 2's ground truth is ISP subscriber counts. Here
//! every user-access /24 gets a heavy-tailed user count and an activity
//! intensity; per-AS and per-country rollups are precomputed.

use itm_topology::{PrefixKind, Topology};
use itm_types::rng::{lognormal, pareto, SeedDomain};
use itm_types::{Asn, Country, PrefixId};
use serde::{Deserialize, Serialize};

/// Ground-truth user populations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserModel {
    /// users[prefix] — 0 for non-user prefixes.
    users: Vec<f64>,
    /// Per-prefix activity intensity (mean 1.0): how heavily those users
    /// use the Internet (per-user traffic varies by market).
    intensity: Vec<f64>,
    /// Per-AS totals.
    by_as: Vec<f64>,
    /// Per-country totals.
    by_country: Vec<f64>,
}

impl UserModel {
    /// Populate every user-access prefix of a topology.
    ///
    /// Per-prefix counts are Pareto (α = 1.3) scaled by the owner AS's
    /// size factor — big incumbent ISPs have both more prefixes *and*
    /// denser prefixes (CGN), which matches how subscriber counts
    /// concentrate nationally.
    pub fn generate(topo: &Topology, seeds: &SeedDomain) -> UserModel {
        let seeds = seeds.child("users");
        let n = topo.prefixes.len();
        let mut users = vec![0.0; n];
        let mut intensity = vec![1.0; n];
        let mut by_as = vec![0.0; topo.n_ases()];
        let mut by_country = vec![0.0; topo.world.countries.len()];

        for r in topo.prefixes.iter() {
            if r.kind != PrefixKind::UserAccess {
                continue;
            }
            // Per-prefix stream: stable under prefix-table reordering.
            let mut rng = seeds.rng_indexed("prefix", r.id.raw() as u64);
            let owner = topo.as_info(r.owner);
            let scale = owner.size_factor.sqrt();
            // Floor of ~2 users per /24 with a heavy tail: most /24s are
            // sparsely populated (which is why cache probing misses a
            // quarter of them in [34]) while CGN-dense blocks in large
            // incumbents front tens of thousands.
            let u = (pareto(&mut rng, 2.0, 1.15) * scale).min(20_000.0);
            users[r.id.index()] = u;
            // Mean-one log-normal (mu = -sigma^2/2).
            intensity[r.id.index()] = lognormal(&mut rng, -0.35 * 0.35 / 2.0, 0.35);
            by_as[r.owner.index()] += u;
            by_country[owner.home_country.0 as usize] += u;
        }

        UserModel {
            users,
            intensity,
            by_as,
            by_country,
        }
    }

    /// Users behind one prefix (0 for infrastructure/hosting prefixes).
    pub fn users_of(&self, p: PrefixId) -> f64 {
        self.users[p.index()]
    }

    /// Activity intensity multiplier of a prefix.
    pub fn intensity_of(&self, p: PrefixId) -> f64 {
        self.intensity[p.index()]
    }

    /// Total users of an AS (its "subscriber count" — the ground truth on
    /// Figure 2's y-axis).
    pub fn subscribers(&self, asn: Asn) -> f64 {
        self.by_as[asn.index()]
    }

    /// Total users of a country.
    pub fn country_users(&self, c: Country) -> f64 {
        self.by_country[c.0 as usize]
    }

    /// World total.
    pub fn total(&self) -> f64 {
        self.by_as.iter().sum()
    }

    /// The eyeball ASes of a country, with subscriber counts, descending —
    /// the Figure 2 case-study input ("French ISPs").
    pub fn eyeballs_of_country(&self, topo: &Topology, c: Country) -> Vec<(Asn, f64)> {
        let mut v: Vec<(Asn, f64)> = topo
            .ases
            .iter()
            .filter(|a| a.class.is_eyeball() && a.home_country == c)
            .map(|a| (a.asn, self.subscribers(a.asn)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Apply `days` of multiplicative population drift: each prefix's
    /// count random-walks with per-day log-σ `sigma` (so the cumulative
    /// deviation scales with √days). The underlying Gaussian is keyed on
    /// the prefix only, deliberately: evolving the same world to day 7 and
    /// to day 30 samples the *same* Brownian path at two horizons, so the
    /// drifts are consistent rather than independent redraws. Rollups are
    /// recomputed. Used by the temporal-evolution machinery behind
    /// Table 1's temporal axis.
    pub fn apply_drift(&mut self, topo: &Topology, days: u64, sigma: f64, seeds: &SeedDomain) {
        if days == 0 || sigma <= 0.0 {
            return;
        }
        let walk_sigma = sigma * (days as f64).sqrt();
        self.by_as.iter_mut().for_each(|x| *x = 0.0);
        self.by_country.iter_mut().for_each(|x| *x = 0.0);
        // The user vector may be shorter than an evolved prefix table
        // (new off-net prefixes carry no users); extend with zeros.
        self.users.resize(topo.prefixes.len(), 0.0);
        self.intensity.resize(topo.prefixes.len(), 1.0);
        for r in topo.prefixes.iter() {
            let u = &mut self.users[r.id.index()];
            if *u <= 0.0 {
                continue;
            }
            let mut rng = seeds.rng_indexed("drift", r.id.raw() as u64);
            *u *= lognormal(&mut rng, 0.0, walk_sigma);
            self.by_as[r.owner.index()] += *u;
            self.by_country[topo.as_info(r.owner).home_country.0 as usize] += *u;
        }
    }

    /// Prefixes that genuinely host users (the ground-truth answer to
    /// Table 1's "finding prefixes with users").
    pub fn user_prefixes<'a>(&'a self, topo: &'a Topology) -> impl Iterator<Item = PrefixId> + 'a {
        topo.prefixes
            .iter()
            .filter(move |r| self.users[r.id.index()] > 0.0)
            .map(|r| r.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, AsClass, TopologyConfig};

    fn setup() -> (Topology, UserModel) {
        let t = generate(&TopologyConfig::small(), 13).unwrap();
        let u = UserModel::generate(&t, &SeedDomain::new(13));
        (t, u)
    }

    #[test]
    fn only_user_prefixes_have_users() {
        let (t, u) = setup();
        for r in t.prefixes.iter() {
            let have = u.users_of(r.id) > 0.0;
            assert_eq!(have, r.kind == PrefixKind::UserAccess, "{}", r.net);
        }
    }

    #[test]
    fn rollups_are_consistent() {
        let (t, u) = setup();
        let prefix_sum: f64 = t.prefixes.iter().map(|r| u.users_of(r.id)).sum();
        let as_sum: f64 = t.ases.iter().map(|a| u.subscribers(a.asn)).sum();
        let country_sum: f64 = t
            .world
            .countries
            .iter()
            .map(|c| u.country_users(c.country))
            .sum();
        assert!((prefix_sum - as_sum).abs() < 1e-6);
        assert!((as_sum - country_sum).abs() < 1e-6);
        assert!((u.total() - as_sum).abs() < 1e-6);
    }

    #[test]
    fn population_is_heavy_tailed_across_ases() {
        let (t, u) = setup();
        let mut subs: Vec<f64> = t
            .ases_of_class(AsClass::Eyeball)
            .map(|a| u.subscribers(a.asn))
            .collect();
        subs.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = subs.iter().sum();
        let top10: f64 = subs.iter().take(subs.len() / 10 + 1).sum();
        assert!(
            top10 / total > 0.3,
            "top decile holds only {:.0}%",
            100.0 * top10 / total
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let t = generate(&TopologyConfig::small(), 13).unwrap();
        let a = UserModel::generate(&t, &SeedDomain::new(1));
        let b = UserModel::generate(&t, &SeedDomain::new(1));
        let c = UserModel::generate(&t, &SeedDomain::new(2));
        assert_eq!(a.total(), b.total());
        assert_ne!(a.total(), c.total());
    }

    #[test]
    fn country_case_study_is_sorted() {
        let (t, u) = setup();
        // Pick the country with the most eyeballs.
        let c = t.world.countries[0].country;
        let isps = u.eyeballs_of_country(&t, c);
        for w in isps.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn user_prefix_iterator_matches_counts() {
        let (t, u) = setup();
        let n_user_kind = t.prefixes.of_kind(PrefixKind::UserAccess).count();
        assert_eq!(u.user_prefixes(&t).count(), n_user_kind);
    }
}
