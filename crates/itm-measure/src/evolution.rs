//! Temporal evolution of the Internet — why Table 1 has a *temporal
//! precision* column.
//!
//! The paper demands component refresh cadences (users daily, activity
//! hourly, services weekly, mapping hourly, routes daily) because the
//! Internet drifts underneath a map: hypergiants keep deploying off-nets
//! (\[25\] tracked seven years of growth), peering keeps densifying, and
//! user populations shift. [`evolve`] advances a substrate by N days with
//! deterministic incremental drift:
//!
//! * each hypergiant deploys off-nets into further eyeballs at a daily
//!   rate (the \[25\] growth process);
//! * content networks add peering links to co-located networks
//!   (flattening continues);
//! * per-prefix user populations random-walk (multiplicative drift).
//!
//! The [`staleness`] experiment builds a map on day 0 and scores it
//! against evolved ground truth: the decay curve is the empirical
//! justification for the desired cadences.

use crate::substrate::Substrate;
use itm_topology::{
    AsClass, Link, LinkClass, OffnetDeployment, PrefixKind, Slash24Allocator, Topology,
};
use itm_traffic::{ServiceCatalog, TrafficModel, UserModel};

use itm_types::Asn;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Daily drift rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolutionConfig {
    /// New off-net deployments per hypergiant per day (fractional rates
    /// accumulate across days).
    pub offnets_per_hg_day: f64,
    /// New content↔access peering links per content AS per day.
    pub peerings_per_content_day: f64,
    /// σ of the per-prefix daily log-population drift.
    pub user_drift_sigma: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            offnets_per_hg_day: 0.5,
            peerings_per_content_day: 0.3,
            user_drift_sigma: 0.02,
        }
    }
}

/// Advance a substrate by `days` of drift. Returns a fully rebuilt
/// substrate (traffic, DNS, TLS layers all re-derived from the evolved
/// topology), deterministic in `(s.seed, days)`.
pub fn evolve(s: &Substrate, days: u64, cfg: &EvolutionConfig) -> Substrate {
    let seeds = s.seeds.child("evolution");
    let mut rng = seeds.rng_indexed("day", days);

    let mut ases = s.topo.ases.clone();
    let mut links = s.topo.links.clone();
    let mut prefixes = s.topo.prefixes.clone();
    let mut offnets = s.topo.offnets.clone();

    // Continue the address plan where the generator stopped.
    let mut alloc = Slash24Allocator::new();
    let highest = prefixes
        .iter()
        .map(|r| r.net.network().0)
        .max()
        .unwrap_or(0);
    while alloc.alloc().network().0 <= highest {}

    // --- Off-net growth: next-largest unhosted eyeballs first. ---
    let mut eyeballs: Vec<&itm_topology::AsInfo> = s.topo.ases_of_class(AsClass::Eyeball).collect();
    eyeballs.sort_by(|a, b| {
        b.size_factor
            .total_cmp(&a.size_factor)
            .then(a.asn.cmp(&b.asn))
    });
    for hg in s.topo.hypergiants() {
        let n_new = (cfg.offnets_per_hg_day * days as f64).floor() as usize;
        let mut added = 0;
        for host in &eyeballs {
            if added >= n_new {
                break;
            }
            if offnets.find(hg, host.asn).is_some() {
                continue;
            }
            let city = host.cities[rng.gen_range(0..host.cities.len())];
            let pfx = prefixes.push(alloc.alloc(), host.asn, city, PrefixKind::OffnetCache);
            offnets.push(OffnetDeployment {
                hypergiant: hg,
                host: host.asn,
                prefix: pfx,
                city,
            });
            added += 1;
        }
    }

    // --- Peering growth: content ASes link to more co-located networks. ---
    let mut link_keys: std::collections::HashSet<(Asn, Asn)> =
        links.iter().map(|l| l.key()).collect();
    let content: Vec<Asn> = s
        .topo
        .ases
        .iter()
        .filter(|a| a.class.is_content())
        .map(|a| a.asn)
        .collect();
    for c in content {
        let n_new = (cfg.peerings_per_content_day * days as f64).floor() as usize;
        let c_cities: std::collections::HashSet<u32> =
            s.topo.as_info(c).cities.iter().copied().collect();
        let mut added = 0;
        // Deterministic candidate order: largest first.
        for cand in &eyeballs {
            if added >= n_new {
                break;
            }
            if cand.asn == c
                || link_keys.contains(&Link::peering(c, cand.asn, LinkClass::Transit).key())
            {
                continue;
            }
            if !cand.cities.iter().any(|ci| c_cities.contains(ci)) {
                continue;
            }
            let fac = s
                .topo
                .facilities
                .iter()
                .find(|f| f.has_tenant(c) && f.has_tenant(cand.asn))
                .map(|f| f.id);
            let class = match fac {
                Some(f) => LinkClass::PrivatePeering(f),
                None => continue,
            };
            let l = Link::peering(c, cand.asn, class);
            link_keys.insert(l.key());
            links.push(l);
            added += 1;
        }
    }

    // --- User drift is applied by rebuilding the user model with a
    // day-keyed seed perturbation (random walk in aggregate). ---
    let _ = &mut ases; // AS records themselves are stable across this horizon

    let topo = Topology::from_parts(
        s.topo.config.clone(),
        s.topo.seed,
        s.topo.world.clone(),
        ases,
        links,
        s.topo.facilities.clone(),
        s.topo.ixps.clone(),
        prefixes,
        offnets,
    );

    // Rebuild downstream layers. The user model drifts: same base draw,
    // scaled by a per-prefix day-keyed log-normal walk.
    let drift_seeds = seeds.child("users");
    let users = {
        let base = UserModel::generate(&topo, &s.seeds);
        let mut users = base;
        users.apply_drift(&topo, days, cfg.user_drift_sigma, &drift_seeds);
        users
    };
    let catalog = ServiceCatalog::generate(&s.config.services, &topo, &s.seeds);
    let traffic = TrafficModel::build(&topo, &users, &catalog, s.config.traffic.clone(), &s.seeds);
    let resolvers = itm_dns::ResolverAssignment::build(&topo, &s.config.resolvers, &s.seeds);
    let frontends = itm_dns::FrontendDirectory::build(&topo, &catalog);
    let apnic = itm_traffic::ApnicEstimates::generate(&topo, &users, &s.config.apnic, &s.seeds);
    let chromium =
        itm_dns::ChromiumModel::build(&topo, &users, s.config.chromium.clone(), &s.seeds);
    let routers = itm_routing::RouterMap::build(&topo);
    let tls = itm_tls::TlsHostRegistry::build(&topo, &catalog, &frontends);

    Substrate {
        config: s.config.clone(),
        seed: s.seed,
        topo,
        users,
        catalog,
        traffic,
        resolvers,
        frontends,
        apnic,
        chromium,
        routers,
        tls,
        seeds: s.seeds.clone(),
        vm_down: s.vm_down.clone(),
    }
}

/// Staleness of a day-0 user→host mapping against day-N ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StalenessReport {
    /// Days elapsed.
    pub days: u64,
    /// Fraction of day-0 mapping cells whose ground-truth front-end
    /// changed (off-net growth redirects clients inward).
    pub mapping_stale_fraction: f64,
    /// New off-net deployments the day-0 map does not know about.
    pub new_offnets: usize,
    /// New peering links missing from the day-0 route view.
    pub new_links: usize,
}

/// Score a day-0 map's mapping component against evolved ground truth.
pub fn staleness(
    day0: &Substrate,
    evolved: &Substrate,
    day0_mapping: &crate::user_mapping::UserMapping,
    days: u64,
) -> StalenessReport {
    let mut stale = 0usize;
    let mut total = 0usize;
    for c in day0_mapping.mapping.iter() {
        // The prefix table only grew; day-0 ids are stable.
        let rec = evolved.topo.prefixes.get(c.prefix);
        if c.service.index() >= evolved.catalog.len() {
            continue;
        }
        let now = evolved
            .frontends
            .select(&evolved.topo, c.service, rec.owner, rec.city);
        total += 1;
        if now.addr != c.addr {
            stale += 1;
        }
    }
    StalenessReport {
        days,
        mapping_stale_fraction: if total > 0 {
            stale as f64 / total as f64
        } else {
            0.0
        },
        new_offnets: evolved.topo.offnets.len() - day0.topo.offnets.len(),
        new_links: evolved.topo.links.len() - day0.topo.links.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;
    use crate::user_mapping::UserMapping;

    fn setup() -> Substrate {
        Substrate::build(SubstrateConfig::small(), 191).unwrap()
    }

    #[test]
    fn evolution_grows_monotonically_and_keeps_invariants() {
        let s = setup();
        let e7 = evolve(&s, 7, &EvolutionConfig::default());
        let e30 = evolve(&s, 30, &EvolutionConfig::default());
        assert_eq!(e7.topo.check_invariants(), Ok(()));
        assert_eq!(e30.topo.check_invariants(), Ok(()));
        assert!(e7.topo.offnets.len() >= s.topo.offnets.len());
        assert!(e30.topo.offnets.len() >= e7.topo.offnets.len());
        assert!(e30.topo.links.len() >= e7.topo.links.len());
        // Prefix table only grows; existing ids keep their nets.
        assert!(e30.topo.prefixes.len() >= s.topo.prefixes.len());
        for r in s.topo.prefixes.iter().take(50) {
            assert_eq!(e30.topo.prefixes.get(r.id).net, r.net);
        }
    }

    #[test]
    fn evolution_is_deterministic() {
        let s = setup();
        let a = evolve(&s, 14, &EvolutionConfig::default());
        let b = evolve(&s, 14, &EvolutionConfig::default());
        assert_eq!(a.topo.links.len(), b.topo.links.len());
        assert_eq!(a.topo.offnets.len(), b.topo.offnets.len());
        assert_eq!(a.users.total(), b.users.total());
    }

    #[test]
    fn maps_go_stale_over_time() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let mapping = UserMapping::measure(&s, &resolver);

        let e7 = evolve(&s, 7, &EvolutionConfig::default());
        let e60 = evolve(&s, 60, &EvolutionConfig::default());
        let r7 = staleness(&s, &e7, &mapping, 7);
        let r60 = staleness(&s, &e60, &mapping, 60);
        assert!(r60.new_offnets >= r7.new_offnets);
        assert!(
            r60.mapping_stale_fraction >= r7.mapping_stale_fraction,
            "staleness must not shrink: {:.4} vs {:.4}",
            r60.mapping_stale_fraction,
            r7.mapping_stale_fraction
        );
        // Two months of off-net growth must invalidate a visible share of
        // the mapping.
        assert!(
            r60.mapping_stale_fraction > 0.0,
            "evolution had no effect on the mapping"
        );
    }

    #[test]
    fn user_drift_changes_populations() {
        let s = setup();
        let e = evolve(&s, 30, &EvolutionConfig::default());
        assert_ne!(s.users.total(), e.users.total());
        // Drift is bounded: total should stay within a factor of 2.
        let ratio = e.users.total() / s.users.total();
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }
}
