//! One-stop construction of a complete synthetic Internet.
//!
//! [`Substrate`] owns every ground-truth system a measurement campaign
//! runs against: topology, users, services, traffic, resolvers,
//! front-ends, the APNIC-like estimator, the Chromium model, routers, and
//! the TLS host registry. Building one is a single call; everything is
//! derived deterministically from `(config, seed)`.

use itm_dns::chromium::ChromiumConfig;
use itm_dns::{
    AuthoritativeDns, ChromiumModel, FrontendDirectory, OpenResolver, OpenResolverConfig,
    ResolverAssignment, ResolverConfig,
};
use itm_routing::{GraphView, RouterMap};
use itm_tls::TlsHostRegistry;
use itm_topology::{Topology, TopologyConfig};
use itm_traffic::apnic::ApnicConfig;
use itm_traffic::{
    ApnicEstimates, ServiceCatalog, ServiceCatalogConfig, TrafficConfig, TrafficModel, UserModel,
};
use itm_types::{Asn, Result, SeedDomain};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration for the whole substrate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubstrateConfig {
    /// Topology generation parameters.
    pub topology: TopologyConfig,
    /// Service catalogue parameters.
    pub services: ServiceCatalogConfig,
    /// Traffic model parameters.
    pub traffic: TrafficConfig,
    /// Resolver ecosystem parameters.
    pub resolvers: ResolverConfig,
    /// APNIC-estimator parameters.
    pub apnic: ApnicConfig,
    /// Chromium-model parameters.
    pub chromium: ChromiumConfig,
    /// Open-resolver deployment parameters.
    pub open_resolver: OpenResolverConfig,
}

impl SubstrateConfig {
    /// A small configuration for tests (≈120 ASes, 30 services).
    pub fn small() -> SubstrateConfig {
        SubstrateConfig {
            topology: TopologyConfig::small(),
            services: ServiceCatalogConfig::small(),
            open_resolver: OpenResolverConfig {
                n_pops: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A complete synthetic Internet with ground truth.
pub struct Substrate {
    /// The configuration used.
    pub config: SubstrateConfig,
    /// The master seed used.
    pub seed: u64,
    /// AS-level topology, geography, prefixes, off-nets.
    pub topo: Topology,
    /// Per-prefix user populations.
    pub users: UserModel,
    /// The popular-service catalogue.
    pub catalog: ServiceCatalog,
    /// The ground-truth traffic matrix.
    pub traffic: TrafficModel,
    /// Resolver ecosystem.
    pub resolvers: ResolverAssignment,
    /// Serving endpoints + redirection policy.
    pub frontends: FrontendDirectory,
    /// APNIC-like population estimates (public data stand-in).
    pub apnic: ApnicEstimates,
    /// Browser/probe workload model.
    pub chromium: ChromiumModel,
    /// Router-level veneer.
    pub routers: RouterMap,
    /// TLS behaviour of all serving addresses.
    pub tls: TlsHostRegistry,
    /// The seed domain everything was derived from.
    pub seeds: SeedDomain,
    /// Cloud vantage ASes currently unavailable (epoch VM churn). Empty
    /// on a freshly built substrate; the cloud-probe campaign skips VMs
    /// in down ASes.
    pub vm_down: BTreeSet<Asn>,
}

impl Substrate {
    /// Build everything from a config and master seed.
    pub fn build(config: SubstrateConfig, seed: u64) -> Result<Substrate> {
        let _span = itm_obs::span("substrate.build");
        let seeds = SeedDomain::new(seed);
        // itm_topology::generate opens its own "topology.generate" span,
        // which nests under this one.
        let topo = itm_topology::generate(&config.topology, seed)?;
        let users = {
            let _s = itm_obs::span("users.generate");
            UserModel::generate(&topo, &seeds)
        };
        let catalog = {
            let _s = itm_obs::span("catalog.generate");
            ServiceCatalog::generate(&config.services, &topo, &seeds)
        };
        let traffic = {
            let _s = itm_obs::span("traffic.build");
            TrafficModel::build(&topo, &users, &catalog, config.traffic.clone(), &seeds)
        };
        let resolvers = {
            let _s = itm_obs::span("resolvers.build");
            ResolverAssignment::build(&topo, &config.resolvers, &seeds)
        };
        let frontends = {
            let _s = itm_obs::span("frontends.build");
            FrontendDirectory::build(&topo, &catalog)
        };
        let apnic = {
            let _s = itm_obs::span("apnic.generate");
            ApnicEstimates::generate(&topo, &users, &config.apnic, &seeds)
        };
        let chromium = {
            let _s = itm_obs::span("chromium.build");
            ChromiumModel::build(&topo, &users, config.chromium.clone(), &seeds)
        };
        let routers = {
            let _s = itm_obs::span("routers.build");
            RouterMap::build(&topo)
        };
        let tls = {
            let _s = itm_obs::span("tls_registry.build");
            TlsHostRegistry::build(&topo, &catalog, &frontends)
        };
        Ok(Substrate {
            config,
            seed,
            topo,
            users,
            catalog,
            traffic,
            resolvers,
            frontends,
            apnic,
            chromium,
            routers,
            tls,
            seeds,
            vm_down: BTreeSet::new(),
        })
    }

    /// The authoritative-DNS façade (cheap to construct; borrows self).
    pub fn authoritative(&self) -> AuthoritativeDns<'_> {
        AuthoritativeDns::new(&self.topo, &self.catalog, &self.frontends)
    }

    /// Deploy the open resolver (borrows self).
    ///
    /// Fails only on a degenerate topology with no cities, which
    /// [`Substrate::build`] already rejects.
    pub fn open_resolver(&self) -> Result<OpenResolver<'_>> {
        OpenResolver::deploy(
            &self.topo,
            &self.users,
            &self.catalog,
            &self.traffic,
            &self.resolvers,
            self.authoritative(),
            self.config.open_resolver.clone(),
            &self.seeds,
        )
    }

    /// The full ground-truth routing view.
    pub fn full_view(&self) -> GraphView {
        GraphView::full(&self.topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_is_internally_consistent() {
        let s = Substrate::build(SubstrateConfig::small(), 101).unwrap();
        assert_eq!(s.topo.check_invariants(), Ok(()));
        assert!(s.users.total() > 0.0);
        assert!(!s.catalog.is_empty());
        assert!(s.traffic.grand_total().raw() > 0.0);
        assert!(!s.routers.is_empty());
        assert!(!s.tls.is_empty());
        let or = s.open_resolver().expect("open resolver");
        assert!(!or.pops().is_empty());
    }

    #[test]
    fn same_seed_same_world() {
        let a = Substrate::build(SubstrateConfig::small(), 7).unwrap();
        let b = Substrate::build(SubstrateConfig::small(), 7).unwrap();
        assert_eq!(a.users.total(), b.users.total());
        assert_eq!(a.topo.links.len(), b.topo.links.len());
        assert_eq!(a.traffic.grand_total().raw(), b.traffic.grand_total().raw());
    }
}
