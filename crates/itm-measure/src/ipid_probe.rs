//! IP ID velocity probing (§3.1.3, E11).
//!
//! "We propose measuring IP ID velocity over time (e.g., at peak time) to
//! estimate the rate at which routers forward user traffic."
//!
//! The campaign pings router interfaces on a fixed cadence, estimates
//! counter velocity between consecutive samples (handling 16-bit
//! wraparound), and reports per-router velocity time series. Scoring
//! checks the two claims the proposal rests on: velocity correlates with
//! forwarded traffic across routers, and the series is diurnal.
//!
//! Ground-truth router load: an AS's routers share its forwarded volume —
//! the AS's own originated demand plus, for transit ASes, the demand of
//! the customer cone that routes through it — modulated by the local
//! diurnal curve. The counters are driven by this load; the campaign only
//! sees the 16-bit samples.

use crate::substrate::Substrate;
use itm_routing::IpidCounter;
use itm_topology::AsClass;
use itm_types::{
    Asn, DiurnalCurve, FaultInjector, FaultPlan, FaultStats, ProbeFate, RouterId, SimDuration,
    SimTime,
};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpidCampaign {
    /// Sampling interval between pings to the same router.
    pub interval: SimDuration,
    /// Campaign length.
    pub duration: SimDuration,
    /// Counter increments per forwarded megabit (substrate coupling).
    pub per_mbit: f64,
    /// Baseline counter rate (control-plane chatter).
    pub base_rate: f64,
}

impl Default for IpidCampaign {
    fn default() -> Self {
        IpidCampaign {
            interval: SimDuration::mins(15),
            duration: SimDuration::days(2),
            per_mbit: 0.1,
            base_rate: 1.0,
        }
    }
}

/// One router's measured series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpidObservation {
    /// The probed router.
    pub router: RouterId,
    /// Its AS.
    pub asn: Asn,
    /// Estimated velocities (counts/sec), one per sample interval.
    pub velocities: Vec<f64>,
    /// Sample timestamps (interval midpoints).
    pub times: Vec<SimTime>,
}

impl IpidObservation {
    /// Mean estimated velocity.
    pub fn mean_velocity(&self) -> f64 {
        if self.velocities.is_empty() {
            return 0.0;
        }
        self.velocities.iter().sum::<f64>() / self.velocities.len() as f64
    }

    /// Peak-to-trough ratio of the measured series — diurnality indicator
    /// (≈1 for flat series, substantially above 1 for diurnal ones).
    pub fn peak_trough_ratio(&self) -> f64 {
        let max = self.velocities.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.velocities.iter().cloned().fold(f64::MAX, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }
}

/// Campaign output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpidResult {
    /// Per-router observations.
    pub observations: Vec<IpidObservation>,
    /// Per-ping fate accounting: `observed + degraded + lost` equals the
    /// interval pings issued. A lost ping leaves a velocity gap (the next
    /// sample cannot be paired with the missing one).
    pub fault_stats: FaultStats,
}

/// Ground-truth mean forwarded traffic of an AS in Mbps (own demand plus
/// customer-cone demand for transit sellers).
pub fn forwarded_mbps(s: &Substrate, asn: Asn) -> f64 {
    let own = s.traffic.as_total(asn).raw();
    let transit: f64 = match s.topo.as_info(asn).class {
        AsClass::Transit | AsClass::Tier1 => s
            .topo
            .cones
            .cone_members(asn)
            .iter()
            .filter(|&&c| c != asn)
            .map(|&c| s.traffic.as_total(c).raw())
            .sum(),
        _ => 0.0,
    };
    (own + transit) / 1e6
}

impl IpidCampaign {
    /// Probe the routers of every transit and tier-1 AS.
    pub fn run(&self, s: &Substrate) -> IpidResult {
        let faults = FaultInjector::new(FaultPlan::off(), &s.seeds, "ipid_probe");
        self.run_with_faults(s, &faults)
    }

    /// Probe under a fault plan: individual pings drop at the plan's
    /// rates, keyed by `(router id, step)`. The router's counter advances
    /// regardless (real traffic does not stop for our probe), so a lost
    /// ping leaves a gap in the velocity series rather than a zero.
    pub fn run_with_faults(&self, s: &Substrate, faults: &FaultInjector) -> IpidResult {
        let _span = itm_obs::span("ipid_probe.run");
        let _campaign = itm_obs::trace::campaign(
            itm_obs::trace::Technique::IpidProbe,
            "IP ID velocity probing",
        );
        let pings = itm_obs::counter!("probe.pings", "technique" => "ipid_probe");
        let hosts = itm_obs::counter!("probe.hosts", "technique" => "ipid_probe");
        let mut sent: u64 = 0;
        let diurnal = DiurnalCurve::default();
        let mut observations = Vec::new();
        let mut fault_stats = FaultStats::default();
        let faults_on = !faults.is_off();

        for rec in s.routers.iter() {
            let class = s.topo.as_info(rec.asn).class;
            if !matches!(class, AsClass::Transit | AsClass::Tier1) {
                continue;
            }
            if itm_obs::trace::enabled() {
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::IpidProbe,
                    itm_obs::trace::EventKind::ProbeSent,
                    itm_obs::trace::Subjects::none().asn(rec.asn.raw()),
                    &format!("ping router {}", rec.id.raw()),
                );
            }
            let n_routers = s.topo.as_info(rec.asn).cities.len().max(1) as f64;
            let as_load = forwarded_mbps(s, rec.asn) / n_routers;
            let offset = s.topo.city_location(rec.city).solar_offset_hours();

            // Drive the counter and sample it.
            let mut counter = IpidCounter::new(
                (rec.id.raw() % 65_536) as u16,
                self.base_rate,
                self.per_mbit,
            );
            let steps = (self.duration.as_secs() / self.interval.as_secs()).max(2);
            let mut velocities = Vec::with_capacity(steps as usize);
            let mut times = Vec::with_capacity(steps as usize);
            let mut prev_sample = counter.sample();
            let mut prev_t = SimTime::ZERO;
            let mut have_prev = true;
            for k in 1..=steps {
                let t = SimTime(k * self.interval.as_secs());
                // Load over the interval ≈ load at the midpoint.
                let mid = SimTime((prev_t.as_secs() + t.as_secs()) / 2);
                let mean = diurnal.daily_mean();
                let load = as_load * diurnal.at(mid, offset) / mean;
                counter.advance(t, load);
                let fate = if faults_on {
                    faults.fate(rec.id.raw() as u64, k, 0)
                } else {
                    ProbeFate::Observed
                };
                fault_stats.record(fate);
                if !fate.succeeded() {
                    itm_obs::counter!("faults.ping.lost").inc();
                    if itm_obs::trace::enabled() {
                        itm_obs::trace::emit(
                            itm_obs::trace::Technique::IpidProbe,
                            itm_obs::trace::EventKind::ProbeFailed,
                            itm_obs::trace::Subjects::none().asn(rec.asn.raw()),
                            &format!("ping to router {} lost at step {k}", rec.id.raw()),
                        );
                    }
                    // The counter keeps running; we just missed the read.
                    prev_t = t;
                    have_prev = false;
                    continue;
                }
                let sample = counter.sample();
                if have_prev {
                    if let Some(v) = IpidCounter::estimate_velocity(prev_sample, prev_t, sample, t)
                    {
                        velocities.push(v);
                        times.push(mid);
                    }
                }
                prev_sample = sample;
                prev_t = t;
                have_prev = true;
            }
            if itm_obs::trace::enabled() {
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::IpidProbe,
                    itm_obs::trace::EventKind::IpidSampled,
                    itm_obs::trace::Subjects::none().asn(rec.asn.raw()),
                    &format!("router {} samples {}", rec.id.raw(), velocities.len()),
                );
            }
            observations.push(IpidObservation {
                router: rec.id,
                asn: rec.asn,
                velocities,
                times,
            });
            hosts.inc();
            // One ping elicits each sample: the initial read plus one per
            // interval step.
            sent += steps + 1;
        }
        pings.add(sent);
        itm_obs::counter!("probe.bytes", "technique" => "ipid_probe").add(sent * 64);
        IpidResult {
            observations,
            fault_stats,
        }
    }
}

impl IpidResult {
    /// Correlation of measured mean velocity against ground-truth load
    /// across routers (Spearman).
    pub fn load_correlation(&self, s: &Substrate) -> Option<f64> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for o in &self.observations {
            let n_routers = s.topo.as_info(o.asn).cities.len().max(1) as f64;
            xs.push(forwarded_mbps(s, o.asn) / n_routers);
            ys.push(o.mean_velocity());
        }
        itm_types::stats::spearman(&xs, &ys)
    }

    /// Fraction of routers whose measured series is clearly diurnal
    /// (peak/trough above the threshold).
    pub fn diurnal_fraction(&self, threshold: f64) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        let n = self
            .observations
            .iter()
            .filter(|o| o.peak_trough_ratio() > threshold && o.peak_trough_ratio().is_finite())
            .count();
        n as f64 / self.observations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;

    fn setup() -> (Substrate, IpidResult) {
        let s = Substrate::build(SubstrateConfig::small(), 127).unwrap();
        let r = IpidCampaign::default().run(&s);
        (s, r)
    }

    #[test]
    fn probes_transit_routers_only() {
        let (s, r) = setup();
        assert!(!r.observations.is_empty());
        for o in &r.observations {
            assert!(matches!(
                s.topo.as_info(o.asn).class,
                AsClass::Transit | AsClass::Tier1
            ));
        }
    }

    #[test]
    fn velocity_correlates_with_load() {
        let (s, r) = setup();
        let rho = r.load_correlation(&s).unwrap();
        assert!(rho > 0.7, "spearman {rho:.3}");
    }

    #[test]
    fn most_series_are_diurnal() {
        let (_, r) = setup();
        // Busy routers swing with the sun; base_rate-dominated (idle)
        // routers stay flat. The majority should show the pattern —
        // "the IP ID values of most routers display diurnal patterns".
        let frac = r.diurnal_fraction(1.5);
        assert!(frac > 0.5, "diurnal fraction {frac:.3}");
    }

    #[test]
    fn sampling_too_slowly_aliases() {
        let s = Substrate::build(SubstrateConfig::small(), 127).unwrap();
        let fast = IpidCampaign::default().run(&s);
        let slow = IpidCampaign {
            interval: SimDuration::hours(12),
            ..Default::default()
        }
        .run(&s);
        // Mean velocity under-estimates when the counter wraps multiple
        // times between samples: the busiest routers lose the most.
        let max_fast = fast
            .observations
            .iter()
            .map(|o| o.mean_velocity())
            .fold(0.0f64, f64::max);
        let max_slow = slow
            .observations
            .iter()
            .map(|o| o.mean_velocity())
            .fold(0.0f64, f64::max);
        assert!(
            max_slow < max_fast,
            "aliasing should depress peaks: {max_slow} vs {max_fast}"
        );
    }

    #[test]
    fn forwarded_traffic_counts_cone() {
        let (s, _) = setup();
        // A tier-1's forwarded traffic should exceed any single stub's.
        let t1 = s
            .topo
            .ases_of_class(AsClass::Tier1)
            .map(|a| forwarded_mbps(&s, a.asn))
            .fold(0.0f64, f64::max);
        let stub = s
            .topo
            .ases_of_class(AsClass::Stub)
            .map(|a| forwarded_mbps(&s, a.asn))
            .fold(0.0f64, f64::max);
        assert!(t1 > stub);
    }
}
