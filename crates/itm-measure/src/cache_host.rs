//! Hosting an instrumented edge cache (§3.2.3's proposed community
//! project, E14).
//!
//! "To refine this intuition, it is critical to understand the efficacy of
//! these caches. A community-driven project could host caches inside
//! research networks/universities, to measure the cache hit rate under
//! normal operation and during flash events."
//!
//! The experiment: an LRU cache of configurable capacity is "hosted" in a
//! research network; a request stream for one service's objects is drawn
//! from the traffic model's arrival rates and the object-popularity law;
//! hit rates are measured under normal operation and during a flash event,
//! and the normal-operation result is validated against the Che
//! approximation.

use crate::substrate::Substrate;
use itm_traffic::ObjectModel;
use itm_types::{SeedDomain, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A plain LRU cache over object ids, instrumented with hit/miss counters.
///
/// Recency is tracked with a tick-indexed `BTreeMap` alongside the main
/// map, giving O(log n) request cost (ticks are unique, so the index never
/// collides).
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    /// object id -> last-use tick
    entries: HashMap<u32, u64>,
    /// last-use tick -> object id (recency index; oldest first)
    by_tick: std::collections::BTreeMap<u64, u32>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// An empty cache with the given object capacity.
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            by_tick: std::collections::BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Serve one request; returns whether it hit.
    pub fn request(&mut self, object: u32) -> bool {
        self.tick += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        let prev = self.entries.insert(object, self.tick);
        if let Some(old_tick) = prev {
            self.by_tick.remove(&old_tick);
        }
        self.by_tick.insert(self.tick, object);
        let hit = prev.is_some();
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if self.entries.len() > self.capacity {
                if let Some((&lru_tick, &lru_obj)) = self.by_tick.iter().next() {
                    self.by_tick.remove(&lru_tick);
                    self.entries.remove(&lru_obj);
                }
            }
        }
        hit
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Measured hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset the counters (keep the cache warm).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parameters of the hosted-cache experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHostExperiment {
    /// The service whose cache is hosted (object model derives from it).
    pub service: ServiceId,
    /// Cache capacity in objects.
    pub capacity: usize,
    /// Warm-up requests before measurement starts.
    pub warmup_requests: usize,
    /// Measured requests per phase.
    pub phase_requests: usize,
    /// Share of requests on the hot set during the flash phase.
    pub flash_share: f64,
    /// Number of distinct hot objects in the flash.
    pub flash_objects: u32,
}

impl CacheHostExperiment {
    /// A typical configuration for a given service.
    pub fn typical(service: ServiceId) -> CacheHostExperiment {
        CacheHostExperiment {
            service,
            capacity: 5_000,
            warmup_requests: 60_000,
            phase_requests: 60_000,
            flash_share: 0.5,
            flash_objects: 8,
        }
    }
}

/// Results of the experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHostResult {
    /// Hit rate under normal operation (after warm-up).
    pub normal_hit_rate: f64,
    /// Che-approximation prediction for the normal phase.
    pub che_prediction: f64,
    /// Hit rate during the flash event (cache adapts online).
    pub flash_hit_rate: f64,
    /// Hit rate on only the flash-set requests during the event.
    pub flash_set_hit_rate: f64,
    /// The object model used.
    pub n_objects: usize,
}

impl CacheHostExperiment {
    /// Run the experiment.
    pub fn run(&self, s: &Substrate, seeds: &SeedDomain) -> CacheHostResult {
        let rank = self.service.index();
        let model = ObjectModel::typical(self.service, rank);
        let _ = s; // arrival *rates* don't change hit ratios under IRM
        let mut rng = seeds.child("cache-host").rng("requests");
        let mut cache = LruCache::new(self.capacity);

        // Warm-up.
        for _ in 0..self.warmup_requests {
            cache.request(model.draw_object(&mut rng));
        }

        // Normal phase.
        cache.reset_counters();
        for _ in 0..self.phase_requests {
            cache.request(model.draw_object(&mut rng));
        }
        let normal_hit_rate = cache.hit_rate();

        // Flash phase.
        cache.reset_counters();
        let mut flash_hits = 0u64;
        let mut flash_reqs = 0u64;
        for _ in 0..self.phase_requests {
            let obj = model.draw_object_flash(&mut rng, self.flash_share, self.flash_objects);
            let is_flash = obj >= model.n_objects as u32;
            let hit = cache.request(obj);
            if is_flash {
                flash_reqs += 1;
                if hit {
                    flash_hits += 1;
                }
            }
        }

        CacheHostResult {
            normal_hit_rate,
            che_prediction: model.che_hit_rate(self.capacity),
            flash_hit_rate: cache.hit_rate(),
            flash_set_hit_rate: if flash_reqs > 0 {
                flash_hits as f64 / flash_reqs as f64
            } else {
                0.0
            },
            n_objects: model.n_objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;
    use crate::Substrate;

    #[test]
    fn lru_semantics() {
        let mut c = LruCache::new(2);
        assert!(!c.request(1)); // miss
        assert!(!c.request(2)); // miss
        assert!(c.request(1)); // hit
        assert!(!c.request(3)); // miss, evicts 2 (LRU)
        assert!(c.request(1)); // still cached
        assert!(!c.request(2)); // was evicted
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = LruCache::new(0);
        for i in 0..10 {
            assert!(!c.request(i % 2));
        }
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn measured_hit_rate_matches_che() {
        let s = Substrate::build(SubstrateConfig::small(), 171).unwrap();
        let exp = CacheHostExperiment {
            service: ServiceId(0),
            capacity: 2_000,
            warmup_requests: 40_000,
            phase_requests: 40_000,
            flash_share: 0.5,
            flash_objects: 8,
        };
        let r = exp.run(&s, &SeedDomain::new(171));
        assert!(
            (r.normal_hit_rate - r.che_prediction).abs() < 0.08,
            "measured {:.3} vs Che {:.3}",
            r.normal_hit_rate,
            r.che_prediction
        );
    }

    #[test]
    fn flash_events_are_highly_cacheable() {
        // §3.2.3's intuition: flash traffic concentrates on few objects,
        // so caches absorb it — overall hit rate *rises* during a flash.
        let s = Substrate::build(SubstrateConfig::small(), 173).unwrap();
        let r = CacheHostExperiment::typical(ServiceId(0)).run(&s, &SeedDomain::new(173));
        assert!(
            r.flash_hit_rate > r.normal_hit_rate,
            "flash {:.3} vs normal {:.3}",
            r.flash_hit_rate,
            r.normal_hit_rate
        );
        assert!(r.flash_set_hit_rate > 0.95, "{:.3}", r.flash_set_hit_rate);
    }
}
