//! Relative activity estimation from cache hit rates (§3.1.3, Figure 2).
//!
//! "To extend this binary indication to relative activity, we propose
//! looking at cache hit rates over time, with the intuition that prefixes
//! with more activity will populate caches more often. … Figure 2 shows a
//! correlation between cache hits and other measures of activity."
//!
//! The estimator combines, per AS: the cache-probing hit rate, the
//! root-log query count, and (where present) the APNIC estimate — the
//! "combining the techniques" direction §3.1.3 calls for.

use crate::cache_probe::CacheProbeResult;
use crate::root_crawl::RootCrawlResult;
use crate::substrate::Substrate;
use itm_types::rng::{shard_bounds, DEFAULT_SHARDS};
use itm_types::stats::{kendall_tau, linear_fit, spearman};
use itm_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One AS's activity estimate with its per-technique inputs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ActivityEstimate {
    /// Cache-probing hit rate (hits per probe), if probed.
    pub cache_hit_rate: Option<f64>,
    /// Root-log Chromium queries (relative units), if observed.
    pub root_queries: Option<f64>,
    /// APNIC user estimate, if covered.
    pub apnic_users: Option<f64>,
    /// Fused relative activity (unitless, max-normalized).
    pub fused: f64,
}

/// The activity estimator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActivityEstimator {
    estimates: BTreeMap<Asn, ActivityEstimate>,
}

impl ActivityEstimator {
    /// Fuse the three signals.
    ///
    /// Each signal is max-normalized, then averaged over the signals
    /// present. (The paper leaves fusion as an open question; a mean of
    /// normalized signals is the baseline any later work would compare
    /// against.)
    pub fn fuse(
        s: &Substrate,
        cache: &CacheProbeResult,
        root: &RootCrawlResult,
    ) -> ActivityEstimator {
        Self::fuse_with(s, cache, root, |n, job| (0..n).map(job).collect())
    }

    /// How many shards fusion splits into (a property of the AS count).
    pub fn shard_count(s: &Substrate) -> usize {
        s.topo.ases.len().clamp(1, DEFAULT_SHARDS)
    }

    /// Fuse with a caller-supplied shard runner (see
    /// `CacheProbeCampaign::run_with`). Per-technique inputs and their
    /// normalizers are computed once up front; shards then fuse disjoint
    /// AS slices, so the merged map is schedule-independent.
    pub fn fuse_with<R>(
        s: &Substrate,
        cache: &CacheProbeResult,
        root: &RootCrawlResult,
        run_shards: R,
    ) -> ActivityEstimator
    where
        R: FnOnce(
            usize,
            &(dyn Fn(usize) -> BTreeMap<Asn, ActivityEstimate> + Sync),
        ) -> Vec<BTreeMap<Asn, ActivityEstimate>>,
    {
        let hit_rates = cache.hit_rate_by_as(s);
        let root_act = root.relative_activity(s);

        let max_hit = hit_rates.values().cloned().fold(0.0f64, f64::max);
        let max_apnic = s
            .topo
            .ases
            .iter()
            .filter_map(|a| s.apnic.estimate(a.asn))
            .fold(0.0f64, f64::max);

        let n_shards = Self::shard_count(s);
        let parts = run_shards(n_shards, &|shard| {
            let (lo, hi) = shard_bounds(s.topo.ases.len(), shard, n_shards);
            let mut out = BTreeMap::new();
            for a in &s.topo.ases[lo..hi] {
                let ch = hit_rates.get(&a.asn).copied();
                let rq = root_act.get(&a.asn).copied();
                let ap = s.apnic.estimate(a.asn);
                if ch.is_none() && rq.is_none() && ap.is_none() {
                    continue;
                }
                let mut acc = 0.0;
                let mut n = 0.0;
                if let Some(v) = ch {
                    if max_hit > 0.0 {
                        acc += v / max_hit;
                        n += 1.0;
                    }
                }
                if let Some(v) = rq {
                    acc += v; // already max-normalized
                    n += 1.0;
                }
                if let Some(v) = ap {
                    if max_apnic > 0.0 {
                        acc += v / max_apnic;
                        n += 1.0;
                    }
                }
                out.insert(
                    a.asn,
                    ActivityEstimate {
                        cache_hit_rate: ch,
                        root_queries: rq,
                        apnic_users: ap,
                        fused: if n > 0.0 { acc / n } else { 0.0 },
                    },
                );
            }
            out
        });

        let mut estimates = BTreeMap::new();
        for part in parts {
            estimates.extend(part);
        }
        if itm_obs::trace::enabled() {
            itm_obs::trace::emit(
                itm_obs::trace::Technique::CacheProbe,
                itm_obs::trace::EventKind::ActivityFused,
                itm_obs::trace::Subjects::none(),
                &format!("{} ASes fused", estimates.len()),
            );
        }
        ActivityEstimator { estimates }
    }

    /// The estimate for an AS.
    pub fn get(&self, asn: Asn) -> Option<&ActivityEstimate> {
        self.estimates.get(&asn)
    }

    /// All estimates.
    pub fn iter(&self) -> impl Iterator<Item = (&Asn, &ActivityEstimate)> {
        self.estimates.iter()
    }

    /// Number of ASes with an estimate.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether no AS was estimated.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

/// The Figure 2 analysis for one country: per-ISP subscriber counts vs
/// cache hit rate and APNIC estimates, with fits and rank correlations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Analysis {
    /// (asn, subscribers, cache_hit_rate, apnic_estimate) rows, largest
    /// ISPs first.
    pub rows: Vec<(Asn, f64, f64, Option<f64>)>,
    /// Least-squares fit of subscribers on hit rate (slope, intercept, r²).
    pub hit_rate_fit: Option<(f64, f64, f64)>,
    /// Spearman rank correlation of hit rate vs subscribers.
    pub hit_rate_spearman: Option<f64>,
    /// Kendall tau of hit rate vs subscribers.
    pub hit_rate_kendall: Option<f64>,
    /// Spearman of APNIC estimate vs subscribers (covered ISPs only).
    pub apnic_spearman: Option<f64>,
    /// Whether hit rate orders the top ISPs exactly right (the paper's
    /// French-ISP observation).
    pub hit_rate_orders_top: bool,
}

impl Fig2Analysis {
    /// Run the analysis for the `n_isps` largest eyeballs of a country.
    pub fn run(
        s: &Substrate,
        cache: &CacheProbeResult,
        country: itm_types::Country,
        n_isps: usize,
    ) -> Fig2Analysis {
        let hit_rates = cache.hit_rate_by_as(s);
        let isps = s.users.eyeballs_of_country(&s.topo, country);
        let rows: Vec<(Asn, f64, f64, Option<f64>)> = isps
            .into_iter()
            .take(n_isps)
            .map(|(asn, subs)| {
                (
                    asn,
                    subs,
                    hit_rates.get(&asn).copied().unwrap_or(0.0),
                    s.apnic.estimate(asn),
                )
            })
            .collect();

        let subs: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let hits: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let apnic_pairs: Vec<(f64, f64)> =
            rows.iter().filter_map(|r| r.3.map(|a| (r.1, a))).collect();

        let hit_rate_fit = linear_fit(&hits, &subs);
        let hit_rate_spearman = spearman(&hits, &subs);
        let hit_rate_kendall = kendall_tau(&hits, &subs);
        let apnic_spearman = if apnic_pairs.len() >= 2 {
            let (x, y): (Vec<f64>, Vec<f64>) = apnic_pairs.into_iter().unzip();
            spearman(&x, &y)
        } else {
            None
        };
        // rows are subscriber-descending; "orders correctly" = hit rates
        // are also descending.
        let hit_rate_orders_top = hits.windows(2).all(|w| w[0] >= w[1]);

        Fig2Analysis {
            rows,
            hit_rate_fit,
            hit_rate_spearman,
            hit_rate_kendall,
            apnic_spearman,
            hit_rate_orders_top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_probe::CacheProbeCampaign;
    use crate::root_crawl::RootCrawler;
    use crate::substrate::SubstrateConfig;

    fn setup() -> (Substrate, CacheProbeResult, RootCrawlResult) {
        // Seed chosen for clear statistical margins (fused spearman ≈0.6,
        // hit-rate spearman ≈0.77) under the workspace RNG.
        let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
        let resolver = s.open_resolver().expect("open resolver");
        let cache = CacheProbeCampaign::default().run(&s, &resolver);
        let root = RootCrawler::default().run(&s, &resolver);
        (s, cache, root)
    }

    #[test]
    fn fusion_produces_estimates_for_observed_ases() {
        let (s, cache, root) = setup();
        let est = ActivityEstimator::fuse(&s, &cache, &root);
        assert!(!est.is_empty());
        // Every AS discovered by cache probing has an estimate.
        for asn in cache.discovered_ases(&s) {
            assert!(est.get(asn).is_some(), "{asn} missing");
        }
        // Fused values are in [0, ~1].
        for (_, e) in est.iter() {
            assert!(e.fused >= 0.0 && e.fused <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fused_activity_correlates_with_truth() {
        let (s, cache, root) = setup();
        let est = ActivityEstimator::fuse(&s, &cache, &root);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (&asn, e) in est.iter() {
            let truth = s.traffic.as_total(asn).raw();
            if truth > 0.0 {
                xs.push(truth);
                ys.push(e.fused);
            }
        }
        let rho = spearman(&xs, &ys).unwrap();
        // The fused estimate mixes three noisy signals over *all* observed
        // ASes, including those seen by only one technique (forwarder
        // networks lose the root-log signal entirely), so the bar here is
        // deliberately lower than the per-technique correlation tests.
        assert!(rho > 0.35, "spearman {rho:.3}");
    }

    #[test]
    fn fig2_analysis_shows_the_signal() {
        let (s, cache, _) = setup();
        // Use the biggest country (country 0 has the largest weight).
        let country = s.topo.world.countries[0].country;
        let f = Fig2Analysis::run(&s, &cache, country, 6);
        assert!(!f.rows.is_empty());
        if f.rows.len() >= 3 {
            let rho = f.hit_rate_spearman.unwrap();
            assert!(rho > 0.3, "hit-rate spearman {rho:.3}");
            let (slope, _, _) = f.hit_rate_fit.unwrap();
            assert!(slope > 0.0, "fit slope {slope}");
        }
    }

    #[test]
    fn fig2_rows_are_subscriber_sorted() {
        let (s, cache, _) = setup();
        let country = s.topo.world.countries[0].country;
        let f = Fig2Analysis::run(&s, &cache, country, 8);
        for w in f.rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
