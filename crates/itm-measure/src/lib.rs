//! # itm-measure — the paper's measurement techniques
//!
//! Every technique §3 sketches, implemented as it would run against the
//! real Internet, probing the substrate through the same narrow interfaces
//! a real campaign has (DNS probes, root-log crawls, pings, TLS
//! handshakes, traceroutes). None of them read ground truth; ground truth
//! is only used afterwards, for scoring.
//!
//! | Module | Paper section | Technique |
//! |---|---|---|
//! | [`substrate`] | — | one-stop construction of a full synthetic Internet |
//! | [`cache_probe`] | §3.1.2 approach 1 | ECS cache probing of the open resolver |
//! | [`cache_host`] | §3.2.3 | instrumented edge cache: hit rates normal vs flash |
//! | [`root_crawl`] | §3.1.2 approach 2 | crawling root DNS logs for Chromium probes |
//! | [`resolver_assoc`] | §3.1.3 | resolver↔client association via instrumented pages \[43\] |
//! | [`activity`] | §3.1.3 | relative activity from cache hit rates (Fig. 2) |
//! | [`ipid_probe`] | §3.1.3 | IP ID velocity probing of routers |
//! | [`user_mapping`] | §3.2 | ECS-based user→host mapping + client-centric geolocation |
//! | [`cloud_probe`] | §3.3.2 | topology discovery from cloud vantage points |
//! | [`evolution`] | Table 1 (temporal) | Internet drift + map staleness |

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod activity;
pub mod cache_host;
pub mod cache_probe;
pub mod cloud_probe;
pub mod evolution;
pub mod ipid_probe;
pub mod resolver_assoc;
pub mod root_crawl;
pub mod substrate;
pub mod user_mapping;

pub use activity::{ActivityEstimate, ActivityEstimator};
pub use cache_host::{CacheHostExperiment, CacheHostResult, LruCache};
pub use cache_probe::{CacheProbeCampaign, CacheProbeResult};
pub use cloud_probe::CloudProbeResult;
pub use evolution::{evolve, staleness, EvolutionConfig, StalenessReport};
pub use ipid_probe::{IpidCampaign, IpidObservation, IpidResult};
pub use resolver_assoc::ResolverAssociation;
pub use root_crawl::{RootCrawlResult, RootCrawler};
pub use substrate::{Substrate, SubstrateConfig};
pub use user_mapping::{GeolocationResult, UserMapping};
