//! ECS-based user→host mapping and client-centric server geolocation
//! (§3.2, E3/E8 support).
//!
//! "ECS probing of Google Public DNS allows us to infer the users for all
//! services that support ECS" — the campaign resolves every (user prefix,
//! ECS service) pair through the open resolver with the prefix in the ECS
//! option and records the returned front-end. For services without ECS the
//! mapping cannot be measured this way (the §3.2.3 open question); the
//! result marks them unmeasurable.
//!
//! Server geolocation follows \[13\]: estimate each discovered front-end's
//! position as the user-weighted centroid of the client prefixes mapped to
//! it, and score the error against the true site city.

use crate::substrate::Substrate;
use itm_dns::OpenResolver;
use itm_topology::PrefixKind;
use itm_traffic::DeliveryMode;
use itm_types::rng::{shard_bounds, DEFAULT_SHARDS};
use itm_types::{
    merge_sorted_runs, Cell, CellMap, FaultInjector, FaultPlan, FaultStats, GeoPoint, Ipv4Addr,
    PrefixId, ServiceId,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The measured user→host mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserMapping {
    /// (service, prefix) → serving address, for measurable services.
    ///
    /// Columnar: 12 bytes per measured cell instead of a `BTreeMap` node —
    /// this map is the single largest object the build materialises (the
    /// paper's Table 1 cell grid), so its representation sets the peak.
    pub mapping: CellMap,
    /// Services that could not be measured (no ECS or anycast/custom-URL).
    pub unmeasurable: Vec<ServiceId>,
    /// Distinct serving addresses seen per service.
    pub footprint: BTreeMap<ServiceId, Vec<Ipv4Addr>>,
    /// Per-resolution fate accounting: `observed + degraded + lost`
    /// equals the resolutions issued.
    pub fault_stats: FaultStats,
    /// The same accounting, split by service. Fates are keyed by
    /// `(prefix, domain)`, so a service's row is independent of which
    /// other services were measured alongside it — the property that
    /// lets the epoch engine re-measure a dirty subset and splice its
    /// rows over the retained ones without touching the aggregate's
    /// meaning (`fault_stats` is always the fold of this map).
    pub stats_by_service: BTreeMap<ServiceId, FaultStats>,
}

impl UserMapping {
    /// Run the mapping campaign over all user prefixes × DNS-redirected
    /// ECS services.
    pub fn measure(s: &Substrate, resolver: &OpenResolver<'_>) -> UserMapping {
        Self::measure_with(s, resolver, |n, job| (0..n).map(job).collect())
    }

    /// How many shards the campaign splits into (a property of the input
    /// size, never of the machine running it).
    pub fn shard_count(s: &Substrate) -> usize {
        s.topo.prefixes.len().clamp(1, DEFAULT_SHARDS)
    }

    /// Run the campaign with a caller-supplied shard runner (see
    /// `CacheProbeCampaign::run_with`). Shards cover disjoint prefix
    /// slices and hand back sorted runs (cells ascending by `(service,
    /// prefix)`, footprints ascending by address), so the merge is a
    /// linear k-way pass and the output is byte-identical for any
    /// execution schedule.
    pub fn measure_with<R>(s: &Substrate, resolver: &OpenResolver<'_>, run_shards: R) -> UserMapping
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> UserMappingShard + Sync)) -> Vec<UserMappingShard>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), &s.seeds, "user_mapping");
        Self::measure_with_faults(s, resolver, &faults, run_shards)
    }

    /// Run the mapping campaign under a fault plan. Each resolution goes
    /// through two hops (client → open resolver → authoritative); either
    /// can fail, and the combined fate is recorded. Fates are keyed by
    /// `(prefix, domain)`, never by emission order, so degraded mappings
    /// are identical across runs and thread counts.
    pub fn measure_with_faults<R>(
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        faults: &FaultInjector,
        run_shards: R,
    ) -> UserMapping
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> UserMappingShard + Sync)) -> Vec<UserMappingShard>,
    {
        Self::measure_filtered(s, resolver, faults, None, run_shards)
    }

    /// Re-measure only the services in `subset` — the epoch engine's
    /// incremental path. Shard layout, per-shard sweep order, and every
    /// per-cell resolution are identical to what a full campaign would
    /// produce for those services (resolutions are pure functions of
    /// `(substrate, prefix, domain)`), so splicing the subset's segments
    /// over the retained map reproduces a from-scratch build byte for
    /// byte. The result is *partial*: its footprint and stats cover only
    /// `subset`, and `unmeasurable` is empty (the caller retains the
    /// previous epoch's, which is a static property of the catalogue).
    pub fn measure_subset_with_faults<R>(
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        subset: &BTreeSet<ServiceId>,
        faults: &FaultInjector,
        run_shards: R,
    ) -> UserMapping
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> UserMappingShard + Sync)) -> Vec<UserMappingShard>,
    {
        Self::measure_filtered(s, resolver, faults, Some(subset), run_shards)
    }

    /// Splice a subset re-measurement over this (previous-epoch) mapping:
    /// dirty services take `fresh`'s cells, footprints, and stats rows;
    /// everything else is retained by move. The aggregate `fault_stats`
    /// is re-folded from the spliced rows, so the accounting invariant
    /// survives (u64 sums are order-independent, matching a full build).
    pub fn splice(mut self, fresh: UserMapping, dirty: &BTreeSet<ServiceId>) -> UserMapping {
        self.mapping = self.mapping.splice_services(fresh.mapping, dirty);
        for svc in dirty {
            self.footprint.remove(svc);
            self.stats_by_service.remove(svc);
        }
        self.footprint.extend(fresh.footprint);
        self.stats_by_service.extend(fresh.stats_by_service);
        let mut fault_stats = FaultStats::default();
        for st in self.stats_by_service.values() {
            fault_stats.merge(st);
        }
        self.fault_stats = fault_stats;
        self
    }

    /// The shared campaign body: `subset = None` measures every
    /// measurable service, `Some(set)` restricts the sweep to it.
    fn measure_filtered<R>(
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        faults: &FaultInjector,
        subset: Option<&BTreeSet<ServiceId>>,
        run_shards: R,
    ) -> UserMapping
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> UserMappingShard + Sync)) -> Vec<UserMappingShard>,
    {
        let _span = itm_obs::span("user_mapping.measure");
        let _campaign = itm_obs::trace::campaign(
            itm_obs::trace::Technique::EcsMapping,
            "ECS user-to-frontend mapping",
        );
        let queries = itm_obs::counter!("probe.queries", "technique" => "ecs_mapping");

        let n_shards = Self::shard_count(s);
        let parts = run_shards(n_shards, &|shard| {
            Self::measure_shard(s, resolver, faults, subset, shard, n_shards)
        });

        let mut issued: u64 = 0;
        let mut shard_maps = Vec::with_capacity(parts.len());
        let mut seen: BTreeMap<ServiceId, Vec<Vec<Ipv4Addr>>> = BTreeMap::new();
        let mut fault_stats = FaultStats::default();
        let mut stats_by_service: BTreeMap<ServiceId, FaultStats> = BTreeMap::new();
        for part in parts {
            shard_maps.push(part.mapping);
            for (svc, addrs) in part.seen {
                seen.entry(svc).or_default().push(addrs);
            }
            issued += part.issued;
            for (svc, st) in part.stats {
                fault_stats.merge(&st);
                stats_by_service.entry(svc).or_default().merge(&st);
            }
        }
        // Zero-copy gather: shards are prefix-sliced and in shard order,
        // so the merged grid is a rearrangement of the shards' segments —
        // the cell store is never duplicated during the merge.
        let mapping = CellMap::merge_shards(shard_maps);

        let mut unmeasurable = Vec::new();
        let mut footprint: BTreeMap<ServiceId, Vec<Ipv4Addr>> = BTreeMap::new();
        for svc in &s.catalog.services {
            if let Some(set) = subset {
                if !set.contains(&svc.id) {
                    continue;
                }
            }
            if svc.ecs_support && svc.mode == DeliveryMode::DnsRedirection {
                let mut addrs = merge_sorted_runs(seen.remove(&svc.id).unwrap_or_default());
                addrs.dedup();
                footprint.insert(svc.id, addrs);
            } else if subset.is_none() {
                unmeasurable.push(svc.id);
            }
        }

        queries.add(issued);
        itm_obs::counter!("probe.bytes", "technique" => "ecs_mapping").add(issued * 160);
        UserMapping {
            mapping,
            unmeasurable,
            footprint,
            fault_stats,
            stats_by_service,
        }
    }

    /// Resolve one shard's slice of the prefix table against every
    /// measurable service (optionally restricted to `subset`).
    fn measure_shard(
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        faults: &FaultInjector,
        subset: Option<&BTreeSet<ServiceId>>,
        shard: usize,
        n_shards: usize,
    ) -> UserMappingShard {
        let (lo, hi) = shard_bounds(s.topo.prefixes.len(), shard, n_shards);
        let mut part = UserMappingShard {
            mapping: CellMap::new(),
            seen: BTreeMap::new(),
            issued: 0,
            stats: BTreeMap::new(),
        };
        for svc in &s.catalog.services {
            if !(svc.ecs_support && svc.mode == DeliveryMode::DnsRedirection) {
                continue;
            }
            if subset.is_some_and(|set| !set.contains(&svc.id)) {
                continue;
            }
            let svc_stats = part.stats.entry(svc.id).or_default();
            for rec in s.topo.prefixes.iter().skip(lo).take(hi - lo) {
                if rec.kind != PrefixKind::UserAccess {
                    continue;
                }
                part.issued += 1;
                let (ans, fate) =
                    resolver.resolve_for_client_with_faults(rec.id, &svc.domain, faults);
                svc_stats.record(fate);
                if let Some(ans) = ans {
                    // Services ascend in catalogue order and the prefix
                    // slice ascends, so pushes arrive pre-sorted.
                    part.mapping.push(Cell {
                        service: svc.id,
                        prefix: rec.id,
                        addr: ans.addr,
                    });
                    let seen = part.seen.entry(svc.id).or_default();
                    if !seen.contains(&ans.addr) {
                        seen.push(ans.addr);
                    }
                }
            }
        }
        // Sort footprints inside the shard so the merge never has to.
        for addrs in part.seen.values_mut() {
            addrs.sort_unstable();
        }
        part
    }

    /// All measured cells of one service, ascending by prefix id — the
    /// ECS technique's claim table for the quality audit, walkable in
    /// lockstep with an ascending prefix sweep (no per-cell map lookups).
    pub fn cells_of(&self, svc: ServiceId) -> impl Iterator<Item = (PrefixId, Ipv4Addr)> + '_ {
        self.mapping.cells_of(svc).map(|c| (c.prefix, c.addr))
    }

    /// Fraction of (prefix, service) cells whose measured front-end equals
    /// the ground-truth redirection target — the mapping's correctness.
    pub fn accuracy(&self, s: &Substrate) -> f64 {
        if self.mapping.is_empty() {
            return 0.0;
        }
        let mut ok = 0usize;
        for c in self.mapping.iter() {
            let rec = s.topo.prefixes.get(c.prefix);
            let truth = s.frontends.select(&s.topo, c.service, rec.owner, rec.city);
            if truth.addr == c.addr {
                ok += 1;
            }
        }
        ok as f64 / self.mapping.len() as f64
    }

    /// Traffic share of measurable services (the §3.2.3 ECS statistics:
    /// "15 of the top 20 sites support ECS, representing 35% of Internet
    /// traffic and 91% of traffic to the top 20 sites").
    pub fn measurable_traffic_share(&self, s: &Substrate) -> f64 {
        let measured: f64 = self
            .footprint
            .keys()
            .map(|&svc| s.catalog.get(svc).traffic_share)
            .sum();
        measured
    }
}

/// One shard's partial mapping output (disjoint prefix slice). Both the
/// cell run and the per-service footprints leave the shard sorted.
#[derive(Debug, Clone)]
pub struct UserMappingShard {
    mapping: CellMap,
    seen: BTreeMap<ServiceId, Vec<Ipv4Addr>>,
    issued: u64,
    /// Per-service fate accounting for this shard's slice.
    stats: BTreeMap<ServiceId, FaultStats>,
}

/// Geolocation of serving addresses from the client side \[13\].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeolocationResult {
    /// Per-address (estimated location, error in km vs true city).
    pub estimates: BTreeMap<u32, (GeoPoint, f64)>,
}

impl GeolocationResult {
    /// Estimate each front-end's location as the user-weighted centroid of
    /// the client prefixes it serves.
    pub fn client_centric(s: &Substrate, mapping: &UserMapping) -> GeolocationResult {
        // Accumulate client weights per address.
        #[derive(Default)]
        struct Acc {
            lat: f64,
            lon_x: f64,
            lon_y: f64,
            w: f64,
        }
        let mut acc: BTreeMap<u32, Acc> = BTreeMap::new();
        for c in mapping.mapping.iter() {
            let rec = s.topo.prefixes.get(c.prefix);
            let users = s.users.users_of(c.prefix);
            if users <= 0.0 {
                continue;
            }
            let loc = s.topo.city_location(rec.city);
            let a = acc.entry(c.addr.0).or_default();
            a.lat += loc.lat * users;
            // Average longitudes on the unit circle to dodge the ±180 seam.
            let r = loc.lon.to_radians();
            a.lon_x += r.cos() * users;
            a.lon_y += r.sin() * users;
            a.w += users;
        }

        let mut estimates = BTreeMap::new();
        for (addr, a) in acc {
            if a.w <= 0.0 {
                continue;
            }
            let est = GeoPoint::new(a.lat / a.w, a.lon_y.atan2(a.lon_x).to_degrees());
            let truth = s
                .topo
                .prefixes
                .lookup(Ipv4Addr(addr))
                .map(|r| s.topo.city_location(r.city));
            let err = truth.map(|t| t.distance_km(est)).unwrap_or(f64::NAN);
            estimates.insert(addr, (est, err));
        }
        GeolocationResult { estimates }
    }

    /// Median geolocation error in km.
    pub fn median_error_km(&self) -> Option<f64> {
        let mut errs: Vec<f64> = self
            .estimates
            .values()
            .map(|(_, e)| *e)
            .filter(|e| e.is_finite())
            .collect();
        if errs.is_empty() {
            return None;
        }
        errs.sort_by(|a, b| a.total_cmp(b));
        Some(errs[errs.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;

    fn setup() -> (Substrate, UserMapping) {
        let s = Substrate::build(SubstrateConfig::small(), 131).unwrap();
        let resolver = s.open_resolver().expect("open resolver");
        let m = UserMapping::measure(&s, &resolver);
        (s, m)
    }

    #[test]
    fn mapping_is_exact_for_ecs_services() {
        let (s, m) = setup();
        assert!(!m.mapping.is_empty());
        // ECS DNS redirection reveals the true mapping (the technique's
        // promise: "infer the users for all services that support ECS").
        let acc = m.accuracy(&s);
        assert!(acc > 0.999, "accuracy {acc}");
    }

    #[test]
    fn unmeasurable_services_are_the_non_ecs_ones() {
        let (s, m) = setup();
        for &svc in &m.unmeasurable {
            let info = s.catalog.get(svc);
            assert!(
                !info.ecs_support || info.mode != DeliveryMode::DnsRedirection,
                "{} wrongly unmeasurable",
                info.domain
            );
        }
        // Partition: measurable + unmeasurable = all services.
        assert_eq!(m.footprint.len() + m.unmeasurable.len(), s.catalog.len());
    }

    #[test]
    fn measurable_share_is_substantial_but_partial() {
        let (s, m) = setup();
        let share = m.measurable_traffic_share(&s);
        assert!(share > 0.15, "share {share:.3}");
        assert!(share < 0.95, "share {share:.3}");
    }

    #[test]
    fn footprints_are_sorted_and_real() {
        let (s, m) = setup();
        for (svc, addrs) in &m.footprint {
            for w in addrs.windows(2) {
                assert!(w[0] < w[1]);
            }
            for a in addrs {
                // Every observed front-end is a real endpoint of the service.
                assert!(
                    s.frontends.endpoints(*svc).iter().any(|e| e.addr == *a),
                    "phantom endpoint {a}"
                );
            }
        }
    }

    #[test]
    fn geolocation_errors_are_city_scale() {
        let (s, m) = setup();
        let geo = GeolocationResult::client_centric(&s, &m);
        assert!(!geo.estimates.is_empty());
        let med = geo.median_error_km().unwrap();
        // Client-centroid geolocation is coarse but should land on the
        // right continent for most front-ends.
        assert!(med < 3000.0, "median error {med:.0} km");
    }
}
