//! ECS cache probing of the open resolver (§3.1.2, approach 1).
//!
//! "By iterating over all routable prefixes, our methods identified client
//! activity in prefixes representing 95% of Microsoft CDN traffic."
//!
//! The campaign iterates every routable /24 (from public BGP data — in the
//! substrate, the prefix table), probing the open resolver non-recursively
//! for a list of popular domains with the prefix in the ECS option,
//! several times per day. A prefix with at least one hit is *discovered*;
//! hit counts feed the relative-activity estimator (Fig. 2).

use crate::substrate::Substrate;
use itm_dns::{OpenResolver, ProbeResult};
use itm_types::rng::{shard_bounds, DEFAULT_SHARDS};
use itm_types::{Asn, FaultInjector, FaultPlan, FaultStats, PopId, PrefixId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheProbeCampaign {
    /// How many of the most popular ECS-supporting domains to probe.
    pub n_domains: usize,
    /// Probe rounds per day (each round probes every prefix × domain).
    pub rounds_per_day: u32,
    /// Campaign length.
    pub duration: SimDuration,
    /// Campaign start.
    pub start: SimTime,
}

impl Default for CacheProbeCampaign {
    fn default() -> Self {
        CacheProbeCampaign {
            n_domains: 10,
            rounds_per_day: 8,
            duration: SimDuration::days(1),
            start: SimTime::ZERO,
        }
    }
}

/// Campaign output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheProbeResult {
    /// Prefixes with at least one cache hit.
    pub discovered: BTreeSet<PrefixId>,
    /// Hits per prefix (discovery strength / activity signal).
    pub hits_by_prefix: BTreeMap<PrefixId, u32>,
    /// Probes issued per prefix (denominator for hit rates).
    pub probes_per_prefix: u32,
    /// Distinct discovered prefixes per open-resolver PoP (Figure 1a).
    pub discovered_by_pop: BTreeMap<PopId, u32>,
    /// The domains probed.
    pub domains: Vec<String>,
    /// Per-probe fate accounting: `observed + degraded + lost` equals the
    /// probes issued (all-observed when the campaign ran without faults).
    pub fault_stats: FaultStats,
}

impl CacheProbeCampaign {
    /// The domain list a real campaign would use: the most popular sites
    /// that support ECS (non-ECS domains give no per-prefix signal, so
    /// campaigns skip them).
    pub fn pick_domains(&self, s: &Substrate) -> Vec<String> {
        s.catalog
            .services
            .iter()
            .filter(|svc| svc.ecs_support)
            .take(self.n_domains)
            .map(|svc| svc.domain.clone())
            .collect()
    }

    /// How many shards the campaign splits into (a property of the input
    /// size, never of the machine running it).
    pub fn shard_count(&self, s: &Substrate) -> usize {
        s.topo.prefixes.len().clamp(1, DEFAULT_SHARDS)
    }

    /// Run the campaign sequentially (shards executed in index order).
    pub fn run(&self, s: &Substrate, resolver: &OpenResolver<'_>) -> CacheProbeResult {
        self.run_with(s, resolver, |n, job| (0..n).map(job).collect())
    }

    /// Run the campaign with a caller-supplied shard runner.
    ///
    /// `run_shards(n, job)` must return `job(0..n)` results in shard-index
    /// order; whether the jobs execute sequentially or on a worker pool is
    /// the caller's business. Each shard probes a fixed contiguous slice
    /// of the prefix table, and the merge is a union of disjoint per-shard
    /// maps, so the result is identical for any execution schedule.
    pub fn run_with<R>(
        &self,
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        run_shards: R,
    ) -> CacheProbeResult
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> CacheProbeShard + Sync)) -> Vec<CacheProbeShard>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), &s.seeds, "cache_probe");
        self.run_with_faults(s, resolver, &faults, run_shards)
    }

    /// Run the campaign under a fault plan. Probe fates are keyed by
    /// `(prefix address, domain, round)`, so the set of lost probes is a
    /// pure function of the plan — identical across runs and thread
    /// counts. With an off plan this is exactly `run_with`.
    pub fn run_with_faults<R>(
        &self,
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        faults: &FaultInjector,
        run_shards: R,
    ) -> CacheProbeResult
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> CacheProbeShard + Sync)) -> Vec<CacheProbeShard>,
    {
        let _span = itm_obs::span("cache_probe.run");
        let _campaign =
            itm_obs::trace::campaign(itm_obs::trace::Technique::CacheProbe, "ecs cache probing");
        let queries = itm_obs::counter!("probe.queries", "technique" => "cache_probe");
        let domains = self.pick_domains(s);
        let (rounds, _) = self.schedule();

        let n_shards = self.shard_count(s);
        let parts = run_shards(n_shards, &|shard| {
            self.probe_shard(s, resolver, &domains, faults, shard, n_shards)
        });

        // Merge in shard-index order. Shards cover disjoint prefix slices,
        // so the unions below are order-insensitive anyway — the fixed
        // order is the convention every sharded campaign follows.
        let mut discovered: BTreeSet<PrefixId> = BTreeSet::new();
        let mut hits_by_prefix: BTreeMap<PrefixId, u32> = BTreeMap::new();
        let mut issued: u64 = 0;
        let mut fault_stats = FaultStats::default();
        for part in parts {
            discovered.extend(part.discovered);
            hits_by_prefix.extend(part.hits_by_prefix);
            issued += part.issued;
            fault_stats.merge(&part.stats);
        }
        queries.add(issued);
        // One DNS query ≈ 80 bytes on the wire each way; the campaign's
        // only targets are the open resolver's PoPs.
        itm_obs::counter!("probe.bytes", "technique" => "cache_probe").add(issued * 160);
        itm_obs::counter!("probe.hosts", "technique" => "cache_probe")
            .add(resolver.pops().len() as u64);

        let mut discovered_by_pop: BTreeMap<PopId, u32> = BTreeMap::new();
        for &p in &discovered {
            *discovered_by_pop.entry(resolver.pop_of(p)).or_insert(0) += 1;
        }

        CacheProbeResult {
            discovered,
            hits_by_prefix,
            probes_per_prefix: (rounds as u32) * domains.len() as u32,
            discovered_by_pop,
            domains,
            fault_stats,
        }
    }

    /// The probe cadence: `(rounds, seconds between rounds)`, a pure
    /// function of the campaign parameters.
    fn schedule(&self) -> (u64, u64) {
        let rounds = (self.duration.as_secs() as f64 / 86_400.0 * self.rounds_per_day as f64)
            .round()
            .max(1.0) as u64;
        (rounds, self.duration.as_secs() / rounds)
    }

    /// Probe one shard's slice of the prefix table. Pure given the shard
    /// index: the resolver's cache oracle is deterministic per
    /// (prefix, domain, time), so no shard sees another's state.
    fn probe_shard(
        &self,
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        domains: &[String],
        faults: &FaultInjector,
        shard: usize,
        n_shards: usize,
    ) -> CacheProbeShard {
        let (rounds, step) = self.schedule();
        let (lo, hi) = shard_bounds(s.topo.prefixes.len(), shard, n_shards);
        let mut part = CacheProbeShard {
            discovered: BTreeSet::new(),
            hits_by_prefix: BTreeMap::new(),
            issued: 0,
            stats: FaultStats::default(),
        };
        for round in 0..rounds {
            let t = SimTime(self.start.as_secs() + round * step);
            for rec in s.topo.prefixes.iter().skip(lo).take(hi - lo) {
                for d in domains {
                    part.issued += 1;
                    let (res, fate) = resolver.probe_with_faults(rec.net, d, t, faults, round);
                    part.stats.record(fate);
                    if let Some(ProbeResult::Hit(_)) = res {
                        part.discovered.insert(rec.id);
                        *part.hits_by_prefix.entry(rec.id).or_insert(0) += 1;
                    }
                }
            }
        }
        part
    }
}

/// One shard's partial campaign output (disjoint prefix slice).
#[derive(Debug, Clone)]
pub struct CacheProbeShard {
    discovered: BTreeSet<PrefixId>,
    hits_by_prefix: BTreeMap<PrefixId, u32>,
    issued: u64,
    stats: FaultStats,
}

impl CacheProbeResult {
    /// ASes with at least one discovered prefix.
    pub fn discovered_ases(&self, s: &Substrate) -> BTreeSet<Asn> {
        self.discovered
            .iter()
            .map(|&p| s.topo.prefixes.get(p).owner)
            .collect()
    }

    /// Hit counts aggregated per AS (the Fig. 2 x-axis signal).
    pub fn hits_by_as(&self, s: &Substrate) -> BTreeMap<Asn, u32> {
        let mut out: BTreeMap<Asn, u32> = BTreeMap::new();
        for (&p, &h) in &self.hits_by_prefix {
            *out.entry(s.topo.prefixes.get(p).owner).or_insert(0) += h;
        }
        out
    }

    /// Hit *rate* per AS: hits / probes issued to that AS's prefixes.
    pub fn hit_rate_by_as(&self, s: &Substrate) -> BTreeMap<Asn, f64> {
        let hits = self.hits_by_as(s);
        let mut out = BTreeMap::new();
        for (asn, h) in hits {
            let n_prefixes = s.topo.prefixes.owned_by(asn).len() as f64;
            let probes = n_prefixes * self.probes_per_prefix as f64;
            if probes > 0.0 {
                out.insert(asn, h as f64 / probes);
            }
        }
        out
    }

    /// Dense presence-claim bitmap: `true` at each discovered prefix
    /// index. This is cache probing's claim surface for the quality
    /// audit — the technique asserts "this /24 hosts users", for every
    /// service (it is service-agnostic at cell granularity).
    pub fn presence_claims(&self, n_prefixes: usize) -> Vec<bool> {
        let mut out = vec![false; n_prefixes];
        for &p in &self.discovered {
            if let Some(slot) = out.get_mut(p.index()) {
                *slot = true;
            }
        }
        out
    }

    /// False-discovery rate: fraction of discovered prefixes that host no
    /// users at all (the "<1% of identified client prefixes did not
    /// contact Microsoft" check from \[34\]).
    pub fn false_discovery_rate(&self, s: &Substrate) -> f64 {
        if self.discovered.is_empty() {
            return 0.0;
        }
        let false_pos = self
            .discovered
            .iter()
            .filter(|&&p| s.users.users_of(p) <= 0.0)
            .count();
        false_pos as f64 / self.discovered.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;
    use std::collections::BTreeSet as HS;

    fn setup() -> Substrate {
        Substrate::build(SubstrateConfig::small(), 103).unwrap()
    }

    #[test]
    fn campaign_discovers_most_traffic() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = CacheProbeCampaign::default().run(&s, &resolver);
        assert!(!result.discovered.is_empty());
        // Traffic-weighted coverage should be high: busy prefixes are the
        // easiest to discover (the paper's 95% result, shape-wise).
        let cov =
            s.traffic
                .provider_coverage(&s.topo, &s.users, &s.catalog, &result.discovered, None);
        assert!(cov > 0.75, "coverage only {cov:.3}");
        // And per-prefix recall is *lower* than traffic coverage (quiet
        // prefixes get missed) — the whole point of traffic weighting.
        let all_user: HS<PrefixId> = s.users.user_prefixes(&s.topo).collect();
        let recall = result
            .discovered
            .iter()
            .filter(|p| all_user.contains(p))
            .count() as f64
            / all_user.len() as f64;
        assert!(recall < cov, "recall {recall:.3} vs coverage {cov:.3}");
    }

    #[test]
    fn false_discovery_rate_is_tiny() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = CacheProbeCampaign::default().run(&s, &resolver);
        let fdr = result.false_discovery_rate(&s);
        assert!(fdr < 0.02, "FDR {fdr:.4}");
    }

    #[test]
    fn hit_counts_track_activity() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = CacheProbeCampaign::default().run(&s, &resolver);
        // Across discovered prefixes, hits should correlate with traffic.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (&p, &h) in &result.hits_by_prefix {
            xs.push(s.traffic.prefix_total(p).raw());
            ys.push(h as f64);
        }
        let rho = itm_types::stats::spearman(&xs, &ys).unwrap();
        assert!(rho > 0.4, "spearman {rho:.3}");
    }

    #[test]
    fn per_pop_counts_sum_to_discoveries() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = CacheProbeCampaign::default().run(&s, &resolver);
        let sum: u32 = result.discovered_by_pop.values().sum();
        assert_eq!(sum as usize, result.discovered.len());
    }

    #[test]
    fn more_rounds_discover_no_less() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let short = CacheProbeCampaign {
            rounds_per_day: 2,
            ..Default::default()
        }
        .run(&s, &resolver);
        let long = CacheProbeCampaign {
            rounds_per_day: 16,
            ..Default::default()
        }
        .run(&s, &resolver);
        assert!(long.discovered.len() >= short.discovered.len());
    }

    #[test]
    fn domain_list_is_ecs_only() {
        let s = setup();
        let c = CacheProbeCampaign::default();
        for d in c.pick_domains(&s) {
            assert!(s.catalog.by_domain(&d).unwrap().ecs_support);
        }
    }
}
