//! Associating recursive resolvers with their clients (§3.1.3, \[43\]).
//!
//! "Since logs capture the address of the recursive resolver (rather than
//! of the client), we either need to make simplifying assumptions … or
//! deploy techniques to associate recursive resolvers with their clients
//! (e.g., embedding measurements of the associations in popular pages
//! \[43\]). Such an association would enable joining of resolver-based
//! techniques with client-based techniques."
//!
//! The technique: a popular page embeds a unique-per-visit hostname whose
//! authoritative server the experimenters run. When a user loads the page,
//! the experimenters observe (client address from the HTTP fetch, resolver
//! egress address from the DNS query) — one association sample. Coverage
//! is visit-driven: busy prefixes are observed early, quiet ones may never
//! appear.
//!
//! The association is then used to *correct* root-log attribution: query
//! counts from a known resolver egress are redistributed over that
//! resolver's observed client ASes instead of being booked to the egress
//! address's own AS.

use crate::root_crawl::RootCrawlResult;
use crate::substrate::Substrate;
use itm_dns::{OpenResolver, RootLogs};
use itm_topology::PrefixKind;
use itm_types::{Asn, Ipv4Addr, SeedDomain};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Measured resolver→clients association.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResolverAssociation {
    /// resolver egress address → (client AS → observed visit weight).
    pub clients_of: BTreeMap<u32, BTreeMap<Asn, f64>>,
    /// Number of prefixes observed at least once.
    pub prefixes_observed: usize,
}

impl ResolverAssociation {
    /// Run the instrumented-page campaign.
    ///
    /// `page_reach` scales how many visits the instrumented page gets: the
    /// probability a prefix is observed is `1 − exp(−reach · activity)`,
    /// so busy prefixes are seen almost surely and quiet ones rarely —
    /// the realistic coverage profile of a page-based vantage.
    pub fn measure(
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        page_reach: f64,
        seeds: &SeedDomain,
    ) -> ResolverAssociation {
        let seeds = seeds.child("resolver-assoc");
        let mut clients_of: BTreeMap<u32, BTreeMap<Asn, f64>> = BTreeMap::new();
        let mut observed = 0usize;

        // Mean prefix activity normalizer.
        let mut total_activity = 0.0;
        let mut n_user = 0usize;
        for rec in s.topo.prefixes.iter() {
            if rec.kind == PrefixKind::UserAccess {
                total_activity += s.traffic.prefix_total(rec.id).raw();
                n_user += 1;
            }
        }
        let mean_activity = (total_activity / n_user.max(1) as f64).max(1.0);

        for rec in s.topo.prefixes.iter() {
            if rec.kind != PrefixKind::UserAccess {
                continue;
            }
            let activity = s.traffic.prefix_total(rec.id).raw() / mean_activity;
            let p_seen = 1.0 - (-page_reach * activity).exp();
            let mut rng = seeds.rng_indexed("visit", rec.id.raw() as u64);
            use rand::Rng;
            if !rng.gen_bool(p_seen.clamp(0.0, 1.0)) {
                continue;
            }
            observed += 1;
            let users = s.users.users_of(rec.id);

            // The prefix's ISP-resolver side.
            let isp_share = s.resolvers.isp_share(rec.id);
            if isp_share > 0.0 {
                if let Some(res) = s.resolvers.resolver_of(rec.owner) {
                    // Forwarders egress from the open resolver; their DNS
                    // side is observed as the open egress instead.
                    let egress = if res.forwards_to_open {
                        resolver.pop_egress_addr(resolver.pop_of(rec.id))
                    } else {
                        res.addr
                    };
                    *clients_of
                        .entry(egress.0)
                        .or_default()
                        .entry(rec.owner)
                        .or_insert(0.0) += users * isp_share;
                }
            }
            // The open-resolver side.
            let open_share = s.resolvers.open_share(rec.id);
            if open_share > 0.0 {
                let egress = resolver.pop_egress_addr(resolver.pop_of(rec.id));
                *clients_of
                    .entry(egress.0)
                    .or_default()
                    .entry(rec.owner)
                    .or_insert(0.0) += users * open_share;
            }
        }

        ResolverAssociation {
            clients_of,
            prefixes_observed: observed,
        }
    }

    /// The client-AS weight distribution behind a resolver egress.
    pub fn clients(&self, egress: Ipv4Addr) -> Option<&BTreeMap<Asn, f64>> {
        self.clients_of.get(&egress.0)
    }

    /// Re-attribute root-log query counts using the association: counts
    /// from a known egress are split over its observed client ASes
    /// proportionally to the observed visit weights; unknown egresses fall
    /// back to the naive owner-AS attribution.
    pub fn correct_attribution(&self, s: &Substrate, logs: &RootLogs) -> RootCrawlResult {
        let mut queries_by_as: BTreeMap<Asn, f64> = BTreeMap::new();
        let mut unmapped = 0usize;
        for e in &logs.entries {
            if let Some(dist) = self.clients(e.src) {
                let total: f64 = dist.values().sum();
                if total > 0.0 {
                    for (&asn, &w) in dist {
                        *queries_by_as.entry(asn).or_insert(0.0) += e.queries * w / total;
                    }
                    continue;
                }
            }
            match s.topo.prefixes.lookup(e.src) {
                Some(rec) => {
                    *queries_by_as.entry(rec.owner).or_insert(0.0) += e.queries;
                }
                None => unmapped += 1,
            }
        }
        RootCrawlResult {
            queries_by_as,
            unmapped_sources: unmapped,
            usable_fraction: logs.usable_fraction,
            fault_stats: itm_types::FaultStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::root_crawl::RootCrawler;
    use crate::substrate::SubstrateConfig;
    use itm_dns::{RootLogs, RootServerSet};
    use itm_types::SimDuration;
    use std::collections::BTreeSet;

    fn setup() -> Substrate {
        Substrate::build(SubstrateConfig::small(), 179).unwrap()
    }

    #[test]
    fn busy_prefixes_are_observed_first() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let assoc = ResolverAssociation::measure(&s, &resolver, 1.0, &SeedDomain::new(179));
        assert!(assoc.prefixes_observed > 0);
        let total_user = s.users.user_prefixes(&s.topo).count();
        assert!(assoc.prefixes_observed < total_user, "page saw everyone?");
        // Higher reach observes at least as many prefixes.
        let wide = ResolverAssociation::measure(&s, &resolver, 20.0, &SeedDomain::new(179));
        assert!(wide.prefixes_observed >= assoc.prefixes_observed);
    }

    #[test]
    fn association_improves_root_attribution() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let logs = RootLogs::collect(
            &s.topo,
            &s.resolvers,
            &s.chromium,
            &resolver,
            &RootServerSet::typical(),
            SimDuration::days(2),
            &s.seeds,
        );
        let naive = RootCrawler::default().crawl(&s, &logs);
        let assoc = ResolverAssociation::measure(&s, &resolver, 5.0, &SeedDomain::new(180));
        let corrected = assoc.correct_attribution(&s, &logs);

        let cov = |r: &RootCrawlResult| {
            let ases: BTreeSet<Asn> = r.client_ases(&s).into_iter().collect();
            s.traffic
                .provider_coverage_as(&s.topo, &s.users, &s.catalog, &ases, None)
        };
        let c_naive = cov(&naive);
        let c_corrected = cov(&corrected);
        assert!(
            c_corrected > c_naive,
            "association should recover forwarder-hidden ASes: {c_naive:.3} -> {c_corrected:.3}"
        );
    }

    #[test]
    fn corrected_counts_conserve_mass_for_known_egresses() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let logs = RootLogs::collect(
            &s.topo,
            &s.resolvers,
            &s.chromium,
            &resolver,
            &RootServerSet::typical(),
            SimDuration::days(2),
            &s.seeds,
        );
        let assoc = ResolverAssociation::measure(&s, &resolver, 50.0, &SeedDomain::new(181));
        let corrected = assoc.correct_attribution(&s, &logs);
        let total_logged: f64 = logs.entries.iter().map(|e| e.queries).sum();
        let total_attributed: f64 = corrected.queries_by_as.values().sum();
        assert!(
            (total_attributed - total_logged).abs() / total_logged < 1e-6,
            "mass not conserved: {total_attributed} vs {total_logged}"
        );
    }
}
