//! Crawling root DNS logs for Chromium probes (§3.1.2, approach 2).
//!
//! "Since most queries to the root DNS are from recursive resolvers
//! (rather than clients), crawling root DNS logs gave an indicator of
//! activity by recursive resolver. With the assumption that most users are
//! in the same AS as their recursive resolvers, crawling root DNS logs
//! helped us identify the presence of Internet clients in ASes
//! representing 60% of Microsoft CDN traffic."
//!
//! The crawler maps each log source address to its origin AS via the
//! routed-prefix table (public BGP knowledge) and attributes the query
//! count to that AS. Two documented biases emerge naturally: queries via
//! the open resolver are attributed to its operator's AS (lost for
//! eyeball inference), and outsourced ISP resolvers attribute a network's
//! users to the wrong AS (the §3.1.3 co-location assumption, ablated in
//! D2).

use crate::substrate::Substrate;
use itm_dns::{OpenResolver, RootLogs, RootServerSet};
use itm_types::rng::{shard_bounds, DEFAULT_SHARDS};
use itm_types::{Asn, FaultInjector, FaultPlan, FaultStats, Ipv4Addr, ProbeFate, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The crawler configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootCrawler {
    /// Collection window (DITL snapshots are ~2 days, once a year).
    pub window: SimDuration,
    /// Root-operator log policies.
    pub roots: RootServerSet,
}

impl Default for RootCrawler {
    fn default() -> Self {
        RootCrawler {
            window: SimDuration::days(2),
            roots: RootServerSet::typical(),
        }
    }
}

/// Crawl output: per-AS Chromium query counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootCrawlResult {
    /// Queries attributed to each AS (resolver-address origin AS).
    pub queries_by_as: BTreeMap<Asn, f64>,
    /// Log sources that could not be mapped to a routed prefix.
    pub unmapped_sources: usize,
    /// Fraction of total root traffic the usable logs covered.
    pub usable_fraction: f64,
    /// Per-log-line fate accounting: `observed + degraded + lost` equals
    /// the lines collected. Lines from churned resolvers count as lost.
    pub fault_stats: FaultStats,
}

impl RootCrawler {
    /// Simulate the collection and crawl it.
    pub fn run(&self, s: &Substrate, resolver: &OpenResolver<'_>) -> RootCrawlResult {
        self.run_with(s, resolver, |n, job| (0..n).map(job).collect())
    }

    /// Run with a caller-supplied shard runner (see `CacheProbeCampaign::run_with`).
    /// Log collection itself stays sequential — it draws from one RNG
    /// stream — only the crawl over the collected lines is sharded.
    pub fn run_with<R>(
        &self,
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        run_shards: R,
    ) -> RootCrawlResult
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> RootCrawlShard + Sync)) -> Vec<RootCrawlShard>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), &s.seeds, "root_crawl");
        self.run_with_faults(s, resolver, &faults, run_shards)
    }

    /// Simulate the collection and crawl it under a fault plan: resolvers
    /// that churn away contribute no usable lines, and individual lines
    /// go missing at the plan's loss rate (truncated captures, transfer
    /// failures). Fates are keyed by `(source address, global line
    /// index)`, so the lost set is identical across thread counts.
    pub fn run_with_faults<R>(
        &self,
        s: &Substrate,
        resolver: &OpenResolver<'_>,
        faults: &FaultInjector,
        run_shards: R,
    ) -> RootCrawlResult
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> RootCrawlShard + Sync)) -> Vec<RootCrawlShard>,
    {
        let _span = itm_obs::span("root_crawl.run");
        let logs = RootLogs::collect(
            &s.topo,
            &s.resolvers,
            &s.chromium,
            resolver,
            &self.roots,
            self.window,
            &s.seeds,
        );
        self.crawl_with_faults(s, &logs, faults, run_shards)
    }

    /// Crawl pre-collected logs.
    pub fn crawl(&self, s: &Substrate, logs: &RootLogs) -> RootCrawlResult {
        self.crawl_with(s, logs, |n, job| (0..n).map(job).collect())
    }

    /// How many shards the crawl splits into (a property of the log size).
    pub fn shard_count(&self, logs: &RootLogs) -> usize {
        logs.entries.len().clamp(1, DEFAULT_SHARDS)
    }

    /// Crawl pre-collected logs with a caller-supplied shard runner.
    ///
    /// Each shard attributes a contiguous slice of log lines; partial
    /// per-AS sums are merged in shard-index order so the floating-point
    /// accumulation order — and hence the output bytes — never depend on
    /// the execution schedule.
    pub fn crawl_with<R>(&self, s: &Substrate, logs: &RootLogs, run_shards: R) -> RootCrawlResult
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> RootCrawlShard + Sync)) -> Vec<RootCrawlShard>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), &s.seeds, "root_crawl");
        self.crawl_with_faults(s, logs, &faults, run_shards)
    }

    /// Crawl pre-collected logs under a fault plan (see
    /// `run_with_faults`).
    pub fn crawl_with_faults<R>(
        &self,
        s: &Substrate,
        logs: &RootLogs,
        faults: &FaultInjector,
        run_shards: R,
    ) -> RootCrawlResult
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> RootCrawlShard + Sync)) -> Vec<RootCrawlShard>,
    {
        let _campaign =
            itm_obs::trace::campaign(itm_obs::trace::Technique::RootCrawl, "root DNS log crawl");
        itm_obs::counter!("probe.log_lines", "technique" => "root_crawl")
            .add(logs.entries.len() as u64);
        let churned = s.resolvers.churned_sources(faults);
        let n_shards = self.shard_count(logs);
        let parts = run_shards(n_shards, &|shard| {
            self.crawl_shard(s, logs, faults, &churned, shard, n_shards)
        });
        let mut queries_by_as: BTreeMap<Asn, f64> = BTreeMap::new();
        let mut unmapped = 0;
        let mut fault_stats = FaultStats::default();
        for part in parts {
            for (a, q) in part.queries_by_as {
                *queries_by_as.entry(a).or_insert(0.0) += q;
            }
            unmapped += part.unmapped;
            fault_stats.merge(&part.stats);
        }
        itm_obs::counter!("probe.unmapped_sources", "technique" => "root_crawl")
            .add(unmapped as u64);
        RootCrawlResult {
            queries_by_as,
            unmapped_sources: unmapped,
            usable_fraction: logs.usable_fraction,
            fault_stats,
        }
    }

    /// Attribute one shard's slice of log lines to origin ASes.
    fn crawl_shard(
        &self,
        s: &Substrate,
        logs: &RootLogs,
        faults: &FaultInjector,
        churned: &BTreeSet<Ipv4Addr>,
        shard: usize,
        n_shards: usize,
    ) -> RootCrawlShard {
        let (lo, hi) = shard_bounds(logs.entries.len(), shard, n_shards);
        let mut part = RootCrawlShard {
            queries_by_as: BTreeMap::new(),
            unmapped: 0,
            stats: FaultStats::default(),
        };
        let faults_on = !faults.is_off();
        for (i, e) in logs.entries[lo..hi].iter().enumerate() {
            let fate = if !faults_on {
                ProbeFate::Observed
            } else if churned.contains(&e.src) {
                ProbeFate::Lost
            } else {
                faults.fate(e.src.0 as u64, (lo + i) as u64, 0)
            };
            part.stats.record(fate);
            if !fate.succeeded() {
                itm_obs::counter!("faults.log_line.lost").inc();
                if itm_obs::trace::enabled() {
                    itm_obs::trace::emit(
                        itm_obs::trace::Technique::RootCrawl,
                        itm_obs::trace::EventKind::ProbeFailed,
                        itm_obs::trace::Subjects::none().addr(e.src.0),
                        if churned.contains(&e.src) {
                            "log line lost: source resolver churned"
                        } else {
                            "log line lost in collection"
                        },
                    );
                }
                continue;
            }
            match s.topo.prefixes.lookup(e.src) {
                Some(rec) => {
                    itm_obs::trace::emit(
                        itm_obs::trace::Technique::RootCrawl,
                        itm_obs::trace::EventKind::LogLineAttributed,
                        itm_obs::trace::Subjects::none()
                            .asn(rec.owner.raw())
                            .addr(e.src.0)
                            .prefix(rec.id.raw()),
                        "",
                    );
                    *part.queries_by_as.entry(rec.owner).or_insert(0.0) += e.queries;
                }
                None => part.unmapped += 1,
            }
        }
        part
    }
}

/// One shard's partial crawl output (disjoint log-line slice).
#[derive(Debug, Clone)]
pub struct RootCrawlShard {
    queries_by_as: BTreeMap<Asn, f64>,
    unmapped: usize,
    stats: FaultStats,
}

impl RootCrawlResult {
    /// ASes identified as hosting clients, excluding content networks
    /// (the crawler knows hypergiant/cloud ASNs are resolver operators,
    /// not eyeballs — published campaigns apply the same filter).
    pub fn client_ases(&self, s: &Substrate) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .queries_by_as
            .keys()
            .copied()
            .filter(|&a| !s.topo.as_info(a).class.is_content())
            .collect();
        v.sort_unstable();
        v
    }

    /// The AS-granularity presence-claim set: root-log crawling asserts
    /// "this AS hosts clients". The quality audit expands the claim to
    /// every cell of the AS's prefixes, which is exactly the technique's
    /// coarseness — it can be right about the AS and still wrong about a
    /// user-free prefix inside it.
    pub fn claimed_as_set(&self, s: &Substrate) -> BTreeSet<Asn> {
        self.client_ases(s).into_iter().collect()
    }

    /// Relative activity estimate per AS (query count, normalized to the
    /// max — §3.1.3: counts are "roughly proportional to the number of
    /// Chromium clients behind a recursive resolver").
    pub fn relative_activity(&self, s: &Substrate) -> BTreeMap<Asn, f64> {
        let max = self
            .queries_by_as
            .iter()
            .filter(|(a, _)| !s.topo.as_info(**a).class.is_content())
            .map(|(_, q)| *q)
            .fold(0.0f64, f64::max);
        if max <= 0.0 {
            return BTreeMap::new();
        }
        self.queries_by_as
            .iter()
            .filter(|(a, _)| !s.topo.as_info(**a).class.is_content())
            .map(|(&a, &q)| (a, q / max))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;
    use itm_dns::ResolverConfig;
    use std::collections::BTreeSet;

    fn setup() -> Substrate {
        // Seed chosen so crawl coverage lands mid-range (≈0.64, matching
        // the paper's ~60% narrative) under the workspace RNG.
        Substrate::build(SubstrateConfig::small(), 42).unwrap()
    }

    #[test]
    fn crawl_finds_substantial_as_coverage() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = RootCrawler::default().run(&s, &resolver);
        let clients: BTreeSet<Asn> = result.client_ases(&s).into_iter().collect();
        assert!(!clients.is_empty());
        // Traffic-weighted AS coverage should be sizable but clearly below
        // cache probing's (the 60%-vs-95% ordering of §3.1.2).
        let cov = s
            .traffic
            .provider_coverage_as(&s.topo, &s.users, &s.catalog, &clients, None);
        assert!(cov > 0.25, "coverage {cov:.3}");
        assert!(cov < 0.98, "implausibly perfect coverage {cov:.3}");
    }

    #[test]
    fn open_resolver_traffic_is_attributed_to_operator() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = RootCrawler::default().run(&s, &resolver);
        let operator = resolver.operator();
        // The operator AS shows up in raw counts…
        assert!(result.queries_by_as.contains_key(&operator));
        // …but is filtered from the client-AS list.
        assert!(!result.client_ases(&s).contains(&operator));
    }

    #[test]
    fn activity_estimates_track_user_counts() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let result = RootCrawler::default().run(&s, &resolver);
        let act = result.relative_activity(&s);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (&a, &v) in &act {
            // Compare only ASes whose resolver is in-house; outsourced
            // resolvers are a known error source.
            if let Some(r) = s.resolvers.resolver_of(a) {
                if r.located_in == a {
                    xs.push(s.users.subscribers(a));
                    ys.push(v);
                }
            }
        }
        assert!(xs.len() > 5);
        let rho = itm_types::stats::spearman(&xs, &ys).unwrap();
        assert!(rho > 0.6, "spearman {rho:.3}");
    }

    #[test]
    fn outsourced_resolvers_corrupt_attribution() {
        // With heavy outsourcing, many ASes' users are attributed to
        // transit providers, and coverage drops.
        let mut cfg = SubstrateConfig::small();
        cfg.resolvers = ResolverConfig {
            offnet_resolver_fraction: 0.0,
            ..Default::default()
        };
        let clean = Substrate::build(cfg.clone(), 109).unwrap();
        cfg.resolvers.offnet_resolver_fraction = 0.8;
        let dirty = Substrate::build(cfg, 109).unwrap();

        let cov = |s: &Substrate| {
            let resolver = s.open_resolver().expect("open resolver");
            let result = RootCrawler::default().run(s, &resolver);
            let clients: BTreeSet<Asn> = result.client_ases(s).into_iter().collect();
            // Score against *eyeball/stub* attribution correctness: how
            // much traffic of ASes correctly identified.
            s.traffic
                .provider_coverage_as(&s.topo, &s.users, &s.catalog, &clients, None)
        };
        let c_clean = cov(&clean);
        let c_dirty = cov(&dirty);
        assert!(
            c_clean > c_dirty,
            "outsourcing should hurt: {c_clean:.3} vs {c_dirty:.3}"
        );
    }

    #[test]
    fn closed_roots_kill_the_technique() {
        let s = setup();
        let resolver = s.open_resolver().expect("open resolver");
        let crawler = RootCrawler {
            roots: RootServerSet::new(0, 13),
            ..Default::default()
        };
        let result = crawler.run(&s, &resolver);
        assert!(result.queries_by_as.is_empty());
        assert_eq!(result.usable_fraction, 0.0);
    }
}
