//! Topology discovery from cloud vantage points (§3.3.2, E9 support).
//!
//! "Measuring out from cloud VMs uncovers most peering links between the
//! cloud and users \[7\], and Reverse Traceroute can measure reverse paths
//! \[36\]." The campaign launches VMs in every cloud AS, measures paths in
//! both directions to every network, and reports the discovered links —
//! the augmentation that makes public-view path prediction usable for
//! cloud destinations.

use crate::substrate::Substrate;
use itm_routing::{GraphView, VantagePoints};
use itm_topology::Link;
use itm_types::{Asn, FaultInjector, FaultPlan, FaultStats, SeedDomain};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Output of the cloud probing campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloudProbeResult {
    /// Links discovered (canonical endpoint order).
    pub links: BTreeSet<(Asn, Asn)>,
    /// The vantage points used (post-churn: VMs that survived).
    pub vantage: VantagePoints,
    /// Per-VM fate accounting: a churned VM contributes no links and
    /// counts as lost; `observed + degraded + lost` equals the VMs
    /// launched.
    pub fault_stats: FaultStats,
}

impl CloudProbeResult {
    /// Run the campaign over the ground-truth view (the measurements see
    /// real paths; only their *vantage* is limited).
    pub fn run(s: &Substrate, view: &GraphView, seeds: &SeedDomain) -> CloudProbeResult {
        Self::run_with(s, view, seeds, |n, job| (0..n).map(job).collect())
    }

    /// Run with a caller-supplied shard runner (see
    /// `CacheProbeCampaign::run_with`). One shard per cloud VM: each VM's
    /// routing tree is independent, and the merged link set is a union of
    /// sorted sets, so the result is schedule-independent.
    pub fn run_with<R>(
        s: &Substrate,
        view: &GraphView,
        seeds: &SeedDomain,
        run_shards: R,
    ) -> CloudProbeResult
    where
        R: FnOnce(
            usize,
            &(dyn Fn(usize) -> BTreeSet<(Asn, Asn)> + Sync),
        ) -> Vec<BTreeSet<(Asn, Asn)>>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), seeds, "cloud_probe");
        Self::run_with_faults(s, view, seeds, &faults, run_shards)
    }

    /// Run under a fault plan: cloud VMs churn away mid-campaign (quota
    /// reclaims, maintenance) and contribute no links at all. Churn is
    /// keyed by the VM's AS number, so the surviving set — and hence the
    /// shard layout — is identical across runs and thread counts.
    pub fn run_with_faults<R>(
        s: &Substrate,
        view: &GraphView,
        seeds: &SeedDomain,
        faults: &FaultInjector,
        run_shards: R,
    ) -> CloudProbeResult
    where
        R: FnOnce(
            usize,
            &(dyn Fn(usize) -> BTreeSet<(Asn, Asn)> + Sync),
        ) -> Vec<BTreeSet<(Asn, Asn)>>,
    {
        let _span = itm_obs::span("cloud_probe.run");
        let _campaign = itm_obs::trace::campaign(
            itm_obs::trace::Technique::CloudProbe,
            "cloud vantage-point traceroutes",
        );
        // Vantage selection draws from one RNG stream — stays sequential.
        let mut vantage = VantagePoints::typical(&s.topo, seeds);
        // Epoch VM churn: ASes whose VMs are administratively down this
        // epoch never launch (distinct from fault churn, which models
        // mid-campaign reclaims of launched VMs and counts as lost).
        if !s.vm_down.is_empty() {
            vantage.cloud_vms.retain(|vm| !s.vm_down.contains(vm));
        }
        let vms_launched = vantage.cloud_vms.len();
        vantage.apply_churn(faults);
        let fault_stats = FaultStats {
            observed: vantage.cloud_vms.len() as u64,
            lost: (vms_launched - vantage.cloud_vms.len()) as u64,
            ..FaultStats::default()
        };
        let n_shards = vantage.cloud_vms.len().max(1);
        let parts = run_shards(n_shards, &|shard| match vantage.cloud_vms.get(shard) {
            Some(&vm) => VantagePoints::links_from_cloud(view, vm),
            None => BTreeSet::new(),
        });
        let mut links: BTreeSet<(Asn, Asn)> = BTreeSet::new();
        for part in parts {
            links.extend(part);
        }
        if itm_obs::trace::enabled() {
            // BTreeSet iteration is already sorted, so the trace stream
            // is byte-stable across runs without an explicit sort.
            for &(a, b) in links.iter() {
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::CloudProbe,
                    itm_obs::trace::EventKind::LinkDiscovered,
                    itm_obs::trace::Subjects::none().asn(a.raw()),
                    &format!("{a} -- {b}"),
                );
            }
        }
        itm_obs::counter!("probe.hosts", "technique" => "cloud_probe")
            .add(vantage.cloud_vms.len() as u64);
        // Each VM traceroutes toward every AS (forward + reverse pass).
        itm_obs::counter!("probe.traceroutes", "technique" => "cloud_probe")
            .add((vantage.cloud_vms.len() * s.topo.n_ases()) as u64);
        itm_obs::counter!("probe.links_discovered", "technique" => "cloud_probe")
            .add(links.len() as u64);
        CloudProbeResult {
            links,
            vantage,
            fault_stats,
        }
    }

    /// The discovered links as `Link` values (relationships taken from
    /// ground truth — campaigns infer them with standard algorithms; we
    /// grant perfect inference, the optimistic case).
    pub fn as_links(&self, s: &Substrate) -> Vec<Link> {
        s.topo
            .links
            .iter()
            .filter(|l| self.links.contains(&l.key()))
            .copied()
            .collect()
    }

    /// The discovered link set in normalized `Link::key()` form — the
    /// cloud-probe technique's claim table for the route-plane quality
    /// audit.
    pub fn claimed_links(&self) -> &BTreeSet<(Asn, Asn)> {
        &self.links
    }

    /// Fraction of the clouds' own peering links discovered.
    pub fn cloud_peering_recall(&self, s: &Substrate) -> f64 {
        let clouds: BTreeSet<Asn> = s.topo.clouds().into_iter().collect();
        let relevant: Vec<_> = s
            .topo
            .links
            .iter()
            .filter(|l| l.is_peering() && (clouds.contains(&l.a) || clouds.contains(&l.b)))
            .collect();
        if relevant.is_empty() {
            return 1.0;
        }
        let found = relevant
            .iter()
            .filter(|l| self.links.contains(&l.key()))
            .count();
        found as f64 / relevant.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SubstrateConfig;

    #[test]
    fn discovers_most_cloud_peering() {
        let s = Substrate::build(SubstrateConfig::small(), 137).unwrap();
        let view = s.full_view();
        let r = CloudProbeResult::run(&s, &view, &SeedDomain::new(137));
        assert!(!r.links.is_empty());
        let recall = r.cloud_peering_recall(&s);
        assert!(recall > 0.5, "recall {recall:.3}");
        // All discovered links are real.
        for &(a, b) in &r.links {
            assert!(s.topo.has_link(a, b));
        }
        // as_links round-trips the set.
        assert_eq!(r.as_links(&s).len(), r.links.len());
    }
}
