//! Property-based tests for route computation: the Gao–Rexford invariants
//! must hold on *every* topology the generator can produce, and on random
//! synthetic graphs.

use itm_routing::{GraphView, RouteKind, RoutingTree};
use itm_topology::{generate, Link, LinkClass, NeighborKind, TopologyConfig};
use itm_types::Asn;
use proptest::prelude::*;

/// Build a random small connected policy graph: node 0 is the root
/// provider; every node i>0 buys transit from some j<i; extra peer links
/// sprinkle on top.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<Link>)> {
    (3usize..24).prop_flat_map(|n| {
        let providers: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
        let peers = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n);
        (providers, peers).prop_map(move |(prov, peers)| {
            let mut links: Vec<Link> = prov
                .iter()
                .enumerate()
                .map(|(i, &p)| Link::transit(Asn(i as u32 + 1), Asn(p)))
                .collect();
            for (a, b) in peers {
                if a != b
                    && !links
                        .iter()
                        .any(|l| l.key() == Link::peering(Asn(a), Asn(b), LinkClass::Transit).key())
                {
                    links.push(Link::peering(Asn(a), Asn(b), LinkClass::Transit));
                }
            }
            (n, links)
        })
    })
}

/// Check that a path is valley-free and matches the view's relationships:
/// once the path goes "down" (provider→customer) or crosses a peer link,
/// it may never go "up" or cross another peer link again.
fn assert_valley_free(view: &GraphView, path: &[Asn]) {
    let mut descended = false;
    let mut peered = false;
    for w in path.windows(2) {
        let kind = view
            .neighbors(w[0])
            .iter()
            .find(|(n, _)| *n == w[1])
            .map(|(_, k)| *k)
            .expect("path uses real links");
        match kind {
            // w[0] -> its provider: going up.
            NeighborKind::Provider => {
                assert!(!descended && !peered, "valley in path {path:?}");
            }
            NeighborKind::Peer => {
                assert!(!descended && !peered, "second lateral move in {path:?}");
                peered = true;
            }
            NeighborKind::Customer => {
                descended = true;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routes_are_valley_free_on_random_graphs((n, links) in arb_graph()) {
        let view = GraphView::from_links(n, &links);
        for dst in 0..n {
            let tree = RoutingTree::compute(&view, Asn(dst as u32));
            for src in 0..n {
                if let Some(path) = tree.path(Asn(src as u32)) {
                    prop_assert_eq!(*path.first().unwrap(), Asn(src as u32));
                    prop_assert_eq!(*path.last().unwrap(), Asn(dst as u32));
                    // Loop-free.
                    let mut sorted: Vec<Asn> = path.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), path.len());
                    assert_valley_free(&view, &path);
                }
            }
        }
    }

    #[test]
    fn everyone_reaches_everyone_via_transit_root((n, links) in arb_graph()) {
        // The transit skeleton alone makes the graph connected (node 0 is
        // an ancestor of everyone), so all destinations are reachable.
        let view = GraphView::from_links(n, &links);
        for dst in 0..n {
            let tree = RoutingTree::compute(&view, Asn(dst as u32));
            prop_assert_eq!(tree.reachable_count(), n, "dst {}", dst);
        }
    }

    #[test]
    fn route_lengths_are_consistent((n, links) in arb_graph()) {
        let view = GraphView::from_links(n, &links);
        for dst in 0..n.min(6) {
            let tree = RoutingTree::compute(&view, Asn(dst as u32));
            for src in 0..n {
                if let Some(path) = tree.path(Asn(src as u32)) {
                    prop_assert_eq!(
                        path.len() as u32 - 1,
                        tree.path_len(Asn(src as u32)).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn preference_order_holds((n, links) in arb_graph()) {
        // If an AS has a customer route available (a customer of it holds
        // a route), it must never select a provider route *longer or
        // equal*… stronger: selected kind must be the best available kind.
        let view = GraphView::from_links(n, &links);
        for dst in 0..n.min(5) {
            let tree = RoutingTree::compute(&view, Asn(dst as u32));
            for src in 0..n {
                let Some(e) = tree.route(Asn(src as u32)) else { continue };
                if e.kind == RouteKind::Origin {
                    continue;
                }
                // Any neighbor relationship that would give a better kind?
                for &(nb, kind) in view.neighbors(Asn(src as u32)) {
                    let nb_route = tree.route(nb);
                    let Some(nb_e) = nb_route else { continue };
                    // A customer neighbor holding an exportable
                    // (customer/origin) route implies src could have a
                    // Customer-kind route; selection must then be Customer.
                    if kind == NeighborKind::Customer
                        && matches!(nb_e.kind, RouteKind::Origin | RouteKind::Customer)
                    {
                        // nb's route must not itself pass through src.
                        let nb_path = tree.path(nb).unwrap();
                        if !nb_path.contains(&Asn(src as u32)) {
                            prop_assert_eq!(
                                e.kind, RouteKind::Customer,
                                "src {} picked {:?} despite customer route via {}",
                                src, e.kind, nb
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn generated_topologies_route_valley_free() {
    // The generator's real output, not just synthetic graphs.
    let topo = generate(&TopologyConfig::small(), 77).unwrap();
    let view = GraphView::full(&topo);
    for &hg in &topo.hypergiants() {
        let tree = RoutingTree::compute(&view, hg);
        assert_eq!(tree.reachable_count(), topo.n_ases());
        for i in (0..topo.n_ases()).step_by(7) {
            if let Some(path) = tree.path(Asn(i as u32)) {
                assert_valley_free(&view, &path);
            }
        }
    }
}
