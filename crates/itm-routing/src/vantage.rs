//! Vantage-point sets: the limited viewpoints real campaigns have.
//!
//! §3.3.1 tries to "predict paths from RIPE Atlas probes to root DNS
//! servers"; §3.3.2 notes "measuring out from cloud VMs uncovers most
//! peering links between the cloud and users" \[7\] and that Reverse
//! Traceroute can measure reverse paths \[36\]. Both vantage classes are
//! modelled here: Atlas-like probes sit in a skewed sample of edge
//! networks; cloud VMs sit inside cloud ASes and can probe outward.

use crate::bgp::RoutingTree;
use crate::view::GraphView;
use itm_topology::{AsClass, Topology};
use itm_types::rng::SeedDomain;
use itm_types::{Asn, FaultInjector};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A set of measurement vantage points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantagePoints {
    /// ASes hosting Atlas-like probes.
    pub probes: Vec<Asn>,
    /// Cloud ASes where VMs can be launched.
    pub cloud_vms: Vec<Asn>,
}

impl VantagePoints {
    /// A typical deployment: probes in a biased sample of eyeballs/stubs
    /// (researcher-adjacent networks are overrepresented; coverage is far
    /// from uniform — the paper's criticism of crowdsourced platforms),
    /// and VMs in every cloud.
    pub fn typical(topo: &Topology, seeds: &SeedDomain) -> VantagePoints {
        let mut rng = seeds.rng("vantage");
        let mut probes = Vec::new();
        for a in &topo.ases {
            let p = match a.class {
                AsClass::Eyeball => 0.25,
                AsClass::Stub => 0.08,
                AsClass::Transit => 0.05,
                _ => 0.0,
            };
            if p > 0.0 && rng.gen_bool(p) {
                probes.push(a.asn);
            }
        }
        VantagePoints {
            probes,
            cloud_vms: topo.clouds(),
        }
    }

    /// Remove vantage points that churn away mid-campaign under the given
    /// fault plan — probes go offline, VMs get reclaimed (the norm on
    /// Atlas-style platforms). Draws are keyed by the vantage AS number,
    /// so the churned set is identical across runs and thread counts.
    /// Returns `(kept, churned)` counts.
    pub fn apply_churn(&mut self, faults: &FaultInjector) -> (usize, usize) {
        if faults.is_off() {
            return (self.probes.len() + self.cloud_vms.len(), 0);
        }
        let before = self.probes.len() + self.cloud_vms.len();
        let drop_vantage = |asn: &Asn| {
            let churned = faults.churned(asn.raw() as u64);
            if churned {
                itm_obs::counter!("faults.vantage.churned").inc();
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::Routing,
                    itm_obs::trace::EventKind::ProbeFailed,
                    itm_obs::trace::Subjects::none().asn(asn.raw()),
                    "vantage point churned mid-campaign",
                );
            }
            !churned
        };
        self.probes.retain(drop_vantage);
        self.cloud_vms.retain(drop_vantage);
        let kept = self.probes.len() + self.cloud_vms.len();
        (kept, before - kept)
    }

    /// Forward paths measured from every probe to `dst` (traceroute-style:
    /// real paths over the ground-truth view).
    pub fn measure_paths_to(&self, view: &GraphView, dst: Asn) -> Vec<(Asn, Option<Vec<Asn>>)> {
        let tree = RoutingTree::compute(view, dst);
        self.probes.iter().map(|&p| (p, tree.path(p))).collect()
    }

    /// Links discovered by measuring out from cloud VMs: every link on a
    /// best path between a cloud and any AS, in either direction (forward
    /// probing plus Reverse-Traceroute-style reverse paths \[36\]).
    ///
    /// This is the §3.3.2 observation that cloud vantage points recover
    /// cloud–edge peering that collectors miss.
    pub fn cloud_discovered_links(&self, view: &GraphView) -> BTreeSet<(Asn, Asn)> {
        let mut found = BTreeSet::new();
        for &c in &self.cloud_vms {
            found.extend(Self::links_from_cloud(view, c));
        }
        found
    }

    /// Links on any best path toward one cloud AS. Forward: cloud ->
    /// everyone. One tree per destination would be O(V) trees; instead
    /// exploit symmetry of the link *set*: paths toward the cloud (one
    /// tree per cloud) cover reverse paths, and forward paths cloud->dst
    /// traverse the same link set. Each VM's tree is independent of every
    /// other VM's, which is what lets the campaign shard per VM.
    pub fn links_from_cloud(view: &GraphView, cloud: Asn) -> BTreeSet<(Asn, Asn)> {
        let mut found = BTreeSet::new();
        let tree = RoutingTree::compute(view, cloud);
        for i in 0..view.n_ases() {
            if let Some(path) = tree.path(Asn(i as u32)) {
                for w in path.windows(2) {
                    let key = if w[0] <= w[1] {
                        (w[0], w[1])
                    } else {
                        (w[1], w[0])
                    };
                    found.insert(key);
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};

    fn setup() -> (Topology, GraphView) {
        let t = generate(&TopologyConfig::small(), 21).unwrap();
        let v = GraphView::full(&t);
        (t, v)
    }

    #[test]
    fn typical_has_probes_and_vms() {
        let (t, _) = setup();
        let vp = VantagePoints::typical(&t, &SeedDomain::new(1));
        assert!(!vp.probes.is_empty());
        assert_eq!(vp.cloud_vms.len(), TopologyConfig::small().n_cloud);
        for &p in &vp.probes {
            assert!(!t.as_info(p).class.is_content());
        }
    }

    #[test]
    fn measured_paths_reach_destination() {
        let (t, v) = setup();
        let vp = VantagePoints::typical(&t, &SeedDomain::new(1));
        let dst = t.hypergiants()[0];
        for (src, path) in vp.measure_paths_to(&v, dst) {
            let path = path.expect("connected Internet");
            assert_eq!(*path.first().unwrap(), src);
            assert_eq!(*path.last().unwrap(), dst);
        }
    }

    #[test]
    fn cloud_vms_discover_cloud_peering() {
        let (t, v) = setup();
        let vp = VantagePoints::typical(&t, &SeedDomain::new(1));
        let found = vp.cloud_discovered_links(&v);
        assert!(!found.is_empty());
        // Every discovered link is real.
        for &(a, b) in &found {
            assert!(t.has_link(a, b));
        }
        // A healthy share of the clouds' own peering links gets found.
        let clouds: BTreeSet<Asn> = vp.cloud_vms.iter().copied().collect();
        let cloud_peerings: Vec<_> = t
            .links
            .iter()
            .filter(|l| l.is_peering() && (clouds.contains(&l.a) || clouds.contains(&l.b)))
            .collect();
        let covered = cloud_peerings
            .iter()
            .filter(|l| found.contains(&l.key()))
            .count();
        assert!(
            covered * 2 >= cloud_peerings.len(),
            "cloud VMs found {covered}/{}",
            cloud_peerings.len()
        );
    }
}
