//! Routers, interface addresses, and traceroute expansion.
//!
//! The AS-level substrate gets an IP-level veneer: one router per
//! (AS, city) point of presence, each with an interface address drawn from
//! the AS's infrastructure space. Traceroutes expand an AS path into router
//! hops with geography-derived RTTs. This is what the IP ID probing (E11)
//! pings, and what path-measurement campaigns "see".

use crate::bgp::RoutingTree;
use itm_topology::{PrefixKind, Topology};
use itm_types::{Asn, Ipv4Addr, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Speed of light in fibre, km per millisecond (≈ 2/3 c).
const FIBRE_KM_PER_MS: f64 = 200.0;

/// The router registry for a topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterMap {
    /// (asn, city, interface address) per router, indexed by RouterId.
    routers: Vec<RouterRecord>,
    /// (asn, city) -> RouterId
    by_pop: BTreeMap<(Asn, u32), RouterId>,
    /// interface address -> RouterId
    by_addr: BTreeMap<u32, RouterId>,
}

/// One router.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouterRecord {
    /// Dense id.
    pub id: RouterId,
    /// Owning AS.
    pub asn: Asn,
    /// City (world index).
    pub city: u32,
    /// Interface address answering pings.
    pub addr: Ipv4Addr,
}

impl RouterMap {
    /// Build one router per (AS, city) PoP. Interface addresses come from
    /// the AS's infrastructure prefixes; ASes without one (stubs) use the
    /// first address of their first prefix.
    pub fn build(topo: &Topology) -> RouterMap {
        let mut routers = Vec::new();
        let mut by_pop = BTreeMap::new();
        let mut by_addr = BTreeMap::new();
        for a in &topo.ases {
            // Address pool: infra prefixes first, else anything it owns.
            let owned = topo.prefixes.owned_by(a.asn);
            let infra: Vec<_> = owned
                .iter()
                .filter(|&&p| topo.prefixes.get(p).kind == PrefixKind::Infrastructure)
                .collect();
            let pool: Vec<_> = if infra.is_empty() {
                owned.iter().collect()
            } else {
                infra
            };
            for (i, &city) in a.cities.iter().enumerate() {
                let id = RouterId(routers.len() as u32);
                // Hash-free deterministic address: i-th host of the
                // (i mod pool)-th pool prefix. Offset by 1 to skip .0.
                let addr = if pool.is_empty() {
                    // Pathological config (AS with zero prefixes): park the
                    // router in unrouted space; pings will simply miss.
                    Ipv4Addr::new(127, 0, (a.asn.raw() >> 8) as u8, a.asn.raw() as u8)
                } else {
                    let p = topo.prefixes.get(*pool[i % pool.len()]);
                    p.net.addr((i / pool.len()) as u32 + 1)
                };
                routers.push(RouterRecord {
                    id,
                    asn: a.asn,
                    city,
                    addr,
                });
                by_pop.insert((a.asn, city), id);
                by_addr.entry(addr.0).or_insert(id);
            }
        }
        RouterMap {
            routers,
            by_pop,
            by_addr,
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Record by id.
    pub fn get(&self, id: RouterId) -> &RouterRecord {
        &self.routers[id.index()]
    }

    /// All routers.
    pub fn iter(&self) -> impl Iterator<Item = &RouterRecord> {
        self.routers.iter()
    }

    /// The router of an (AS, city) PoP.
    pub fn at_pop(&self, asn: Asn, city: u32) -> Option<RouterId> {
        self.by_pop.get(&(asn, city)).copied()
    }

    /// Reverse lookup by interface address.
    pub fn by_addr(&self, addr: Ipv4Addr) -> Option<RouterId> {
        self.by_addr.get(&addr.0).copied()
    }

    /// The AS's router nearest to a given city (geodesically), `None` for
    /// an AS with no cities (rejected by topology invariants, but the map
    /// never panics on a hand-built one).
    pub fn nearest_router_of(&self, topo: &Topology, asn: Asn, city: u32) -> Option<RouterId> {
        let target = topo.city_location(city);
        let a = topo.as_info(asn);
        let best_city = a
            .cities
            .iter()
            .min_by(|&&x, &&y| {
                topo.city_location(x)
                    .distance_km(target)
                    .total_cmp(&topo.city_location(y).distance_km(target))
            })
            .copied()?;
        self.at_pop(asn, best_city)
    }
}

/// One traceroute hop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hop {
    /// The AS the hop belongs to.
    pub asn: Asn,
    /// The responding router.
    pub router: RouterId,
    /// Its interface address.
    pub addr: Ipv4Addr,
    /// Cumulative RTT from the source, in milliseconds.
    pub rtt_ms: f64,
}

/// A measured forward path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Traceroute {
    /// Source AS.
    pub src: Asn,
    /// Destination AS.
    pub dst: Asn,
    /// Hops, source-side first. The source's own router is hop 0.
    pub hops: Vec<Hop>,
}

impl Traceroute {
    /// Expand the BGP path from `src` in `tree` into router-level hops.
    ///
    /// Each AS on the path contributes the router nearest (in its own
    /// footprint) to the previous hop's city — a crude but standard model
    /// of early-exit/hot-potato intradomain routing. RTT accumulates
    /// 2×(distance / fibre speed) plus a 0.3 ms per-hop processing fee.
    pub fn run(
        topo: &Topology,
        routers: &RouterMap,
        tree: &RoutingTree,
        src: Asn,
    ) -> Option<Traceroute> {
        let path = tree.path(src)?;
        let mut hops = Vec::with_capacity(path.len());
        let mut cur_city = topo.as_info(src).cities[0];
        let mut rtt = 0.0f64;
        let mut prev_loc = topo.city_location(cur_city);
        for &asn in &path {
            let rid = routers.nearest_router_of(topo, asn, cur_city)?;
            let rec = routers.get(rid);
            let loc = topo.city_location(rec.city);
            rtt += 2.0 * prev_loc.distance_km(loc) / FIBRE_KM_PER_MS + 0.3;
            hops.push(Hop {
                asn,
                router: rid,
                addr: rec.addr,
                rtt_ms: rtt,
            });
            cur_city = rec.city;
            prev_loc = loc;
        }
        Some(Traceroute {
            src,
            dst: tree.dst,
            hops,
        })
    }

    /// The AS-level path (deduplicated consecutive ASes — already unique).
    pub fn as_path(&self) -> Vec<Asn> {
        self.hops.iter().map(|h| h.asn).collect()
    }

    /// End-to-end RTT estimate.
    pub fn rtt_ms(&self) -> f64 {
        self.hops.last().map(|h| h.rtt_ms).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::GraphView;
    use itm_topology::{generate, TopologyConfig};

    fn setup() -> (Topology, RouterMap) {
        let t = generate(&TopologyConfig::small(), 9).unwrap();
        let r = RouterMap::build(&t);
        (t, r)
    }

    #[test]
    fn one_router_per_pop() {
        let (t, r) = setup();
        let pops: usize = t.ases.iter().map(|a| a.cities.len()).sum();
        assert_eq!(r.len(), pops);
        for a in &t.ases {
            for &c in &a.cities {
                let id = r.at_pop(a.asn, c).expect("router per pop");
                let rec = r.get(id);
                assert_eq!(rec.asn, a.asn);
                assert_eq!(rec.city, c);
            }
        }
    }

    #[test]
    fn router_addresses_resolve_back() {
        let (t, r) = setup();
        let mut resolved = 0;
        for rec in r.iter() {
            if let Some(id) = r.by_addr(rec.addr) {
                // Shared pools may alias two PoPs to one address only if
                // pools are tiny; the map keeps the first owner.
                assert_eq!(r.get(id).asn, rec.asn);
                resolved += 1;
            }
        }
        assert_eq!(resolved, r.len());
        // Addresses live inside the owner's prefixes (when it has any).
        for rec in r.iter() {
            if let Some(p) = t.prefixes.lookup(rec.addr) {
                assert_eq!(p.owner, rec.asn);
            }
        }
    }

    #[test]
    fn traceroute_follows_bgp_path() {
        let (t, r) = setup();
        let view = GraphView::full(&t);
        let dst = t.hypergiants()[0];
        let tree = RoutingTree::compute(&view, dst);
        let src = Asn((t.n_ases() - 1) as u32);
        let tr = Traceroute::run(&t, &r, &tree, src).unwrap();
        assert_eq!(tr.as_path(), tree.path(src).unwrap());
        assert_eq!(tr.hops.first().unwrap().asn, src);
        assert_eq!(tr.hops.last().unwrap().asn, dst);
        // RTTs are cumulative and positive.
        let mut last = 0.0;
        for h in &tr.hops {
            assert!(h.rtt_ms > last - 1e-9);
            last = h.rtt_ms;
        }
        assert!(tr.rtt_ms() > 0.0);
    }

    #[test]
    fn nearest_router_is_in_as_footprint() {
        let (t, r) = setup();
        let hg = t.hypergiants()[0];
        let some_city = t.ases[0].cities[0];
        let rid = r.nearest_router_of(&t, hg, some_city).expect("hg has PoPs");
        assert_eq!(r.get(rid).asn, hg);
        assert!(t.as_info(hg).cities.contains(&r.get(rid).city));
    }
}
