//! Anycast deployments and catchment computation.
//!
//! §3.2.3: "Recent work demonstrates that anycast routing is extremely
//! efficient for large services, with 80% of clients directed within 500 km
//! of their closest serving site" \[38\]; §2.1 contrasts "only 31% of routes
//! go to the closest site" with "60% of users are mapped to the optimal
//! site". Both experiments need catchments: which serving site each client
//! AS's BGP-chosen path lands on.
//!
//! Model: an anycast deployment is a set of sites, each a (host AS, city)
//! pair (on-net PoPs, or off-net cache locations). BGP picks the *AS* that
//! wins for each client (via [`RoutingTree::compute_multi`] over the origin
//! AS set); within the winning AS, the client is mapped to that AS's
//! geographically closest site to the client, with a configurable
//! imprecision probability standing in for hot-potato/IGP artifacts.

use crate::bgp::RoutingTree;
use crate::view::GraphView;
use itm_topology::Topology;
use itm_types::rng::SeedDomain;
use itm_types::{Asn, GeoPoint, PopId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One serving site of an anycast deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnycastSite {
    /// Site id, dense within the deployment.
    pub id: PopId,
    /// AS announcing the anycast prefix at this site.
    pub asn: Asn,
    /// City (world city index) of the site.
    pub city: u32,
    /// Site location (redundant with city, cached for distance math).
    pub location: GeoPoint,
}

/// A set of sites announcing one anycast prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnycastDeployment {
    /// All sites.
    pub sites: Vec<AnycastSite>,
    /// Probability that intra-AS site selection deviates from nearest
    /// (hot-potato imprecision). 0 = always nearest within the winning AS.
    pub intra_as_noise: f64,
}

impl AnycastDeployment {
    /// Build a deployment from (asn, city) pairs.
    pub fn new(topo: &Topology, sites: &[(Asn, u32)], intra_as_noise: f64) -> AnycastDeployment {
        let sites = sites
            .iter()
            .enumerate()
            .map(|(i, &(asn, city))| AnycastSite {
                id: PopId(i as u32),
                asn,
                city,
                location: topo.city_location(city),
            })
            .collect();
        AnycastDeployment {
            sites,
            intra_as_noise,
        }
    }

    /// The distinct origin ASes of the deployment, sorted.
    pub fn origin_ases(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.sites.iter().map(|s| s.asn).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The site geographically closest to `from` (lowest id wins ties).
    pub fn closest_site(&self, from: GeoPoint) -> Option<&AnycastSite> {
        self.sites.iter().min_by(|a, b| {
            a.location
                .distance_km(from)
                .total_cmp(&b.location.distance_km(from))
                .then(a.id.cmp(&b.id))
        })
    }
}

/// Computed catchments: which site every client AS reaches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catchments {
    /// site id per AS (dense ASN index); `None` = anycast unreachable.
    assignment: Vec<Option<PopId>>,
}

impl Catchments {
    /// Compute catchments for `deployment` over the full topology.
    ///
    /// Deterministic given the topology seed; the `intra_as_noise` draws
    /// come from the `"anycast"` stream of `seeds`.
    pub fn compute(
        topo: &Topology,
        view: &GraphView,
        deployment: &AnycastDeployment,
        seeds: &SeedDomain,
    ) -> Catchments {
        let origins = deployment.origin_ases();
        let label = origins[0];
        let tree = RoutingTree::compute_multi(view, &origins, label);
        let mut rng = seeds.rng("anycast");

        let mut assignment = vec![None; topo.n_ases()];
        for (i, slot) in assignment.iter_mut().enumerate() {
            let client = Asn(i as u32);
            let Some(winner) = tree.origin_reached(client) else {
                continue;
            };
            // Sites inside the winning AS.
            let in_as: Vec<&AnycastSite> = deployment
                .sites
                .iter()
                .filter(|s| s.asn == winner)
                .collect();
            debug_assert!(!in_as.is_empty());
            let client_loc = topo.as_location(client);
            let chosen = if in_as.len() > 1 && rng.gen_bool(deployment.intra_as_noise) {
                // Hot-potato artifact: a uniformly random site of the AS.
                Some(&in_as[rng.gen_range(0..in_as.len())])
            } else {
                in_as.iter().min_by(|a, b| {
                    a.location
                        .distance_km(client_loc)
                        .total_cmp(&b.location.distance_km(client_loc))
                        .then(a.id.cmp(&b.id))
                })
            };
            *slot = chosen.map(|site| site.id);
        }
        Catchments { assignment }
    }

    /// The site a client AS lands on.
    pub fn site_of(&self, client: Asn) -> Option<PopId> {
        self.assignment[client.index()]
    }

    /// Iterate (client, site) pairs for reachable clients.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, PopId)> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|site| (Asn(i as u32), site)))
    }

    /// Number of clients with a catchment.
    pub fn covered(&self) -> usize {
        self.assignment.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, AsClass, TopologyConfig};

    fn setup() -> (Topology, GraphView) {
        let t = generate(&TopologyConfig::small(), 11).unwrap();
        let v = GraphView::full(&t);
        (t, v)
    }

    /// Deployment across the first hypergiant's cities.
    fn hg_deployment(t: &Topology, noise: f64) -> AnycastDeployment {
        let hg = t.hypergiants()[0];
        let cities = &t.as_info(hg).cities;
        let sites: Vec<(Asn, u32)> = cities.iter().take(6).map(|&c| (hg, c)).collect();
        AnycastDeployment::new(t, &sites, noise)
    }

    #[test]
    fn catchments_cover_connected_internet() {
        let (t, v) = setup();
        let d = hg_deployment(&t, 0.0);
        let c = Catchments::compute(&t, &v, &d, &SeedDomain::new(1));
        assert_eq!(c.covered(), t.n_ases());
    }

    #[test]
    fn zero_noise_is_deterministic_and_nearest_within_as() {
        let (t, v) = setup();
        let d = hg_deployment(&t, 0.0);
        let c1 = Catchments::compute(&t, &v, &d, &SeedDomain::new(1));
        let c2 = Catchments::compute(&t, &v, &d, &SeedDomain::new(2));
        for i in 0..t.n_ases() {
            assert_eq!(c1.site_of(Asn(i as u32)), c2.site_of(Asn(i as u32)));
        }
        // Single-AS deployment: site chosen must be the nearest site of
        // that AS to the client.
        for (client, site) in c1.iter() {
            let loc = t.as_location(client);
            let chosen = &d.sites[site.index()];
            for s in &d.sites {
                assert!(
                    chosen.location.distance_km(loc) <= s.location.distance_km(loc) + 1e-9,
                    "client {client} got non-nearest site"
                );
            }
        }
    }

    #[test]
    fn noise_perturbs_some_assignments() {
        let (t, v) = setup();
        let d0 = hg_deployment(&t, 0.0);
        let d1 = hg_deployment(&t, 0.9);
        let c0 = Catchments::compute(&t, &v, &d0, &SeedDomain::new(3));
        let c1 = Catchments::compute(&t, &v, &d1, &SeedDomain::new(3));
        let moved = (0..t.n_ases())
            .filter(|&i| c0.site_of(Asn(i as u32)) != c1.site_of(Asn(i as u32)))
            .count();
        assert!(moved > 0, "noise had no effect");
    }

    #[test]
    fn multi_as_deployment_splits_catchment() {
        let (t, v) = setup();
        // Sites in two different hypergiants — catchment must split.
        let hgs = t.hypergiants();
        let c0 = t.as_info(hgs[0]).cities[0];
        let c1 = t.as_info(hgs[1]).cities[0];
        let d = AnycastDeployment::new(&t, &[(hgs[0], c0), (hgs[1], c1)], 0.0);
        let c = Catchments::compute(&t, &v, &d, &SeedDomain::new(4));
        let mut seen = std::collections::HashSet::new();
        for (_, site) in c.iter() {
            seen.insert(site);
        }
        assert_eq!(seen.len(), 2, "one origin captured everything");
    }

    #[test]
    fn closest_site_helper() {
        let (t, _) = setup();
        let d = hg_deployment(&t, 0.0);
        let some_eyeball = t.ases_of_class(AsClass::Eyeball).next().unwrap().asn;
        let loc = t.as_location(some_eyeball);
        let c = d.closest_site(loc).unwrap();
        for s in &d.sites {
            assert!(c.location.distance_km(loc) <= s.location.distance_km(loc) + 1e-9);
        }
    }
}
