//! Graph views: the adjacency structure route computation runs over.
//!
//! Route prediction in the paper fails precisely because the *view* is
//! incomplete ("available vantage points cannot uncover most peering links
//! for large content providers", §3.3.1). Separating the view from the
//! algorithm lets the same BGP code run over ground truth, over a
//! collector-visible subset, or over a recommender-augmented topology.

use itm_topology::{AsRel, Link, NeighborKind, Topology};
use itm_types::Asn;

/// A (possibly partial) AS-level graph with relationship labels.
#[derive(Debug, Clone)]
pub struct GraphView {
    /// adjacency[asn] = (neighbor, our relationship to it), sorted by ASN.
    adjacency: Vec<Vec<(Asn, NeighborKind)>>,
}

impl GraphView {
    /// Number of AS slots (dense ASNs).
    pub fn n_ases(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbors of `asn` with perspective-relative relationships.
    pub fn neighbors(&self, asn: Asn) -> &[(Asn, NeighborKind)] {
        &self.adjacency[asn.index()]
    }

    /// The complete ground-truth view of a topology.
    ///
    /// Links the epoch engine has flapped down are excluded: the ground
    /// truth of a flapped epoch *is* the smaller graph. On a freshly
    /// generated topology the down-set is empty and this is the identity
    /// adjacency copy it always was.
    pub fn full(topo: &Topology) -> GraphView {
        let adjacency = topo
            .ases
            .iter()
            .map(|a| {
                topo.neighbors(a.asn)
                    .iter()
                    .filter(|n| {
                        let key = if a.asn <= n.asn {
                            (a.asn, n.asn)
                        } else {
                            (n.asn, a.asn)
                        };
                        !topo.is_link_down(key)
                    })
                    .map(|n| (n.asn, n.kind))
                    .collect()
            })
            .collect();
        GraphView { adjacency }
    }

    /// A view over an explicit link list (e.g. only publicly visible
    /// links). `n_ases` must cover every ASN referenced.
    pub fn from_links<'a>(n_ases: usize, links: impl IntoIterator<Item = &'a Link>) -> GraphView {
        let mut adjacency: Vec<Vec<(Asn, NeighborKind)>> = vec![Vec::new(); n_ases];
        for l in links {
            match l.rel {
                AsRel::CustomerToProvider => {
                    adjacency[l.a.index()].push((l.b, NeighborKind::Provider));
                    adjacency[l.b.index()].push((l.a, NeighborKind::Customer));
                }
                AsRel::PeerToPeer => {
                    adjacency[l.a.index()].push((l.b, NeighborKind::Peer));
                    adjacency[l.b.index()].push((l.a, NeighborKind::Peer));
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_by_key(|(asn, _)| *asn);
            adj.dedup();
        }
        GraphView { adjacency }
    }

    /// A copy of this view with extra links added (used to test
    /// recommender-completed topologies, E10).
    pub fn with_extra_links<'a>(&self, links: impl IntoIterator<Item = &'a Link>) -> GraphView {
        let mut v = self.clone();
        for l in links {
            match l.rel {
                AsRel::CustomerToProvider => {
                    v.adjacency[l.a.index()].push((l.b, NeighborKind::Provider));
                    v.adjacency[l.b.index()].push((l.a, NeighborKind::Customer));
                }
                AsRel::PeerToPeer => {
                    v.adjacency[l.a.index()].push((l.b, NeighborKind::Peer));
                    v.adjacency[l.b.index()].push((l.a, NeighborKind::Peer));
                }
            }
        }
        for adj in &mut v.adjacency {
            adj.sort_by_key(|(asn, _)| *asn);
            adj.dedup();
        }
        v
    }

    /// Total number of directed adjacency entries (2× the link count).
    pub fn n_edges_directed(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Whether an (undirected) adjacency exists between `x` and `y`.
    pub fn has_edge(&self, x: Asn, y: Asn) -> bool {
        self.adjacency[x.index()]
            .binary_search_by_key(&y, |(a, _)| *a)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, LinkClass, TopologyConfig};

    #[test]
    fn full_view_matches_topology() {
        let t = generate(&TopologyConfig::small(), 1).unwrap();
        let v = GraphView::full(&t);
        assert_eq!(v.n_ases(), t.n_ases());
        assert_eq!(v.n_edges_directed(), 2 * t.links.len());
        for l in &t.links {
            assert!(v.has_edge(l.a, l.b));
            assert!(v.has_edge(l.b, l.a));
        }
    }

    #[test]
    fn from_links_builds_symmetric_adjacency() {
        let links = vec![
            Link::transit(Asn(1), Asn(0)),
            Link::peering(Asn(1), Asn(2), LinkClass::Transit),
        ];
        let v = GraphView::from_links(3, &links);
        assert_eq!(v.neighbors(Asn(0)), &[(Asn(1), NeighborKind::Customer)]);
        assert_eq!(
            v.neighbors(Asn(1)),
            &[
                (Asn(0), NeighborKind::Provider),
                (Asn(2), NeighborKind::Peer)
            ]
        );
        assert_eq!(v.neighbors(Asn(2)), &[(Asn(1), NeighborKind::Peer)]);
        assert!(!v.has_edge(Asn(0), Asn(2)));
    }

    #[test]
    fn with_extra_links_augments() {
        let base = GraphView::from_links(3, &[Link::transit(Asn(1), Asn(0))]);
        let aug = base.with_extra_links(&[Link::peering(Asn(0), Asn(2), LinkClass::Transit)]);
        assert!(aug.has_edge(Asn(0), Asn(2)));
        assert!(!base.has_edge(Asn(0), Asn(2)));
        // Duplicates collapse.
        let dup = aug.with_extra_links(&[Link::peering(Asn(0), Asn(2), LinkClass::Transit)]);
        assert_eq!(dup.neighbors(Asn(2)).len(), 1);
    }
}
