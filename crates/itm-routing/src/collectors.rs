//! Route collectors and the publicly visible topology.
//!
//! Public BGP data comes from collectors (RouteViews/RIPE RIS) peered with
//! a *biased* set of feeder networks — mostly transit providers, almost
//! never eyeballs or hypergiant PNI partners. A link is publicly visible
//! only if it appears on some feeder's best path. Since peering links are
//! only exported to customers, a hypergiant↔eyeball PNI is visible only if
//! a collector feeds from the eyeball (or its customer cone) — which is
//! rare. This is the mechanism behind §1's "more than 90% of the IXP's
//! peerings were not visible in public topologies" \[4\] and §3.3.1's
//! "available vantage points cannot uncover most peering links" — and it
//! falls out of the export rules rather than being hard-coded.

use crate::bgp::RoutingTree;
use crate::view::GraphView;
use itm_topology::{AsClass, Link, LinkClass, Topology};
use itm_types::rng::SeedDomain;
use itm_types::Asn;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A set of collector feeder ASes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectorSet {
    /// ASes providing full feeds to public collectors.
    pub feeders: Vec<Asn>,
}

impl CollectorSet {
    /// The default public-collector model: all tier-1s feed, a fraction of
    /// transits feed, and a small number of stubs/eyeballs feed (the
    /// occasional university/research network that peers with RIS).
    pub fn typical(topo: &Topology, seeds: &SeedDomain) -> CollectorSet {
        let mut rng = seeds.rng("collectors");
        let mut feeders = Vec::new();
        for a in &topo.ases {
            let p = match a.class {
                AsClass::Tier1 => 1.0,
                AsClass::Transit => 0.25,
                AsClass::Eyeball => 0.02,
                AsClass::Stub => 0.01,
                // Content networks do not feed public collectors.
                AsClass::Hypergiant | AsClass::Cloud => 0.0,
            };
            if p > 0.0 && rng.gen_bool(p) {
                feeders.push(a.asn);
            }
        }
        CollectorSet { feeders }
    }

    /// A collector set with exactly `n` feeders drawn from the typical
    /// distribution (for the D3 ablation sweep).
    pub fn with_count(topo: &Topology, seeds: &SeedDomain, n: usize) -> CollectorSet {
        let base = Self::typical(topo, seeds);
        let mut feeders = base.feeders;
        let mut rng = seeds.rng("collectors-truncate");
        // Deterministic shuffle, then truncate/extend.
        for i in (1..feeders.len()).rev() {
            feeders.swap(i, rng.gen_range(0..=i));
        }
        while feeders.len() < n {
            let cand = Asn(rng.gen_range(0..topo.n_ases() as u32));
            if !feeders.contains(&cand) {
                feeders.push(cand);
            }
        }
        feeders.truncate(n);
        feeders.sort_unstable();
        CollectorSet { feeders }
    }

    /// Compute the set of links visible from these feeders.
    ///
    /// For every destination AS, every feeder's best path is walked and its
    /// links marked visible. Cost: one routing tree per destination —
    /// O(V·(V+E)) total; run it on release builds for big topologies.
    pub fn visible_links(&self, topo: &Topology, view: &GraphView) -> HashSet<(Asn, Asn)> {
        let mut visible: HashSet<(Asn, Asn)> = HashSet::new();
        for dst_i in 0..topo.n_ases() {
            let dst = Asn(dst_i as u32);
            let tree = RoutingTree::compute(view, dst);
            for &f in &self.feeders {
                if let Some(path) = tree.path(f) {
                    for w in path.windows(2) {
                        let key = if w[0] <= w[1] {
                            (w[0], w[1])
                        } else {
                            (w[1], w[0])
                        };
                        visible.insert(key);
                    }
                }
            }
        }
        visible
    }

    /// The archived RIB: every feeder's best AS path to every destination
    /// — the raw material public archives actually contain, and what
    /// relationship inference ([`crate::relationships`]) consumes.
    pub fn archived_paths(&self, topo: &Topology, view: &GraphView) -> Vec<Vec<Asn>> {
        let mut paths = Vec::new();
        for dst_i in 0..topo.n_ases() {
            let tree = RoutingTree::compute(view, Asn(dst_i as u32));
            for &f in &self.feeders {
                if let Some(p) = tree.path(f) {
                    if p.len() >= 2 {
                        paths.push(p);
                    }
                }
            }
        }
        paths
    }

    /// Build the *public view*: the ground-truth graph restricted to
    /// visible links (relationship labels assumed correctly inferred, the
    /// optimistic case for the prediction experiment).
    pub fn public_view(&self, topo: &Topology) -> (GraphView, VisibilityReport) {
        let full = GraphView::full(topo);
        let visible = self.visible_links(topo, &full);
        let vis_links: Vec<&Link> = topo
            .links
            .iter()
            .filter(|l| visible.contains(&l.key()))
            .collect();
        let report = VisibilityReport::build(topo, &visible);
        (GraphView::from_links(topo.n_ases(), vis_links), report)
    }
}

/// Per-link-class visibility statistics (E12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisibilityReport {
    /// (class label, total links, visible links).
    pub by_class: Vec<(String, usize, usize)>,
    /// Total ground-truth links.
    pub total: usize,
    /// Total visible links.
    pub visible: usize,
}

impl VisibilityReport {
    fn build(topo: &Topology, visible: &HashSet<(Asn, Asn)>) -> VisibilityReport {
        type LinkPred = fn(&Link) -> bool;
        let classes: [(&str, LinkPred); 4] = [
            ("transit", |l| matches!(l.class, LinkClass::Transit)),
            ("public-peering", |l| {
                matches!(l.class, LinkClass::PublicPeering(_))
            }),
            ("private-peering", |l| {
                matches!(l.class, LinkClass::PrivatePeering(_))
            }),
            ("all-peering", |l| l.is_peering()),
        ];
        let mut by_class = Vec::new();
        for (label, pred) in classes {
            let total = topo.links.iter().filter(|l| pred(l)).count();
            let vis = topo
                .links
                .iter()
                .filter(|l| pred(l) && visible.contains(&l.key()))
                .count();
            by_class.push((label.to_string(), total, vis));
        }
        VisibilityReport {
            by_class,
            total: topo.links.len(),
            visible: topo
                .links
                .iter()
                .filter(|l| visible.contains(&l.key()))
                .count(),
        }
    }

    /// Fraction of links of a class that are invisible.
    pub fn invisible_fraction(&self, class_label: &str) -> Option<f64> {
        self.by_class
            .iter()
            .find(|(l, _, _)| l == class_label)
            .map(|(_, total, vis)| {
                if *total == 0 {
                    0.0
                } else {
                    1.0 - *vis as f64 / *total as f64
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};

    fn setup() -> Topology {
        generate(&TopologyConfig::small(), 5).unwrap()
    }

    #[test]
    fn typical_feeders_are_transit_biased() {
        let t = setup();
        let c = CollectorSet::typical(&t, &SeedDomain::new(1));
        assert!(!c.feeders.is_empty());
        let transit_or_t1 = c
            .feeders
            .iter()
            .filter(|&&f| matches!(t.as_info(f).class, AsClass::Tier1 | AsClass::Transit))
            .count();
        assert!(
            transit_or_t1 * 2 > c.feeders.len(),
            "feeders not transit-biased"
        );
        // No content feeders ever.
        assert!(c.feeders.iter().all(|&f| !t.as_info(f).class.is_content()));
    }

    #[test]
    fn visibility_misses_most_private_peering() {
        let t = setup();
        let c = CollectorSet::typical(&t, &SeedDomain::new(1));
        let (_, report) = c.public_view(&t);
        // Transit links are nearly all visible (they're on paths up to the
        // tier-1 feeders).
        let transit_invisible = report.invisible_fraction("transit").unwrap();
        assert!(
            transit_invisible < 0.30,
            "transit invisible {transit_invisible}"
        );
        // Peering is mostly invisible — the paper's 90% claim, shape-wise.
        let peering_invisible = report.invisible_fraction("all-peering").unwrap();
        assert!(
            peering_invisible > 0.5,
            "peering invisible only {peering_invisible}"
        );
        assert!(peering_invisible > transit_invisible);
    }

    #[test]
    fn with_count_is_exact_and_deterministic() {
        let t = setup();
        let a = CollectorSet::with_count(&t, &SeedDomain::new(2), 10);
        let b = CollectorSet::with_count(&t, &SeedDomain::new(2), 10);
        assert_eq!(a.feeders, b.feeders);
        assert_eq!(a.feeders.len(), 10);
    }

    #[test]
    fn more_feeders_see_more() {
        let t = setup();
        let view = GraphView::full(&t);
        let small = CollectorSet::with_count(&t, &SeedDomain::new(3), 3);
        let big = CollectorSet::with_count(&t, &SeedDomain::new(3), 40);
        let vs = small.visible_links(&t, &view);
        let vb = big.visible_links(&t, &view);
        assert!(vb.len() > vs.len(), "{} !> {}", vb.len(), vs.len());
    }

    #[test]
    fn visible_links_are_real_links() {
        let t = setup();
        let view = GraphView::full(&t);
        let c = CollectorSet::with_count(&t, &SeedDomain::new(4), 8);
        for (a, b) in c.visible_links(&t, &view) {
            assert!(t.has_link(a, b), "phantom link {a}–{b}");
        }
    }
}
