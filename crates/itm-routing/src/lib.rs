//! # itm-routing — interdomain routing over the synthetic Internet
//!
//! Implements the routing machinery the paper's §3.3 ("What are routes
//! between users/servers?") needs:
//!
//! * **Valley-free BGP** ([`bgp`]): per-destination route computation under
//!   the Gao–Rexford policy model (prefer customer routes over peer routes
//!   over provider routes; shortest AS path; deterministic tiebreak). This
//!   is the "measured topologies and AS relationships, coupled with common
//!   routing policies" approach of §3.3.1 \[35, 42\] — run here both on the
//!   complete ground-truth graph (to produce *actual* routes) and on
//!   incomplete public views (to reproduce its failures).
//! * **Graph views** ([`view`]): the same algorithm over any subset of the
//!   link set, so prediction over collector-visible topologies (E9) and
//!   recommender-completed topologies (E10) is literally the same code.
//! * **Route collectors** ([`collectors`]): BGP feeds from a configurable
//!   set of feeder ASes; computes the publicly visible link set and hence
//!   the invisible-peering fraction of E12.
//! * **Anycast catchments** ([`anycast`]): which site of a replicated
//!   service each client AS reaches, for the §2.1/§3.2.3 optimality
//!   experiments (E6).
//! * **Routers, traceroute, IP ID** ([`routers`], [`ipid`]): an IP-level
//!   veneer — per-(AS, city) routers with interface addresses, hop-by-hop
//!   traceroute expansion, and 16-bit IP ID counters whose velocity tracks
//!   forwarded traffic (§3.1.3's proposed side channel, E11).
//! * **Vantage points** ([`vantage`]): Atlas-like probe sets and cloud VMs,
//!   the limited viewpoints measurement campaigns actually have.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod anycast;
pub mod bgp;
pub mod collectors;
pub mod ipid;
pub mod relationships;
pub mod routers;
pub mod vantage;
pub mod view;

pub use anycast::{AnycastDeployment, AnycastSite, Catchments};
pub use bgp::{RouteEntry, RouteKind, RoutingTree};
pub use collectors::{CollectorSet, VisibilityReport};
pub use ipid::IpidCounter;
pub use relationships::{InferredRel, InferredRelationships};
pub use routers::{Hop, RouterMap, Traceroute};
pub use vantage::VantagePoints;
pub use view::GraphView;
