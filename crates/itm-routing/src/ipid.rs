//! IP ID counters: the side channel of §3.1.3.
//!
//! "Every packet must include an IP ID value, and many routers source the
//! IP ID values from an incrementing counter. … We have observed that the
//! IP ID values of most routers display diurnal patterns, suggesting that
//! the rate at which the routers source packets may be proportional to the
//! rate at which they forward traffic … We propose measuring IP ID
//! velocity over time (e.g., at peak time) to estimate the rate at which
//! routers forward user traffic."
//!
//! [`IpidCounter`] models a router's 16-bit shared counter: it advances at
//! `base_rate + coupling × forwarded_traffic(t)` packets per second plus
//! noise, and wraps at 2^16. The measurement side (in `itm-measure`)
//! samples it by "pinging" and must handle wraparound — including the
//! aliasing failure when the counter wraps more than once between samples,
//! which is a real limitation the velocity estimator has to manage by
//! sampling fast enough.

use itm_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A router's 16-bit IP ID counter with traffic-coupled velocity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpidCounter {
    /// Counter value at `last_update` (full-precision internal phase; the
    /// wire value is `value % 65536`).
    phase: f64,
    /// Time of the last advance.
    last_update: SimTime,
    /// Packets/second the router sources regardless of load (control
    /// plane chatter, ICMP, etc.).
    pub base_rate: f64,
    /// Additional counter increments per forwarded megabit (flow-export
    /// and sampled-packet machinery — the coupling §3.1.3 hypothesizes).
    pub per_mbit: f64,
}

impl IpidCounter {
    /// A counter starting from an arbitrary phase at time zero.
    pub fn new(initial: u16, base_rate: f64, per_mbit: f64) -> IpidCounter {
        IpidCounter {
            phase: initial as f64,
            last_update: SimTime::ZERO,
            base_rate,
            per_mbit,
        }
    }

    /// Advance the counter to `now`, given the mean forwarded traffic over
    /// the elapsed window in Mbps. Call with monotonically nondecreasing
    /// times; earlier times are ignored.
    pub fn advance(&mut self, now: SimTime, forwarded_mbps: f64) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs() as f64;
        let rate = self.base_rate + self.per_mbit * forwarded_mbps.max(0.0);
        self.phase += rate * dt;
        self.last_update = now;
    }

    /// The 16-bit value a probe packet would observe right now.
    pub fn sample(&self) -> u16 {
        (self.phase as u64 % 65_536) as u16
    }

    /// The instantaneous velocity in counts/second for the given load.
    pub fn velocity(&self, forwarded_mbps: f64) -> f64 {
        self.base_rate + self.per_mbit * forwarded_mbps.max(0.0)
    }

    /// Estimate velocity from two wire samples, assuming at most one wrap
    /// between them (the estimator the paper's proposal implies). Returns
    /// counts/second; `None` on a zero-length interval.
    pub fn estimate_velocity(s0: u16, t0: SimTime, s1: u16, t1: SimTime) -> Option<f64> {
        if t1 <= t0 {
            return None;
        }
        let dt = (t1 - t0).as_secs() as f64;
        let delta = (s1 as i64 - s0 as i64).rem_euclid(65_536) as f64;
        Some(delta / dt)
    }

    /// The longest sampling interval that avoids wrap aliasing at the
    /// given velocity (one full wrap per interval).
    pub fn max_unaliased_interval(velocity: f64) -> SimDuration {
        if velocity <= 0.0 {
            return SimDuration::hours(24);
        }
        SimDuration::secs((65_536.0 / velocity).floor().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_with_time_and_load() {
        let mut c = IpidCounter::new(0, 10.0, 2.0);
        c.advance(SimTime(10), 5.0); // rate = 10 + 10 = 20/s over 10s
        assert_eq!(c.sample(), 200);
        c.advance(SimTime(20), 0.0); // rate = 10/s over 10s
        assert_eq!(c.sample(), 300);
    }

    #[test]
    fn wraps_at_16_bits() {
        let mut c = IpidCounter::new(65_530, 1.0, 0.0);
        c.advance(SimTime(10), 0.0);
        assert_eq!(c.sample(), ((65_530u32 + 10) % 65_536) as u16);
    }

    #[test]
    fn ignores_time_travel() {
        let mut c = IpidCounter::new(0, 100.0, 0.0);
        c.advance(SimTime(10), 0.0);
        let v = c.sample();
        c.advance(SimTime(5), 0.0);
        assert_eq!(c.sample(), v);
    }

    #[test]
    fn velocity_estimation_round_trips() {
        let mut c = IpidCounter::new(1234, 40.0, 1.0);
        let t0 = SimTime(0);
        let s0 = c.sample();
        c.advance(SimTime(100), 10.0); // velocity 50/s
        let s1 = c.sample();
        let v = IpidCounter::estimate_velocity(s0, t0, s1, SimTime(100)).unwrap();
        assert!((v - 50.0).abs() < 0.02, "estimated {v}");
    }

    #[test]
    fn velocity_estimation_handles_single_wrap() {
        let mut c = IpidCounter::new(60_000, 100.0, 0.0);
        let s0 = c.sample();
        c.advance(SimTime(100), 0.0); // +10_000 counts → wraps past 65536
        let s1 = c.sample();
        let v = IpidCounter::estimate_velocity(s0, SimTime(0), s1, SimTime(100)).unwrap();
        assert!((v - 100.0).abs() < 0.01, "estimated {v}");
    }

    #[test]
    fn velocity_estimation_aliases_on_double_wrap() {
        // Sampling too slowly under-estimates: this is the documented
        // failure mode the measurement campaign must avoid.
        let mut c = IpidCounter::new(0, 1000.0, 0.0);
        let s0 = c.sample();
        c.advance(SimTime(100), 0.0); // 100k counts ≈ 1.5 wraps
        let s1 = c.sample();
        let v = IpidCounter::estimate_velocity(s0, SimTime(0), s1, SimTime(100)).unwrap();
        assert!(v < 1000.0, "aliased estimate should undershoot, got {v}");
    }

    #[test]
    fn unaliased_interval_bound() {
        let d = IpidCounter::max_unaliased_interval(100.0);
        assert_eq!(d.as_secs(), 655);
        assert_eq!(IpidCounter::max_unaliased_interval(0.0).as_secs(), 86_400);
        // Sampling at that bound keeps the estimator accurate.
        let mut c = IpidCounter::new(7, 100.0, 0.0);
        let s0 = c.sample();
        c.advance(SimTime(d.as_secs()), 0.0);
        let v = IpidCounter::estimate_velocity(s0, SimTime(0), c.sample(), SimTime(d.as_secs()))
            .unwrap();
        assert!((v - 100.0).abs() < 0.2);
    }

    #[test]
    fn zero_interval_is_none() {
        assert!(IpidCounter::estimate_velocity(1, SimTime(5), 2, SimTime(5)).is_none());
    }
}
