//! Valley-free BGP route computation (Gao–Rexford model).
//!
//! For a destination AS `d`, every other AS selects its best route under
//! the standard policy preferences:
//!
//! 1. **Local preference**: routes learned from customers over routes
//!    learned from peers over routes learned from providers.
//! 2. **Shortest AS path** among equally preferred routes.
//! 3. **Deterministic tiebreak**: lowest next-hop ASN (standing in for
//!    lowest-router-id, which real BGP uses after MED/IGP steps we do not
//!    model).
//!
//! Export rules (which make paths valley-free): routes learned from
//! customers are exported to everyone; routes learned from peers or
//! providers are exported only to customers.
//!
//! The computation is the classic three-phase BFS (as used by the route
//! simulation literature the paper leans on \[35, 42\]):
//! phase 1 floods customer routes "up" provider edges, phase 2 crosses a
//! single peer edge, phase 3 floods "down" customer edges.

use crate::view::GraphView;
use itm_topology::NeighborKind;
use itm_types::Asn;
use serde::{Deserialize, Serialize};

/// How an AS learned its best route toward the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteKind {
    /// The AS *is* the destination (or originates it).
    Origin,
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
}

impl RouteKind {
    /// Preference rank: lower is better.
    fn rank(self) -> u8 {
        match self {
            RouteKind::Origin => 0,
            RouteKind::Customer => 1,
            RouteKind::Peer => 2,
            RouteKind::Provider => 3,
        }
    }
}

/// One AS's best route toward the tree's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// How the route was learned.
    pub kind: RouteKind,
    /// AS-path length in hops (0 at the origin).
    pub len: u32,
    /// The neighbor the route points at (self at the origin).
    pub next: Asn,
}

/// Best routes from every AS toward one destination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingTree {
    /// The destination AS.
    pub dst: Asn,
    entries: Vec<Option<RouteEntry>>,
}

impl RoutingTree {
    /// Compute the routing tree for destination `dst` over `view`.
    pub fn compute(view: &GraphView, dst: Asn) -> RoutingTree {
        Self::compute_multi(view, &[dst], dst)
    }

    /// Compute a tree for a *set* of origin ASes announcing the same
    /// destination (anycast). `label` names the tree (purely descriptive).
    ///
    /// Each client's best route leads to whichever origin wins under the
    /// policy preferences — exactly how an anycast prefix behaves.
    pub fn compute_multi(view: &GraphView, origins: &[Asn], label: Asn) -> RoutingTree {
        let n = view.n_ases();
        let mut entries: Vec<Option<RouteEntry>> = vec![None; n];

        // Better-route test implementing (pref, len, next-ASN) order.
        let better = |cur: &Option<RouteEntry>, cand: RouteEntry| -> bool {
            match cur {
                None => true,
                Some(c) => (cand.kind.rank(), cand.len, cand.next) < (c.kind.rank(), c.len, c.next),
            }
        };

        // ---- Phase 1: customer routes, flooding up provider edges. ----
        // Level-synchronous BFS so the (len, next) tiebreak is exact.
        let mut frontier: Vec<Asn> = Vec::new();
        for &o in origins {
            let e = RouteEntry {
                kind: RouteKind::Origin,
                len: 0,
                next: o,
            };
            if better(&entries[o.index()], e) {
                entries[o.index()] = Some(e);
                frontier.push(o);
            }
        }
        let mut level = 0u32;
        // Membership flags avoid O(frontier²) duplicate checks.
        let mut pending = vec![false; n];
        while !frontier.is_empty() {
            level += 1;
            let mut next_frontier: Vec<Asn> = Vec::new();
            // Iterate the frontier in ASN order for deterministic tiebreaks.
            frontier.sort_unstable();
            for &u in &frontier {
                for &(v, kind) in view.neighbors(u) {
                    // u exports its (customer/origin) route to its provider v;
                    // from v's perspective the route is learned from a customer.
                    if kind != NeighborKind::Provider {
                        continue;
                    }
                    let cand = RouteEntry {
                        kind: RouteKind::Customer,
                        len: level,
                        next: u,
                    };
                    let cur = &entries[v.index()];
                    // Only assign if v has nothing better (earlier level or
                    // lower next-hop ASN at this level).
                    let assignable = match cur {
                        None => true,
                        Some(c) => {
                            (cand.kind.rank(), cand.len, cand.next) < (c.kind.rank(), c.len, c.next)
                        }
                    };
                    if assignable {
                        entries[v.index()] = Some(cand);
                        if !pending[v.index()] {
                            pending[v.index()] = true;
                            next_frontier.push(v);
                        }
                    }
                }
            }
            for &v in &next_frontier {
                pending[v.index()] = false;
            }
            frontier = next_frontier;
        }

        // ---- Phase 2: peer routes (one peer edge crossing). ----
        // Exporters: ASes holding Origin/Customer routes.
        let exporters: Vec<(Asn, u32)> = (0..n)
            .filter_map(|i| {
                entries[i].and_then(|e| {
                    matches!(e.kind, RouteKind::Origin | RouteKind::Customer)
                        .then_some((Asn(i as u32), e.len))
                })
            })
            .collect();
        for &(u, ulen) in &exporters {
            for &(v, kind) in view.neighbors(u) {
                if kind != NeighborKind::Peer {
                    continue;
                }
                let cand = RouteEntry {
                    kind: RouteKind::Peer,
                    len: ulen + 1,
                    next: u,
                };
                if better(&entries[v.index()], cand) {
                    entries[v.index()] = Some(cand);
                }
            }
        }

        // ---- Phase 3: provider routes, flooding down customer edges. ----
        // Multi-source shortest-path over customer edges, sources = every
        // AS that currently holds a route, keyed by current route length.
        // Bucketed BFS by length keeps it O(V+E).
        let max_len_cap = (n as u32) + 2;
        let mut buckets: Vec<Vec<Asn>> = vec![Vec::new(); (max_len_cap + 1) as usize];
        for (i, entry) in entries.iter().enumerate() {
            if let Some(e) = entry {
                buckets[e.len as usize].push(Asn(i as u32));
            }
        }
        let mut l = 0usize;
        while (l as u32) < max_len_cap {
            if buckets[l].is_empty() {
                l += 1;
                continue;
            }
            let mut us = std::mem::take(&mut buckets[l]);
            us.sort_unstable();
            for u in us {
                // u may have been improved since it was bucketed; only
                // export its *current* route if the length still matches.
                let Some(e) = entries[u.index()] else {
                    continue;
                };
                if e.len as usize != l {
                    continue;
                }
                for &(v, kind) in view.neighbors(u) {
                    // u exports any route to its customers.
                    if kind != NeighborKind::Customer {
                        continue;
                    }
                    let cand = RouteEntry {
                        kind: RouteKind::Provider,
                        len: e.len + 1,
                        next: u,
                    };
                    if better(&entries[v.index()], cand) {
                        entries[v.index()] = Some(cand);
                        buckets[(e.len + 1) as usize].push(v);
                    }
                }
            }
        }

        itm_obs::counter!("routing.trees_computed").inc();
        if itm_obs::enabled() {
            itm_obs::histogram!("routing.tree_reachable")
                .record(entries.iter().flatten().count() as u64);
        }
        if itm_obs::trace::enabled() {
            itm_obs::trace::emit(
                itm_obs::trace::Technique::Routing,
                itm_obs::trace::EventKind::RouteResolved,
                itm_obs::trace::Subjects::none().asn(label.raw()),
                &format!(
                    "{} origins, {} reachable",
                    origins.len(),
                    entries.iter().flatten().count()
                ),
            );
        }

        RoutingTree {
            dst: label,
            entries,
        }
    }

    /// The best route at `asn`, if the destination is reachable.
    pub fn route(&self, asn: Asn) -> Option<RouteEntry> {
        self.entries[asn.index()]
    }

    /// The AS path from `src` to the destination, inclusive of both ends.
    /// `None` if unreachable.
    pub fn path(&self, src: Asn) -> Option<Vec<Asn>> {
        let mut path = vec![src];
        let mut cur = src;
        loop {
            let e = self.entries[cur.index()]?;
            if e.kind == RouteKind::Origin {
                return Some(path);
            }
            cur = e.next;
            // Cycle guard: paths can never exceed the AS count.
            if path.len() > self.entries.len() {
                return None;
            }
            path.push(cur);
        }
    }

    /// AS-path length in hops from `src` (0 when `src` is the origin).
    pub fn path_len(&self, src: Asn) -> Option<u32> {
        self.entries[src.index()].map(|e| e.len)
    }

    /// The origin AS `src`'s traffic ultimately reaches (for anycast trees
    /// this identifies the winning origin).
    pub fn origin_reached(&self, src: Asn) -> Option<Asn> {
        self.path(src).and_then(|p| p.last().copied())
    }

    /// Number of ASes with a route.
    pub fn reachable_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{Link, LinkClass};

    /// Toy topology:
    /// ```text
    ///        0 (tier1) ---- 1 (tier1)     0–1 peer
    ///       /  \              \
    ///      2    3              4          2,3 buy from 0; 4 buys from 1
    ///      |     \            /
    ///      5      6 ---------             5 buys from 2; 6 buys from 3 and 4
    ///      6 –p– 5  (peer link between 5 and 6)
    /// ```
    fn toy() -> GraphView {
        let links = vec![
            Link::peering(Asn(0), Asn(1), LinkClass::Transit),
            Link::transit(Asn(2), Asn(0)),
            Link::transit(Asn(3), Asn(0)),
            Link::transit(Asn(4), Asn(1)),
            Link::transit(Asn(5), Asn(2)),
            Link::transit(Asn(6), Asn(3)),
            Link::transit(Asn(6), Asn(4)),
            Link::peering(Asn(5), Asn(6), LinkClass::Transit),
        ];
        GraphView::from_links(7, &links)
    }

    #[test]
    fn origin_has_zero_length() {
        let t = RoutingTree::compute(&toy(), Asn(5));
        let e = t.route(Asn(5)).unwrap();
        assert_eq!(e.kind, RouteKind::Origin);
        assert_eq!(e.len, 0);
        assert_eq!(t.path(Asn(5)).unwrap(), vec![Asn(5)]);
    }

    #[test]
    fn prefers_peer_over_provider() {
        // From 6 to 5: via peer link 6–5 (len 1, Peer) vs via providers
        // 6-3-0-2-5 (len 4, Provider). Peer must win.
        let t = RoutingTree::compute(&toy(), Asn(5));
        let e = t.route(Asn(6)).unwrap();
        assert_eq!(e.kind, RouteKind::Peer);
        assert_eq!(t.path(Asn(6)).unwrap(), vec![Asn(6), Asn(5)]);
    }

    #[test]
    fn customer_routes_propagate_up() {
        let t = RoutingTree::compute(&toy(), Asn(5));
        // 2 hears from customer 5; 0 hears from customer 2.
        assert_eq!(t.route(Asn(2)).unwrap().kind, RouteKind::Customer);
        assert_eq!(t.route(Asn(0)).unwrap().kind, RouteKind::Customer);
        assert_eq!(t.path(Asn(0)).unwrap(), vec![Asn(0), Asn(2), Asn(5)]);
    }

    #[test]
    fn provider_routes_flood_down() {
        let t = RoutingTree::compute(&toy(), Asn(5));
        // 3 only reaches 5 via its provider 0.
        let e = t.route(Asn(3)).unwrap();
        assert_eq!(e.kind, RouteKind::Provider);
        assert_eq!(
            t.path(Asn(3)).unwrap(),
            vec![Asn(3), Asn(0), Asn(2), Asn(5)]
        );
        // 4 goes up to 1, across the tier-1 peering, down through 0.
        assert_eq!(
            t.path(Asn(4)).unwrap(),
            vec![Asn(4), Asn(1), Asn(0), Asn(2), Asn(5)]
        );
    }

    #[test]
    fn no_valley_paths() {
        // Destination 4: 5 must NOT route 5→6→4 (that would transit peer
        // 6's provider route — a valley). Correct: 5→2→0→1→4.
        let t = RoutingTree::compute(&toy(), Asn(4));
        assert_eq!(
            t.path(Asn(5)).unwrap(),
            vec![Asn(5), Asn(2), Asn(0), Asn(1), Asn(4)]
        );
    }

    #[test]
    fn peer_routes_are_not_reexported_to_peers() {
        // Destination 6: 5 has a peer route (5–6). 5's provider 2 must not
        // use 2→5→6 (customer 5 exporting a peer-learned route violates
        // export rules); 2 reaches 6 via 0→3→6.
        let t = RoutingTree::compute(&toy(), Asn(6));
        let p = t.path(Asn(2)).unwrap();
        assert_eq!(p, vec![Asn(2), Asn(0), Asn(3), Asn(6)]);
    }

    #[test]
    fn all_reachable_in_connected_graph() {
        for dst in 0..7 {
            let t = RoutingTree::compute(&toy(), Asn(dst));
            assert_eq!(t.reachable_count(), 7, "dst {dst}");
            for src in 0..7 {
                let p = t.path(Asn(src)).unwrap();
                assert_eq!(*p.first().unwrap(), Asn(src));
                assert_eq!(*p.last().unwrap(), Asn(dst));
                assert_eq!(p.len() as u32 - 1, t.path_len(Asn(src)).unwrap());
            }
        }
    }

    #[test]
    fn unreachable_when_view_is_cut() {
        // Remove the tier-1 peering: 4 can no longer reach 5.
        let links = vec![
            Link::transit(Asn(2), Asn(0)),
            Link::transit(Asn(5), Asn(2)),
            Link::transit(Asn(4), Asn(1)),
        ];
        let v = GraphView::from_links(6, &links);
        let t = RoutingTree::compute(&v, Asn(5));
        assert!(t.route(Asn(4)).is_none());
        assert!(t.path(Asn(4)).is_none());
        assert!(t.path_len(Asn(4)).is_none());
        assert_eq!(t.reachable_count(), 3); // 5, 2, 0
    }

    #[test]
    fn anycast_multi_origin_picks_nearest_by_policy() {
        // Origins 5 and 4. Client 6 peers with 5 (1 hop, Peer) and buys
        // from 4 (1 hop, Provider... wait, 4 is 6's provider). 6's route to
        // origin-set: customer route? 6 has no customers. Peer route via 5
        // wins over provider route via 4 (pref order).
        let t = RoutingTree::compute_multi(&toy(), &[Asn(5), Asn(4)], Asn(5));
        assert_eq!(t.origin_reached(Asn(6)), Some(Asn(5)));
        // 1 reaches origin 4 through its customer — customer beats peer.
        assert_eq!(t.origin_reached(Asn(1)), Some(Asn(4)));
        // 2 reaches 5 via its customer chain.
        assert_eq!(t.origin_reached(Asn(2)), Some(Asn(5)));
    }

    #[test]
    fn deterministic_tiebreak_lowest_next_asn() {
        // Diamond: 3 buys from 1 and 2; both buy from 0. Destination 0:
        // 3 has two provider routes of equal length; must pick next=1.
        let links = vec![
            Link::transit(Asn(1), Asn(0)),
            Link::transit(Asn(2), Asn(0)),
            Link::transit(Asn(3), Asn(1)),
            Link::transit(Asn(3), Asn(2)),
        ];
        let v = GraphView::from_links(4, &links);
        let t = RoutingTree::compute(&v, Asn(0));
        assert_eq!(t.route(Asn(3)).unwrap().next, Asn(1));
        // And the same diamond upward: destination 3, AS 0 hears customer
        // routes from both 1 and 2 at equal length; picks 1.
        let t2 = RoutingTree::compute(&v, Asn(3));
        assert_eq!(t2.route(Asn(0)).unwrap().next, Asn(1));
    }
}
