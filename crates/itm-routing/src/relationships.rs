//! AS-relationship inference from observed paths (Gao's algorithm).
//!
//! §3.3.1: "Approaches to predict routes use measured topologies *and AS
//! relationships*, coupled with common routing policies \[35, 42\]". Public
//! BGP data carries no relationship labels — they must be inferred from
//! the paths collectors see. This module implements the classic
//! degree-voting heuristic (Gao, 2001), which the ProbLink/AS-Rank line of
//! work refines:
//!
//! 1. **Degree pass**: an AS's degree (over the observed adjacency) proxies
//!    its size.
//! 2. **Top pass**: every valley-free path climbs to a single "top"
//!    provider and descends; the highest-degree AS on a path marks the
//!    summit. Pairs before the summit vote customer→provider, pairs after
//!    vote provider→customer.
//! 3. **Classification**: edges with one-sided votes are transit; edges
//!    with balanced votes (or straddling the summit without transit
//!    evidence) are peers.
//!
//! The experiment value is the *imperfection*: inference errors degrade
//! path prediction (quantified in E9's `inferred` variant), which is why
//! §3.3 calls relationship data a challenge rather than a given.

use crate::view::GraphView;
use itm_topology::{AsRel, Link, LinkClass, Topology};
use itm_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An inferred relationship for an observed adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferredRel {
    /// `a` (the lower ASN in the key) is the customer of `b`.
    CustomerOf,
    /// `b` is the customer of `a`.
    ProviderOf,
    /// Settlement-free peers.
    Peer,
}

/// The inference output: per canonical (low, high) AS pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InferredRelationships {
    rels: BTreeMap<(Asn, Asn), InferredRel>,
}

impl InferredRelationships {
    /// Run Gao-style inference over a set of observed AS paths.
    pub fn infer(paths: &[Vec<Asn>]) -> InferredRelationships {
        // Pass 1: degrees over the observed adjacency.
        let mut degree: BTreeMap<Asn, usize> = BTreeMap::new();
        let mut seen: std::collections::BTreeSet<(Asn, Asn)> = std::collections::BTreeSet::new();
        for p in paths {
            for w in p.windows(2) {
                let key = if w[0] <= w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                };
                if seen.insert(key) {
                    *degree.entry(w[0]).or_insert(0) += 1;
                    *degree.entry(w[1]).or_insert(0) += 1;
                }
            }
        }

        // Pass 2: transit votes. votes[(a, b)] = times a appeared as the
        // customer of b.
        let mut votes: BTreeMap<(Asn, Asn), u32> = BTreeMap::new();
        for p in paths {
            if p.len() < 2 {
                continue;
            }
            let top = p
                .iter()
                .enumerate()
                .max_by_key(|(_, a)| degree.get(a).copied().unwrap_or(0))
                .map(|(i, _)| i)
                .unwrap_or(0);
            for (i, w) in p.windows(2).enumerate() {
                if i < top {
                    // climbing: w[0] is customer of w[1]
                    *votes.entry((w[0], w[1])).or_insert(0) += 1;
                } else {
                    // descending: w[1] is customer of w[0]
                    *votes.entry((w[1], w[0])).or_insert(0) += 1;
                }
            }
        }

        // Pass 3: classify each observed adjacency.
        let mut rels = BTreeMap::new();
        for &(a, b) in &seen {
            let ab = votes.get(&(a, b)).copied().unwrap_or(0); // a customer of b
            let ba = votes.get(&(b, a)).copied().unwrap_or(0); // b customer of a
            let rel = if ab > 0 && ba > 0 {
                // Votes both ways: strongly unbalanced = transit with
                // noise, balanced = peer.
                let (hi, lo) = if ab >= ba { (ab, ba) } else { (ba, ab) };
                if hi as f64 >= 3.0 * lo as f64 {
                    if ab > ba {
                        InferredRel::CustomerOf
                    } else {
                        InferredRel::ProviderOf
                    }
                } else {
                    InferredRel::Peer
                }
            } else if ab > 0 {
                InferredRel::CustomerOf
            } else if ba > 0 {
                InferredRel::ProviderOf
            } else {
                InferredRel::Peer
            };
            rels.insert((a, b), rel);
        }
        InferredRelationships { rels }
    }

    /// The inferred relationship for a pair (canonical order applied).
    pub fn get(&self, x: Asn, y: Asn) -> Option<InferredRel> {
        let (a, b, flip) = if x <= y { (x, y, false) } else { (y, x, true) };
        self.rels.get(&(a, b)).map(|r| {
            if !flip {
                *r
            } else {
                match r {
                    InferredRel::CustomerOf => InferredRel::ProviderOf,
                    InferredRel::ProviderOf => InferredRel::CustomerOf,
                    InferredRel::Peer => InferredRel::Peer,
                }
            }
        })
    }

    /// Number of labelled pairs.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether nothing was inferred.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Materialize a [`GraphView`] from the inferred labels (the topology
    /// a predictor without ground-truth relationships would use).
    pub fn to_view(&self, n_ases: usize) -> GraphView {
        let links: Vec<Link> = self
            .rels
            .iter()
            .map(|(&(a, b), &rel)| match rel {
                InferredRel::CustomerOf => Link::transit(a, b),
                InferredRel::ProviderOf => Link::transit(b, a),
                InferredRel::Peer => Link::peering(a, b, LinkClass::Transit),
            })
            .collect();
        GraphView::from_links(n_ases, links.iter())
    }

    /// Accuracy against ground truth, over pairs that really are links:
    /// `(correct, total_evaluated)`.
    pub fn accuracy(&self, topo: &Topology) -> (usize, usize) {
        let mut correct = 0;
        let mut total = 0;
        let truth: BTreeMap<(Asn, Asn), &Link> = topo.links.iter().map(|l| (l.key(), l)).collect();
        for (&(a, b), &rel) in &self.rels {
            let Some(l) = truth.get(&(a, b)) else {
                continue;
            };
            total += 1;
            let ok = match l.rel {
                AsRel::PeerToPeer => rel == InferredRel::Peer,
                AsRel::CustomerToProvider => {
                    // l.a is the customer. Our key is canonical (a<b).
                    if l.a == a {
                        rel == InferredRel::CustomerOf
                    } else {
                        rel == InferredRel::ProviderOf
                    }
                }
            };
            if ok {
                correct += 1;
            }
        }
        (correct, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::RoutingTree;
    use crate::collectors::CollectorSet;
    use itm_topology::{generate, TopologyConfig};
    use itm_types::SeedDomain;

    /// Collect feeder paths to every destination, as a collector archive
    /// would contain.
    fn collector_paths(topo: &itm_topology::Topology) -> Vec<Vec<Asn>> {
        let view = GraphView::full(topo);
        let set = CollectorSet::typical(topo, &SeedDomain::new(7));
        let mut paths = Vec::new();
        for dst in 0..topo.n_ases() {
            let tree = RoutingTree::compute(&view, Asn(dst as u32));
            for &f in &set.feeders {
                if let Some(p) = tree.path(f) {
                    if p.len() >= 2 {
                        paths.push(p);
                    }
                }
            }
        }
        paths
    }

    #[test]
    fn inference_on_clean_paths_is_mostly_right() {
        let topo = generate(&TopologyConfig::small(), 83).unwrap();
        let paths = collector_paths(&topo);
        let inferred = InferredRelationships::infer(&paths);
        assert!(!inferred.is_empty());
        let (correct, total) = inferred.accuracy(&topo);
        assert!(total > 50);
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.75, "accuracy {acc:.3} ({correct}/{total})");
    }

    #[test]
    fn get_flips_direction_consistently() {
        let paths = vec![vec![Asn(5), Asn(2), Asn(9)]]; // 5 up to 2? depends on degree
        let inf = InferredRelationships::infer(&paths);
        for (x, y) in [(Asn(5), Asn(2)), (Asn(2), Asn(9))] {
            let fwd = inf.get(x, y).unwrap();
            let rev = inf.get(y, x).unwrap();
            match fwd {
                InferredRel::Peer => assert_eq!(rev, InferredRel::Peer),
                InferredRel::CustomerOf => assert_eq!(rev, InferredRel::ProviderOf),
                InferredRel::ProviderOf => assert_eq!(rev, InferredRel::CustomerOf),
            }
        }
        assert_eq!(inf.get(Asn(5), Asn(9)), None);
    }

    #[test]
    fn to_view_has_all_observed_edges() {
        let topo = generate(&TopologyConfig::small(), 89).unwrap();
        let paths = collector_paths(&topo);
        let inferred = InferredRelationships::infer(&paths);
        let view = inferred.to_view(topo.n_ases());
        assert_eq!(view.n_edges_directed(), 2 * inferred.len());
        for p in paths.iter().take(50) {
            for w in p.windows(2) {
                assert!(view.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn prediction_with_inferred_labels_degrades_gracefully() {
        // E9's third variant: same visible links, inferred labels. It
        // should predict worse than (or equal to) perfect labels, but far
        // better than nothing.
        let topo = generate(&TopologyConfig::small(), 97).unwrap();
        let full = GraphView::full(&topo);
        let paths = collector_paths(&topo);
        let inferred = InferredRelationships::infer(&paths);
        let inferred_view = inferred.to_view(topo.n_ases());

        let hg = topo.hypergiants()[0];
        let truth_tree = RoutingTree::compute(&full, hg);
        let pred_tree = RoutingTree::compute(&inferred_view, hg);
        let mut exact = 0;
        let mut total = 0;
        for i in 0..topo.n_ases() {
            let a = Asn(i as u32);
            let Some(tp) = truth_tree.path(a) else {
                continue;
            };
            total += 1;
            if pred_tree.path(a) == Some(tp) {
                exact += 1;
            }
        }
        assert!(total > 0);
        // Some paths predict correctly even with inferred labels.
        assert!(exact > 0, "inference made prediction impossible");
    }
}
