//! `lint_layers.toml`: the declared crate layering DAG for rule L001.
//!
//! The grammar is a deliberately tiny TOML subset — one table, one key:
//!
//! ```toml
//! [layers]
//! order = [
//!   "itm-types",   # lowest layer: depends on nothing
//!   "itm-obs",
//!   # …
//!   "itm-bench",   # highest layer
//! ]
//! ```
//!
//! `order` lists crates from lowest to highest layer. A crate may
//! reference (via `itm_*::` paths) only crates *strictly below* itself.
//! Crates not listed — the root `itm` package, shims, the linter — are
//! outside the DAG: references *from* them are unconstrained, and
//! references *to* them are ignored.

use std::fs;
use std::path::Path;

/// The parsed layering declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layers {
    /// Crate names, lowest layer first.
    pub order: Vec<String>,
}

impl Layers {
    /// Load `<root>/lint_layers.toml`; `Ok(None)` when absent.
    pub fn load(root: &Path) -> Result<Option<Layers>, String> {
        let path = root.join("lint_layers.toml");
        let Ok(text) = fs::read_to_string(&path) else {
            return Ok(None);
        };
        Layers::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parse the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Layers, String> {
        let mut in_layers = false;
        let mut in_order = false;
        let mut order: Vec<String> = Vec::new();
        let mut closed = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(h) => &raw[..h],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_layers = line == "[layers]";
                continue;
            }
            if !in_layers {
                continue;
            }
            let mut rest = line;
            if !in_order {
                let Some(after) = rest.strip_prefix("order") else {
                    continue;
                };
                let after = after.trim_start();
                let Some(after) = after.strip_prefix('=') else {
                    return Err(format!("line {lineno}: expected `order = [`"));
                };
                let after = after.trim_start();
                let Some(after) = after.strip_prefix('[') else {
                    return Err(format!("line {lineno}: expected `[` after `order =`"));
                };
                in_order = true;
                rest = after.trim();
            }
            // Items: quoted strings separated by commas, until `]`.
            let mut s = rest;
            loop {
                s = s.trim_start_matches(',').trim();
                if s.is_empty() {
                    break;
                }
                if let Some(after) = s.strip_prefix(']') {
                    closed = true;
                    s = after;
                    if !s.trim().is_empty() {
                        return Err(format!("line {lineno}: trailing content after `]`"));
                    }
                    break;
                }
                let Some(after_quote) = s.strip_prefix('"') else {
                    return Err(format!("line {lineno}: expected quoted crate name"));
                };
                let Some(close) = after_quote.find('"') else {
                    return Err(format!("line {lineno}: unterminated string"));
                };
                let name = &after_quote[..close];
                if name.is_empty() {
                    return Err(format!("line {lineno}: empty crate name"));
                }
                if order.iter().any(|o| o == name) {
                    return Err(format!("line {lineno}: crate `{name}` listed twice"));
                }
                order.push(name.to_string());
                s = &after_quote[close + 1..];
            }
            if closed {
                break;
            }
        }
        if !in_order {
            return Err("no `order = [ … ]` under `[layers]`".to_string());
        }
        if !closed {
            return Err("unterminated `order = [` list".to_string());
        }
        if order.is_empty() {
            return Err("`order` lists no crates".to_string());
        }
        Ok(Layers { order })
    }

    /// Position of `krate` in the order (lowest = 0), when declared.
    pub fn index_of(&self, krate: &str) -> Option<usize> {
        self.order.iter().position(|c| c == krate)
    }
}
