//! The rule set: determinism (D-rules), panic-safety (P-rules), float
//! hygiene (F-rules), and allow-annotation hygiene (A-rules).
//!
//! Every rule maps to an invariant of this workspace (see DESIGN.md §8):
//!
//! * **D001** — no wall-clock reads (`SystemTime::now`, `Instant::now`) in
//!   library crates. The simulator runs on virtual time
//!   (`itm_types::SimTime`); a wall-clock read makes output depend on the
//!   host scheduler.
//! * **D002** — no unseeded randomness (`thread_rng`, `from_entropy`,
//!   `rand::random`, `OsRng`). All randomness flows from the substrate
//!   seed through `SeedDomain`.
//! * **D003** — no `HashMap`/`HashSet` fields in types annotated
//!   `#[derive(Serialize)]` / `#[derive(Deserialize)]`. Unordered
//!   iteration feeding serialization makes byte output depend on hash
//!   order; use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * **D004** — no thread spawns outside the registered executor file;
//!   parallelism must flow through `itm_core::ParallelExecutor` so the
//!   per-shard seed-domain discipline cannot be bypassed.
//! * **D005** — no raw allocator access (`std::alloc`, `GlobalAlloc`,
//!   `#[global_allocator]`) outside the registered wrapper file; memory
//!   accounting flows through `itm_obs::alloc` so per-phase attribution
//!   cannot be bypassed. (Harness code — binaries, benches, tests — may
//!   still *install* the wrapper with `#[global_allocator]`.)
//! * **P001** — no `unwrap()`, `expect()`, `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!` in non-test library code; return
//!   `ItmError` instead.
//! * **F001** — no `==`/`!=` against float literals; compare with an
//!   epsilon or restructure.
//! * **M001–M004 / C001–C002 / L001** — the scale, shard-safety, and
//!   layering families; their semantics live in [`crate::scale`] and the
//!   symbol layer they run on in [`crate::symbols`].
//! * **A001** — malformed `itm-lint: allow(...)` annotation (unknown rule
//!   id or missing reason).
//! * **A002** — an allow annotation that suppressed nothing.

use crate::lexer::{SourceModel, TokKind};
use crate::report::Finding;
use crate::scale::{self, Context};

/// All lintable rule ids, with one-line descriptions (stable order).
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "wall-clock read in library code (virtual time only)",
    ),
    (
        "D002",
        "unseeded randomness (all RNGs derive from the substrate seed)",
    ),
    (
        "D003",
        "HashMap/HashSet field in a Serialize/Deserialize type (unordered iteration feeds output)",
    ),
    (
        "D004",
        "thread spawn outside registered executor code (parallelism must flow through ParallelExecutor)",
    ),
    (
        "D005",
        "raw allocator access outside the registered wrapper (memory accounting flows through itm_obs::alloc)",
    ),
    (
        "P001",
        "unwrap/expect/panic in non-test library code (return ItmError instead)",
    ),
    (
        "F001",
        "float ==/!= comparison (use an epsilon or restructure)",
    ),
    (
        "M001",
        "clone/to_owned/to_string inside a campaign or merge loop (per-item owned copies on the hot path)",
    ),
    (
        "M002",
        "String/Vec<String> key in a BTreeMap/BTreeSet field of a hot-path struct (intern to u32 ids)",
    ),
    (
        "M003",
        "materialize-then-sort on a campaign merge path (emit sorted runs per shard and k-way merge)",
    ),
    (
        "M004",
        "per-item allocation inside a run_shards shard body (trace-gated blocks exempt)",
    ),
    (
        "C001",
        "shared mutable capture (&mut, RefCell, Mutex) in a closure handed to ParallelExecutor::map/run_with",
    ),
    (
        "C002",
        "iteration over a HashMap/HashSet local feeding a campaign or serialized flow (hash order leaks)",
    ),
    (
        "L001",
        "crate reference against the declared lint_layers.toml dependency direction",
    ),
    (
        "A001",
        "malformed itm-lint allow annotation (reason is mandatory)",
    ),
    ("A002", "unused itm-lint allow annotation"),
];

/// Is `id` a rule that an allow annotation may name?
pub fn allowable_rule(id: &str) -> bool {
    // A-rules police the annotations themselves and cannot be allowed.
    RULES.iter().any(|(r, _)| *r == id) && !id.starts_with('A')
}

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library crate sources: the full rule set applies.
    Library,
    /// Binaries, benches, tests, examples, and the lint/bench tooling
    /// crates: wall-clock and panics are legitimate here, but unseeded
    /// randomness and float equality are still flagged.
    Harness,
    /// Offline dependency shims: emulate external crates; only the
    /// unseeded-randomness rule applies.
    Shim,
}

impl FileClass {
    /// Does `rule` apply to files of this class?
    pub fn applies(self, rule: &str) -> bool {
        match self {
            FileClass::Library => true,
            FileClass::Harness => matches!(rule, "D002" | "F001" | "A001" | "A002"),
            FileClass::Shim => matches!(rule, "D002" | "A001" | "A002"),
        }
    }
}

/// One parsed `// itm-lint: allow(RULE): reason` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the annotation appears on.
    pub line: u32,
    /// The rule id it names.
    pub rule: String,
    /// 1-based line the annotation covers (its own line, or the next code
    /// line when the annotation stands alone).
    pub covers: u32,
}

/// Run every applicable rule over a lexed file. Returns the surviving
/// findings (allows already applied, allow-hygiene findings included).
///
/// `ctx` carries the symbol-layer context for the M/C/L families; when
/// `None` (bare line-level scans) those families are skipped.
pub fn check(
    model: &SourceModel,
    class: FileClass,
    file: &str,
    ctx: Option<&Context>,
) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    let mut mk = |rule: &'static str, line: u32, message: String| Finding {
        rule: rule.to_string(),
        file: file.to_string(),
        line,
        message,
        snippet: model.snippet(line),
    };

    let (allows, mut hygiene) = parse_allows(model, file);

    if class.applies("D001") {
        rule_d001(model, &mut raw, &mut mk);
    }
    if class.applies("D002") {
        rule_d002(model, &mut raw, &mut mk);
    }
    if class.applies("D003") {
        rule_d003(model, &mut raw, &mut mk);
    }
    if class.applies("D004") {
        rule_d004(model, &mut raw, &mut mk, file);
    }
    if class.applies("D005") {
        rule_d005(model, &mut raw, &mut mk, file);
    }
    if class.applies("P001") {
        rule_p001(model, &mut raw, &mut mk);
    }
    if class.applies("F001") {
        rule_f001(model, &mut raw, &mut mk);
    }
    if let Some(ctx) = ctx {
        if class.applies("M001") {
            scale::rule_m001(model, ctx, &mut raw, &mut mk);
        }
        if class.applies("M002") {
            scale::rule_m002(model, ctx, &mut raw, &mut mk);
        }
        if class.applies("M003") {
            scale::rule_m003(model, ctx, &mut raw, &mut mk);
        }
        if class.applies("M004") {
            scale::rule_m004(model, ctx, &mut raw, &mut mk);
        }
        if class.applies("C001") {
            scale::rule_c001(model, ctx, &mut raw, &mut mk, file);
        }
        if class.applies("C002") {
            scale::rule_c002(model, ctx, &mut raw, &mut mk);
        }
        if class.applies("L001") {
            scale::rule_l001(model, ctx, &mut raw, &mut mk);
        }
    }

    // Apply allows: a finding on a covered line with a matching rule id is
    // suppressed; each allow must suppress at least one finding.
    let mut used = vec![false; allows.len()];
    let mut kept: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for (ai, a) in allows.iter().enumerate() {
            if a.rule == f.rule && a.covers == f.line {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for (ai, a) in allows.iter().enumerate() {
        if !used[ai] {
            kept.push(Finding {
                rule: "A002".to_string(),
                file: file.to_string(),
                line: a.line,
                message: format!(
                    "allow({}) suppresses nothing — remove it or move it next to the violation",
                    a.rule
                ),
                snippet: model.snippet(a.line),
            });
        }
    }
    kept.append(&mut hygiene);
    kept.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    kept
}

/// Extract allow annotations and their hygiene findings (A001).
fn parse_allows(model: &SourceModel, file: &str) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (idx, comment) in model.comments.iter().enumerate() {
        let line = idx as u32 + 1;
        // An annotation is a comment whose content *starts* with
        // `itm-lint:` (after doc markers) — prose that merely mentions the
        // grammar, like this sentence, is not an annotation.
        let content = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
        let Some(rest) = content.strip_prefix("itm-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let bad = |msg: &str| Finding {
            rule: "A001".to_string(),
            file: file.to_string(),
            line,
            message: msg.to_string(),
            snippet: model.snippet(line),
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            findings.push(bad("itm-lint annotation must be `allow(RULE): reason`"));
            continue;
        };
        let Some(close) = args.find(')') else {
            findings.push(bad("unterminated allow(RULE) — missing `)`"));
            continue;
        };
        let rule = args[..close].trim().to_string();
        if !allowable_rule(&rule) {
            findings.push(bad(&format!(
                "allow names unknown or unallowable rule `{rule}`"
            )));
            continue;
        }
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(bad(&format!(
                "allow({rule}) carries no reason — `allow({rule}): <why this is sound>`"
            )));
            continue;
        }
        // The annotation covers its own line when that line has code,
        // otherwise the next line that does.
        let mut covers = line;
        if !model.has_code.get(idx).copied().unwrap_or(false) {
            for (j, has) in model.has_code.iter().enumerate().skip(idx + 1) {
                if *has {
                    covers = j as u32 + 1;
                    break;
                }
            }
        }
        allows.push(Allow { line, rule, covers });
    }
    (allows, findings)
}

/// D001: `SystemTime::now()` / `Instant::now()`.
fn rule_d001(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || model.line_is_test(t.line) {
            continue;
        }
        if (t.text == "SystemTime" || t.text == "Instant")
            && toks.get(i + 1).map(|x| x.text.as_str()) == Some("::")
            && toks.get(i + 2).map(|x| x.text.as_str()) == Some("now")
        {
            out.push(mk(
                "D001",
                t.line,
                format!(
                    "{}::now() reads the wall clock; library code must use virtual time (itm_types::SimTime)",
                    t.text
                ),
            ));
        }
    }
}

/// D002: unseeded randomness entry points.
fn rule_d002(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || model.line_is_test(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" | "getrandom" => true,
            "random" => i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "rand",
            _ => false,
        };
        if hit {
            out.push(mk(
                "D002",
                t.line,
                format!(
                    "`{}` draws entropy outside the substrate seed; derive an RNG from SeedDomain instead",
                    t.text
                ),
            ));
        }
    }
}

/// D003: `HashMap`/`HashSet` fields inside `#[derive(Serialize)]` /
/// `#[derive(Deserialize)]` types.
fn rule_d003(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // Find a #[derive(...)] containing Serialize/Deserialize.
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut is_serde_derive = false;
        let mut saw_derive = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" | "(" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ")" => depth -= 1,
                "derive" => saw_derive = true,
                "Serialize" | "Deserialize" if saw_derive => is_serde_derive = true,
                _ => {}
            }
            j += 1;
        }
        if !is_serde_derive {
            i = j + 1;
            continue;
        }
        // Skip further attributes/doc lines to the struct/enum keyword.
        let mut k = j + 1;
        while k < toks.len() {
            if toks[k].text == "#" && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[") {
                let mut d = 0i32;
                k += 1;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "[" | "(" => d += 1,
                        ")" => d -= 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
                continue;
            }
            break;
        }
        // Accept modifiers (pub, pub(crate), etc.) before struct/enum.
        let mut item = k;
        while item < toks.len() && !matches!(toks[item].text.as_str(), "struct" | "enum" | "union")
        {
            // Give up if we hit another item start — not a type derive.
            if matches!(toks[item].text.as_str(), "fn" | "impl" | "mod" | "trait") {
                break;
            }
            item += 1;
            if item - k > 6 {
                break;
            }
        }
        if item >= toks.len() || !matches!(toks[item].text.as_str(), "struct" | "enum" | "union") {
            i = j + 1;
            continue;
        }
        let type_name = toks
            .get(item + 1)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // Walk the body (to matching `}`, or to `;` for unit/tuple structs)
        // flagging HashMap/HashSet mentions.
        let mut d = 0i32;
        let mut m = item;
        let mut opened = false;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "{" => {
                    d += 1;
                    opened = true;
                }
                "}" => {
                    d -= 1;
                    if opened && d == 0 {
                        break;
                    }
                }
                ";" if !opened => break,
                "HashMap" | "HashSet" if !model.line_is_test(toks[m].line) => {
                    let ordered = if toks[m].text == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    };
                    out.push(mk(
                        "D003",
                        toks[m].line,
                        format!(
                            "`{}` field in serializable type `{type_name}` iterates in hash order; use `{ordered}` or sort before output",
                            toks[m].text
                        ),
                    ));
                }
                _ => {}
            }
            m += 1;
        }
        i = m + 1;
    }
}

/// Library files allowed to spawn threads: the deterministic shard
/// executor. Everything else must route parallelism through it so the
/// per-shard seed-domain discipline cannot be bypassed.
const EXECUTOR_FILES: &[&str] = &["crates/itm-core/src/exec.rs"];

/// D004: `thread::spawn` / `thread::scope` / `.spawn(` outside registered
/// executor files.
fn rule_d004(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
    file: &str,
) {
    if EXECUTOR_FILES.iter().any(|f| file.ends_with(f)) {
        return;
    }
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || model.line_is_test(t.line) {
            continue;
        }
        let after_thread_path = i >= 2
            && toks[i - 1].text == "::"
            && matches!(toks[i - 2].text.as_str(), "thread" | "scope");
        let called = toks.get(i + 1).map(|x| x.text.as_str()) == Some("(");
        let hit = match t.text.as_str() {
            // `thread::spawn(...)` or any `.spawn(...)` builder call
            // (std::thread::Builder, scope handles).
            "spawn" => called && (after_thread_path || (i > 0 && toks[i - 1].text == ".")),
            // `thread::scope(...)`.
            "scope" => called && after_thread_path,
            _ => false,
        };
        if hit {
            out.push(mk(
                "D004",
                t.line,
                format!(
                    "`{}` spawns threads outside the registered executor; route parallelism through itm_core::ParallelExecutor",
                    t.text
                ),
            ));
        }
    }
}

/// The one library file allowed to touch the raw allocator interface:
/// the tracking wrapper itself. Everything else observes memory through
/// `itm_obs::alloc`'s accounting API, so per-phase attribution (and the
/// disabled-path byte-identity guarantee) cannot be bypassed.
const ALLOC_FILES: &[&str] = &["crates/itm-obs/src/alloc.rs"];

/// D005: raw allocator access (`std::alloc` paths, `GlobalAlloc`,
/// `#[global_allocator]`) outside registered wrapper files.
fn rule_d005(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
    file: &str,
) {
    if ALLOC_FILES.iter().any(|f| file.ends_with(f)) {
        return;
    }
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || model.line_is_test(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "GlobalAlloc" | "global_allocator" => true,
            // A `std::alloc` path segment (imports and direct calls both
            // start this way); a bare identifier named `alloc` is not the
            // allocator.
            "alloc" => i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std",
            _ => false,
        };
        if hit {
            out.push(mk(
                "D005",
                t.line,
                format!(
                    "`{}` reaches the raw allocator outside the registered wrapper; account memory through itm_obs::alloc",
                    t.text
                ),
            ));
        }
    }
}

/// P001: panicking calls in non-test code.
fn rule_p001(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || model.line_is_test(t.line) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let is_method = i > 0 && toks[i - 1].text == ".";
                let is_call = toks.get(i + 1).map(|x| x.text.as_str()) == Some("(");
                if is_method && is_call {
                    out.push(mk(
                        "P001",
                        t.line,
                        format!(
                            ".{}() can panic; propagate a Result<_, ItmError> instead",
                            t.text
                        ),
                    ));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let is_macro = toks.get(i + 1).map(|x| x.text.as_str()) == Some("!");
                // `core::panic` paths and `#[panic_handler]` would be odd
                // here; the bang is the discriminator we need.
                if is_macro {
                    out.push(mk(
                        "P001",
                        t.line,
                        format!("{}! aborts the caller; return ItmError instead", t.text),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// F001: `==` / `!=` with a float-literal operand.
fn rule_f001(
    model: &SourceModel,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct
            || (t.text != "==" && t.text != "!=")
            || model.line_is_test(t.line)
        {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let next_float = toks.get(i + 1).map(|x| x.kind) == Some(TokKind::Float);
        if prev_float || next_float {
            out.push(mk(
                "F001",
                t.line,
                format!(
                    "float literal compared with `{}`; exact float equality is fragile — compare with an epsilon",
                    t.text
                ),
            ));
        }
    }
}
