//! The scale/shard rule families (M/C/L), built on [`crate::symbols`].
//!
//! These rules exist for one reason: the ROADMAP's `--size internet`
//! target (≈73k ASes / ≈11M routed /24s) dies on memory long before it
//! dies on CPU. The M-series flags the allocation patterns that make hot
//! per-prefix state balloon, the C-series flags shard-safety hazards that
//! would break byte-identical parallel merges, and the L-series keeps the
//! crate DAG pointing in one direction so the substrate stays replaceable.
//!
//! * **M001** — `clone()` / `to_owned()` / `to_string()` inside a loop of
//!   a campaign or merge fn: per-item owned copies on the hot path.
//! * **M002** — `BTreeMap`/`BTreeSet` field keyed by `String` /
//!   `Vec<String>` in a hot-path struct: intern to dense `u32` ids
//!   (`itm_types::intern`) instead.
//! * **M003** — `.sort*()` on a campaign merge path: shards must emit
//!   sorted runs and the merge must be a k-way run merge, not
//!   materialize-then-sort (which holds every run *and* the sorted copy).
//! * **M004** — per-item allocation (`format!`, `vec!`, `String::from`,
//!   `String::new`, `Box::new`, `.to_vec()`) inside a loop of a shard fn;
//!   blocks gated on `…trace…` are exempt (they only run under capture).
//! * **C001** — shared mutable state (`RefCell`, `Mutex`, `RwLock`,
//!   `&mut`) inside the arguments of `ParallelExecutor::map` /
//!   `run_with*` / `measure_with*` calls: shard closures must be pure
//!   functions of the shard index.
//! * **C002** — iteration over a `HashMap`/`HashSet` local inside a
//!   campaign/merge/serializing fn: hash order leaking into flows, the
//!   flow-level generalization of D003.
//! * **L001** — `itm_*::` reference to a crate at the same or a higher
//!   layer of the declared `lint_layers.toml` DAG.

use crate::layers::Layers;
use crate::lexer::{SourceModel, TokKind};
use crate::report::Finding;
use crate::symbols::{FileSymbols, FnSym};
use std::collections::BTreeSet;

/// Cross-file context handed to the rule pass for one file.
pub struct Context<'a> {
    /// This file's symbols.
    pub syms: &'a FileSymbols,
    /// Workspace-wide hot-path struct names.
    pub hot_structs: &'a BTreeSet<String>,
    /// The layering DAG, when `lint_layers.toml` is present.
    pub layers: Option<&'a Layers>,
}

/// Files whose executor internals are exempt from C001 (the executor
/// itself owns the shared work-queue state the rule hunts for).
const EXECUTOR_FILES: &[&str] = &["crates/itm-core/src/exec.rs"];

/// Method-call test: ident token `i` is `.name(…)`.
fn is_method_call(model: &SourceModel, i: usize) -> bool {
    let toks = &model.tokens;
    i > 0 && toks[i - 1].text == "." && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
}

/// M001: owned copies inside campaign/merge loops.
pub fn rule_m001(
    model: &SourceModel,
    ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    let mut flagged = BTreeSet::new();
    for f in ctx.syms.fns.iter().filter(|f| f.is_campaign || f.is_merge) {
        for (i, t) in toks.iter().enumerate().take(f.body.1).skip(f.body.0) {
            if t.kind != TokKind::Ident
                || !matches!(t.text.as_str(), "clone" | "to_owned" | "to_string")
                || !f.in_loop(i)
                || model.line_is_test(t.line)
                || !is_method_call(model, i)
                || !flagged.insert(i)
            {
                continue;
            }
            out.push(mk(
                "M001",
                t.line,
                format!(
                    ".{}() allocates an owned copy per iteration on the campaign path ({}); hoist it or intern the value",
                    t.text, f.name
                ),
            ));
        }
    }
}

/// M002: string-keyed ordered maps in hot-path structs.
pub fn rule_m002(
    model: &SourceModel,
    ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    for s in &ctx.syms.structs {
        if !ctx.hot_structs.contains(&s.name) {
            continue;
        }
        for (line, container, key) in &s.string_keyed {
            if model.line_is_test(*line) {
                continue;
            }
            out.push(mk(
                "M002",
                *line,
                format!(
                    "`{container}<{key}, …>` key in hot-path struct `{}` scales owned strings with the substrate; intern to u32 ids (itm_types::intern)",
                    s.name
                ),
            ));
        }
    }
}

/// M003: materialize-then-sort at campaign merge time.
pub fn rule_m003(
    model: &SourceModel,
    ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    let mut flagged = BTreeSet::new();
    for f in ctx.syms.fns.iter().filter(|f| f.is_merge) {
        for (i, t) in toks.iter().enumerate().take(f.body.1).skip(f.body.0) {
            if t.kind != TokKind::Ident
                || !t.text.starts_with("sort")
                || model.line_is_test(t.line)
                || !is_method_call(model, i)
                || !flagged.insert(i)
            {
                continue;
            }
            out.push(mk(
                "M003",
                t.line,
                format!(
                    ".{}() on the merge path of `{}` holds every run plus the sorted copy; emit sorted runs per shard and k-way merge them (itm_types::merge_sorted_runs)",
                    t.text, f.name
                ),
            ));
        }
    }
}

/// M004: per-item allocation in shard bodies (trace-gated blocks exempt).
pub fn rule_m004(
    model: &SourceModel,
    ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    let mut flagged = BTreeSet::new();
    for f in ctx.syms.fns.iter().filter(|f| f.is_campaign) {
        for i in f.body.0..f.body.1 {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !f.in_loop(i)
                || f.in_trace_gated(i)
                || model.line_is_test(t.line)
            {
                continue;
            }
            let next = toks.get(i + 1).map(|x| x.text.as_str());
            let then = toks.get(i + 2).map(|x| x.text.as_str());
            let what: Option<String> = match t.text.as_str() {
                "format" | "vec" if next == Some("!") => Some(format!("{}!", t.text)),
                "String" | "Box"
                    if next == Some("::")
                        && matches!(then, Some("from") | Some("new") | Some("with_capacity")) =>
                {
                    Some(format!("{}::{}", t.text, then.unwrap_or_default()))
                }
                "to_vec" if is_method_call(model, i) => Some(".to_vec()".to_string()),
                _ => None,
            };
            let Some(what) = what else { continue };
            if !flagged.insert(i) {
                continue;
            }
            out.push(mk(
                "M004",
                t.line,
                format!(
                    "{what} allocates per item inside shard fn `{}`; preallocate outside the loop or write into the shard's columnar output",
                    f.name
                ),
            ));
        }
    }
}

/// C001: shared mutable capture in executor/campaign-runner arguments.
pub fn rule_c001(
    model: &SourceModel,
    _ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
    file: &str,
) {
    if EXECUTOR_FILES.iter().any(|f| file.ends_with(f)) {
        return;
    }
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || model.line_is_test(t.line) {
            continue;
        }
        let is_exec_map = t.text == "map"
            && is_method_call(model, i)
            && i >= 2
            && matches!(toks[i - 2].text.as_str(), "exec" | "executor");
        let is_runner = matches!(
            t.text.as_str(),
            "run_with" | "run_with_faults" | "measure_with" | "measure_with_faults"
        ) && toks.get(i + 1).map(|x| x.text.as_str()) == Some("(");
        if !is_exec_map && !is_runner {
            continue;
        }
        // Walk the argument list.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "RefCell" | "Mutex" | "RwLock" if toks[j].kind == TokKind::Ident => {
                    out.push(mk(
                        "C001",
                        toks[j].line,
                        format!(
                            "`{}` captured by a closure handed to `{}`; shard closures must be pure functions of the shard index",
                            toks[j].text, t.text
                        ),
                    ));
                }
                "lock" | "borrow_mut" if is_method_call(model, j) => {
                    out.push(mk(
                        "C001",
                        toks[j].line,
                        format!(
                            ".{}() inside a `{}` argument mutates shared state across shards; merge shard results after the run instead",
                            toks[j].text, t.text
                        ),
                    ));
                }
                "&" if toks.get(j + 1).map(|x| x.text.as_str()) == Some("mut") => {
                    out.push(mk(
                        "C001",
                        toks[j].line,
                        format!(
                            "`&mut` capture inside a `{}` argument; merge shard results after the run instead of mutating shared state",
                            t.text
                        ),
                    ));
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// C002: iteration over a hash-container local feeding campaign or
/// serialized flows.
pub fn rule_c002(
    model: &SourceModel,
    ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let toks = &model.tokens;
    let mut flagged = BTreeSet::new();
    for f in &ctx.syms.fns {
        let serializing = toks[f.body.0..f.body.1]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "to_json_value");
        if !(f.is_campaign || f.is_merge || serializing) {
            continue;
        }
        let locals = hash_locals(model, f);
        if locals.is_empty() {
            continue;
        }
        for i in f.body.0..f.body.1 {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !locals.contains(&t.text) || model.line_is_test(t.line) {
                continue;
            }
            let iterated = match toks.get(i + 1).map(|x| x.text.as_str()) {
                Some(".") => matches!(
                    toks.get(i + 2).map(|x| x.text.as_str()),
                    Some("iter")
                        | Some("iter_mut")
                        | Some("into_iter")
                        | Some("keys")
                        | Some("values")
                        | Some("values_mut")
                        | Some("drain")
                ),
                _ => {
                    i >= 1 && toks[i - 1].text == "in"
                        || (i >= 2 && toks[i - 1].text == "&" && toks[i - 2].text == "in")
                }
            };
            if !iterated || !flagged.insert((t.text.clone(), t.line)) {
                continue;
            }
            out.push(mk(
                "C002",
                t.line,
                format!(
                    "iterating hash container `{}` in `{}` feeds hash order into a campaign/serialized flow; use a BTree container or sort the items first",
                    t.text, f.name
                ),
            ));
        }
    }
}

/// Names of locals in `f` declared as `HashMap` / `HashSet`.
fn hash_locals(model: &SourceModel, f: &FnSym) -> BTreeSet<String> {
    let toks = &model.tokens;
    let mut names = BTreeSet::new();
    let mut i = f.body.0;
    while i < f.body.1 {
        if toks[i].kind == TokKind::Ident && toks[i].text == "let" {
            // Binding name: the first ident after `let`, skipping `mut`.
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            let name = toks
                .get(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            if let Some(name) = name {
                // Scan the statement (to `;` at depth 0) for a hash type.
                let mut depth = 0i32;
                let mut k = j + 1;
                let mut hashed = false;
                while k < f.body.1 {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        "HashMap" | "HashSet" => hashed = true,
                        _ => {}
                    }
                    k += 1;
                }
                if hashed {
                    names.insert(name);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    names
}

/// L001: crate references that point sideways or upward in the DAG.
pub fn rule_l001(
    model: &SourceModel,
    ctx: &Context,
    out: &mut Vec<Finding>,
    mk: &mut impl FnMut(&'static str, u32, String) -> Finding,
) {
    let Some(layers) = ctx.layers else { return };
    let Some(own) = ctx.syms.crate_name.as_deref() else {
        return;
    };
    let Some(own_idx) = layers.index_of(own) else {
        return;
    };
    for (dep, line) in &ctx.syms.crate_refs {
        if model.line_is_test(*line) || dep == own {
            continue;
        }
        let Some(dep_idx) = layers.index_of(dep) else {
            continue;
        };
        if dep_idx >= own_idx {
            out.push(mk(
                "L001",
                *line,
                format!(
                    "`{own}` (layer {own_idx}) references `{dep}` (layer {dep_idx}); dependencies must point strictly downward in lint_layers.toml"
                ),
            ));
        }
    }
}
