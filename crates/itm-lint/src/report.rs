//! Findings and the machine-readable lint report.
//!
//! The JSON report is deterministic: files are scanned in sorted order,
//! findings are sorted by (file, line, rule), and the by-rule counts use a
//! `BTreeMap`. Two runs over the same tree produce byte-identical reports.

use std::collections::BTreeMap;

/// One rule violation (or allow-hygiene problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"P001"`.
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Trimmed source line, for context.
    pub snippet: String,
}

impl Finding {
    /// The `file:line: [RULE] message` display form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// The full result of a workspace scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Report schema identifier.
    pub schema: String,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of allow annotations that suppressed a finding.
    pub allows_used: usize,
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Finding count per rule id (only rules with hits).
    pub by_rule: BTreeMap<String, usize>,
}

impl LintReport {
    /// Assemble a report from per-file findings (already allow-filtered).
    pub fn new(files_scanned: usize, allows_used: usize, mut findings: Vec<Finding>) -> LintReport {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        let mut by_rule: BTreeMap<String, usize> = BTreeMap::new();
        for f in &findings {
            *by_rule.entry(f.rule.clone()).or_insert(0) += 1;
        }
        LintReport {
            schema: "itm-lint/1".to_string(),
            files_scanned,
            allows_used,
            findings,
            by_rule,
        }
    }

    /// Is the tree clean?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Compare against a committed baseline report.
    ///
    /// Finding identity is the `(rule, file, snippet)` triple — line
    /// numbers shift on every unrelated edit, the flagged source line
    /// does not — and matching is multiset-style: a baseline entry
    /// absorbs at most one current finding, so *adding a second copy* of
    /// a baselined violation still counts as new.
    pub fn diff(&self, baseline: &LintReport) -> LintDiff {
        let mut pool: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        for b in &baseline.findings {
            *pool
                .entry((b.rule.as_str(), b.file.as_str(), b.snippet.as_str()))
                .or_insert(0) += 1;
        }
        let mut new = Vec::new();
        for f in &self.findings {
            match pool.get_mut(&(f.rule.as_str(), f.file.as_str(), f.snippet.as_str())) {
                Some(n) if *n > 0 => *n -= 1,
                _ => new.push(f.clone()),
            }
        }
        let matched = self.findings.len() - new.len();
        LintDiff {
            schema: "itm-lint-diff/1".to_string(),
            baseline_findings: baseline.findings.len(),
            current_findings: self.findings.len(),
            resolved: baseline.findings.len() - matched,
            new,
        }
    }

    /// Human-readable multi-line summary (one block per finding plus a
    /// one-line tally).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        let tally: Vec<String> = self
            .by_rule
            .iter()
            .map(|(r, n)| format!("{r}×{n}"))
            .collect();
        if self.is_clean() {
            out.push_str(&format!(
                "itm-lint: clean — {} files scanned, {} allow annotation(s) in use\n",
                self.files_scanned, self.allows_used
            ));
        } else {
            out.push_str(&format!(
                "itm-lint: {} finding(s) [{}] across {} files ({} allows in use)\n",
                self.findings.len(),
                tally.join(", "),
                self.files_scanned,
                self.allows_used
            ));
        }
        out
    }
}

/// Result of comparing a scan against a committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiff {
    /// Diff schema identifier.
    pub schema: String,
    /// Finding count in the baseline report.
    pub baseline_findings: usize,
    /// Finding count in the current scan.
    pub current_findings: usize,
    /// Baseline findings no longer present (fixed or moved).
    pub resolved: usize,
    /// Findings not present in the baseline — the only thing that gates.
    pub new: Vec<Finding>,
}

impl LintDiff {
    /// Does the scan introduce anything the baseline does not waive?
    pub fn is_clean(&self) -> bool {
        self.new.is_empty()
    }

    /// Human-readable diff summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.new {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "itm-lint: {} new finding(s) vs baseline ({} baselined, {} resolved)\n",
            self.new.len(),
            self.baseline_findings,
            self.resolved
        ));
        out
    }
}

impl serde_json::Serialize for LintDiff {
    fn to_json_value(&self) -> serde_json::Value {
        use serde_json::Value;
        serde_json::json!({
            "schema": (self.schema.clone()),
            "baseline_findings": (self.baseline_findings),
            "current_findings": (self.current_findings),
            "resolved": (self.resolved),
            "new": (Value::Array(
                self.new
                    .iter()
                    .map(|f| {
                        serde_json::json!({
                            "rule": (f.rule.clone()),
                            "file": (f.file.clone()),
                            "line": (f.line as u64),
                            "message": (f.message.clone()),
                            "snippet": (f.snippet.clone()),
                        })
                    })
                    .collect(),
            )),
        })
    }
}

impl serde_json::Serialize for LintReport {
    fn to_json_value(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        serde_json::json!({
            "schema": (self.schema.clone()),
            "files_scanned": (self.files_scanned),
            "allows_used": (self.allows_used),
            "by_rule": (Value::Object(
                self.by_rule
                    .iter()
                    .map(|(r, n)| (r.clone(), Value::from(*n)))
                    .collect::<Map>(),
            )),
            "findings": (Value::Array(
                self.findings
                    .iter()
                    .map(|f| {
                        serde_json::json!({
                            "rule": (f.rule.clone()),
                            "file": (f.file.clone()),
                            "line": (f.line as u64),
                            "message": (f.message.clone()),
                            "snippet": (f.snippet.clone()),
                        })
                    })
                    .collect(),
            )),
        })
    }
}

impl serde_json::Deserialize for LintReport {
    fn from_json_value(v: &serde_json::Value) -> Result<LintReport, serde_json::Error> {
        use serde_json::{Error, Value};
        let field = |name: &str| -> Result<&Value, Error> {
            v.get(name)
                .ok_or_else(|| Error::new(format!("LintReport: missing field `{name}`")))
        };
        let uint = |name: &str| -> Result<u64, Error> {
            field(name)?
                .as_u64()
                .ok_or_else(|| Error::new(format!("{name}: expected integer")))
        };
        let text = |val: &Value, what: &str| -> Result<String, Error> {
            val.as_str()
                .map(str::to_string)
                .ok_or_else(|| Error::new(format!("{what}: expected string")))
        };
        let findings = match field("findings")? {
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let get = |name: &str| -> Result<&Value, Error> {
                        item.get(name)
                            .ok_or_else(|| Error::new(format!("finding: missing `{name}`")))
                    };
                    Ok(Finding {
                        rule: text(get("rule")?, "rule")?,
                        file: text(get("file")?, "file")?,
                        line: get("line")?
                            .as_u64()
                            .ok_or_else(|| Error::new("line: expected integer"))?
                            as u32,
                        message: text(get("message")?, "message")?,
                        snippet: text(get("snippet")?, "snippet")?,
                    })
                })
                .collect::<Result<Vec<Finding>, Error>>()?,
            _ => return Err(Error::new("findings: expected array")),
        };
        let by_rule = match field("by_rule")? {
            Value::Object(m) => m
                .iter()
                .map(|(k, val)| {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| Error::new("by_rule: expected integer"))?;
                    Ok((k.clone(), n as usize))
                })
                .collect::<Result<BTreeMap<String, usize>, Error>>()?,
            _ => return Err(Error::new("by_rule: expected object")),
        };
        Ok(LintReport {
            schema: text(field("schema")?, "schema")?,
            files_scanned: uint("files_scanned")? as usize,
            allows_used: uint("allows_used")? as usize,
            findings,
            by_rule,
        })
    }
}
