//! `itm-lint` — the workspace determinism & panic-safety analyzer.
//!
//! The traffic map's headline correctness property is determinism: same
//! seed, same substrate, same bytes out. That property used to be guarded
//! only by two integration tests; this crate enforces it statically. An
//! offline, dependency-free lexer + rule engine scans every workspace
//! source file for the constructs that historically break it:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D001 | no wall-clock in library crates (virtual time only) |
//! | D002 | no unseeded randomness (everything flows from the seed) |
//! | D003 | no `HashMap`/`HashSet` in serialized types (hash order leaks) |
//! | P001 | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | F001 | no float `==`/`!=` (exact equality is fragile) |
//!
//! A violation that is genuinely sound is waived in place with
//! `// itm-lint: allow(RULE): <reason>`; the reason is mandatory (A001)
//! and an allow that suppresses nothing is itself an error (A002), so the
//! escape hatch cannot rot.
//!
//! Run it with `cargo run -p itm-lint`; the self-test in
//! `tests/self_check.rs` runs the same scan, so `cargo test` fails on any
//! unallowed finding too.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{Finding, LintReport};
pub use rules::FileClass;

use std::fs;
use std::io;
use std::path::Path;

/// Scan one in-memory source file under a given class.
///
/// Returns the surviving findings (allow annotations already applied) and
/// the number of allows that suppressed something.
pub fn scan_source(src: &str, class: FileClass, rel_path: &str) -> (Vec<Finding>, usize) {
    let model = lexer::lex(src);
    let (allows, _) = count_allows(&model);
    let findings = rules::check(&model, class, rel_path);
    // Allows-in-use = total well-formed allows minus the ones reported
    // unused (A002) for this file.
    let unused = findings.iter().filter(|f| f.rule == "A002").count();
    (findings, allows.saturating_sub(unused))
}

fn count_allows(model: &lexer::SourceModel) -> (usize, usize) {
    let mut well_formed = 0;
    for comment in &model.comments {
        let content = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
        if let Some(rest) = content.strip_prefix("itm-lint:") {
            let rest = rest.trim();
            if let Some(args) = rest.strip_prefix("allow(") {
                if let Some(close) = args.find(')') {
                    let rule = args[..close].trim();
                    let reason_ok = args[close + 1..]
                        .trim_start()
                        .strip_prefix(':')
                        .map(|r| !r.trim().is_empty())
                        .unwrap_or(false);
                    if rules::allowable_rule(rule) && reason_ok {
                        well_formed += 1;
                    }
                }
            }
        }
    }
    (well_formed, 0)
}

/// Scan a whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::collect(root)?;
    let mut findings = Vec::new();
    let mut allows_used = 0usize;
    let n = files.len();
    for f in &files {
        let src = fs::read_to_string(&f.path)?;
        let (mut file_findings, used) = scan_source(&src, f.class, &f.rel);
        allows_used += used;
        findings.append(&mut file_findings);
    }
    Ok(LintReport::new(n, allows_used, findings))
}
