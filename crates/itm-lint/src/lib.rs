//! `itm-lint` — the workspace determinism, panic-safety & scale analyzer.
//!
//! The traffic map's headline correctness property is determinism: same
//! seed, same substrate, same bytes out. Its headline scaling property is
//! that hot per-prefix state must stay dense and interned or the
//! `--size internet` target dies on memory. Both used to be guarded only
//! by integration tests; this crate enforces them statically. An offline,
//! dependency-free lexer + symbol layer + rule engine scans every
//! workspace source file for the constructs that historically break them:
//!
//! | family | invariant |
//! |--------|-----------|
//! | D001–D005 | determinism: no wall clock, unseeded RNG, hash-ordered serialization, stray threads, raw allocator |
//! | P001 | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | F001 | no float `==`/`!=` |
//! | M001–M004 | memory/scale: no per-item owned copies, string-keyed hot maps, merge-time sorts, shard-loop allocation |
//! | C001–C002 | shard safety: no shared mutable capture, no hash-order flows |
//! | L001 | crate dependencies follow the `lint_layers.toml` DAG |
//!
//! The D/P/F families are line-level; the M/C/L families run on a
//! cross-file symbol table ([`symbols`]) that knows which fns are
//! campaign shards, which are merges, and which structs sit on the hot
//! path.
//!
//! A violation that is genuinely sound is waived in place with
//! `// itm-lint: allow(RULE): <reason>`; the reason is mandatory (A001)
//! and an allow that suppresses nothing is itself an error (A002), so the
//! escape hatch cannot rot.
//!
//! Run it with `cargo run -p itm-lint`; the self-test in
//! `tests/self_check.rs` runs the same scan, so `cargo test` fails on any
//! unallowed finding too. CI gates on `--baseline
//! results/lint_baseline.json`: only *new* findings (relative to the
//! committed baseline) fail the build.

pub mod layers;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scale;
pub mod symbols;
pub mod walk;

pub use report::{Finding, LintDiff, LintReport};
pub use rules::FileClass;

use std::fs;
use std::io;
use std::path::Path;

/// Scan one in-memory source file under a given class.
///
/// A single-file symbol table is built on the fly, so the M/C rule
/// families see campaign fns and hot structs declared in the same file;
/// L001 needs workspace context (`lint_layers.toml`) and only runs in
/// [`scan_workspace`].
///
/// Returns the surviving findings (allow annotations already applied) and
/// the number of allows that suppressed something.
pub fn scan_source(src: &str, class: FileClass, rel_path: &str) -> (Vec<Finding>, usize) {
    let model = lexer::lex(src);
    let table = symbols::SymbolTable::build(&[rel_path], &[&model]);
    let ctx = scale::Context {
        syms: &table.files[0],
        hot_structs: &table.hot_structs,
        layers: None,
    };
    let (allows, _) = count_allows(&model);
    let findings = rules::check(&model, class, rel_path, Some(&ctx));
    // Allows-in-use = total well-formed allows minus the ones reported
    // unused (A002) for this file.
    let unused = findings.iter().filter(|f| f.rule == "A002").count();
    (findings, allows.saturating_sub(unused))
}

fn count_allows(model: &lexer::SourceModel) -> (usize, usize) {
    let mut well_formed = 0;
    for comment in &model.comments {
        let content = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
        if let Some(rest) = content.strip_prefix("itm-lint:") {
            let rest = rest.trim();
            if let Some(args) = rest.strip_prefix("allow(") {
                if let Some(close) = args.find(')') {
                    let rule = args[..close].trim();
                    let reason_ok = args[close + 1..]
                        .trim_start()
                        .strip_prefix(':')
                        .map(|r| !r.trim().is_empty())
                        .unwrap_or(false);
                    if rules::allowable_rule(rule) && reason_ok {
                        well_formed += 1;
                    }
                }
            }
        }
    }
    (well_formed, 0)
}

/// Scan a whole workspace rooted at `root`.
///
/// Two passes: every file is lexed and fed to the cross-file symbol
/// table (campaign fns, hot structs, crate use-graph), then each file is
/// checked with that context plus the `lint_layers.toml` DAG when one is
/// present at the root.
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::collect(root)?;
    let mut models = Vec::with_capacity(files.len());
    for f in &files {
        let src = fs::read_to_string(&f.path)?;
        models.push(lexer::lex(&src));
    }
    let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
    let model_refs: Vec<&lexer::SourceModel> = models.iter().collect();
    let table = symbols::SymbolTable::build(&rels, &model_refs);
    let layers =
        layers::Layers::load(root).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    let mut findings = Vec::new();
    let mut allows_used = 0usize;
    for (i, f) in files.iter().enumerate() {
        let ctx = scale::Context {
            syms: &table.files[i],
            hot_structs: &table.hot_structs,
            layers: layers.as_ref(),
        };
        let mut file_findings = rules::check(&models[i], f.class, &f.rel, Some(&ctx));
        let (allows, _) = count_allows(&models[i]);
        let unused = file_findings.iter().filter(|x| x.rule == "A002").count();
        allows_used += allows.saturating_sub(unused);
        findings.append(&mut file_findings);
    }
    Ok(LintReport::new(files.len(), allows_used, findings))
}
