//! Lightweight cross-file symbol layer for the scale/shard rules.
//!
//! This is still not a Rust parser: it walks the token stream from
//! [`crate::lexer`] and recovers just enough structure for the M/C/L rule
//! families to reason about *context* instead of single lines:
//!
//! * every `fn` with its brace-matched body token range, the loop bodies
//!   inside it, and the `if …trace… { … }` blocks (trace-gated work is
//!   exempt from the per-item allocation rule — it only runs when capture
//!   is on);
//! * every `struct` with its `BTreeMap`/`BTreeSet` fields whose key type
//!   is `String` / `Vec<String>` (the interning forcing function);
//! * the file's crate (from its workspace-relative path) and its
//!   use-graph: every `itm_*::` path reference with the line it occurs on
//!   (feeds the crate dependency graph for L001).
//!
//! Two derived classifications drive the rules:
//!
//! * a **campaign fn** produces per-shard state: its name ends in
//!   `_shard`, or its body mentions `shard_bounds`;
//! * a **merge fn** combines shard results: its body calls the
//!   `run_shards` closure (the campaign-runner convention used by every
//!   measurement crate).
//!
//! A **hot-path struct** is any struct whose name is referenced inside a
//! campaign or merge fn body anywhere in the scanned set — those are the
//! types that scale with prefixes × services and must not carry owned
//! `String` keys (M002).

use crate::lexer::{SourceModel, TokKind};
use std::collections::BTreeSet;

/// One function with the context the rules need.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, `[start, end)` (braces included).
    pub body: (usize, usize),
    /// Produces per-shard state (name ends `_shard`, or body uses
    /// `shard_bounds`).
    pub is_campaign: bool,
    /// Merges shard results (body calls the `run_shards` closure).
    pub is_merge: bool,
    /// Token-index ranges of `for`/`while`/`loop` bodies inside this fn.
    pub loops: Vec<(usize, usize)>,
    /// Token-index ranges of `if …trace… { … }` blocks (capture-gated).
    pub trace_gated: Vec<(usize, usize)>,
}

impl FnSym {
    /// Is token index `i` inside one of this fn's loop bodies?
    pub fn in_loop(&self, i: usize) -> bool {
        self.loops.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Is token index `i` inside a trace-gated block?
    pub fn in_trace_gated(&self, i: usize) -> bool {
        self.trace_gated.iter().any(|&(s, e)| i >= s && i < e)
    }
}

/// One struct declaration with its string-keyed ordered-map fields.
#[derive(Debug, Clone)]
pub struct StructSym {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// `(line, container, key-type)` for every `BTreeMap`/`BTreeSet`
    /// field keyed by `String` or `Vec<String>`.
    pub string_keyed: Vec<(u32, String, String)>,
}

/// Symbols of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Functions in declaration order.
    pub fns: Vec<FnSym>,
    /// Structs in declaration order.
    pub structs: Vec<StructSym>,
    /// Crate this file belongs to (`itm-types`, … or `itm` for the root
    /// package), when the path shape identifies one.
    pub crate_name: Option<String>,
    /// `(crate, line)` for each distinct `itm_*::` path reference — the
    /// file's edge list in the crate dependency graph.
    pub crate_refs: Vec<(String, u32)>,
}

/// Cross-file symbol table: per-file symbols plus the derived set of
/// hot-path struct names.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Per-file symbols, parallel to the scanned file list.
    pub files: Vec<FileSymbols>,
    /// Struct names referenced inside any campaign or merge fn.
    pub hot_structs: BTreeSet<String>,
}

impl SymbolTable {
    /// Build the table over a set of lexed files. `rels` and `models` are
    /// parallel; `rels` carries workspace-relative paths.
    pub fn build(rels: &[&str], models: &[&SourceModel]) -> SymbolTable {
        let mut files: Vec<FileSymbols> = rels
            .iter()
            .zip(models.iter())
            .map(|(rel, model)| analyze(model, rel))
            .collect();
        let struct_names: BTreeSet<String> = files
            .iter()
            .flat_map(|f| f.structs.iter().map(|s| s.name.clone()))
            .collect();
        let mut hot_structs = BTreeSet::new();
        for (fsyms, model) in files.iter_mut().zip(models.iter()) {
            for f in &fsyms.fns {
                if !(f.is_campaign || f.is_merge) {
                    continue;
                }
                for t in &model.tokens[f.body.0..f.body.1] {
                    if t.kind == TokKind::Ident && struct_names.contains(&t.text) {
                        hot_structs.insert(t.text.clone());
                    }
                }
            }
        }
        SymbolTable { files, hot_structs }
    }
}

/// Which crate does a workspace-relative path belong to?
pub fn crate_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        if rest.strip_prefix(name)?.starts_with('/') {
            return Some(name.to_string());
        }
        return None;
    }
    for top in ["src/", "tests/", "examples/", "benches/"] {
        if rel.starts_with(top) {
            return Some("itm".to_string());
        }
    }
    None
}

/// Analyze one lexed file.
pub fn analyze(model: &SourceModel, rel: &str) -> FileSymbols {
    let mut out = FileSymbols {
        crate_name: crate_of(rel),
        ..FileSymbols::default()
    };
    collect_fns(model, &mut out);
    collect_structs(model, &mut out);
    collect_crate_refs(model, &mut out);
    out
}

/// Find the matching `}` for the `{` at token index `open`. Returns the
/// index one past it (clamped to the stream end on imbalance).
fn match_braces(model: &SourceModel, open: usize) -> usize {
    let toks = &model.tokens;
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

fn collect_fns(model: &SourceModel, out: &mut FileSymbols) {
    let toks = &model.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body `{` at paren depth 0, or `;` for bodyless decls.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j.max(i + 2);
            continue;
        };
        let end = match_braces(model, open);
        let body = (open, end);
        let name = name_tok.text.clone();
        let mut is_campaign = name.ends_with("_shard");
        let mut is_merge = false;
        for t in &toks[open..end] {
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "shard_bounds" => is_campaign = true,
                    "run_shards" => is_merge = true,
                    _ => {}
                }
            }
        }
        let loops = collect_scopes(model, body, &["for", "while", "loop"], &[]);
        let trace_gated = collect_scopes(model, body, &["if"], &["trace", "trace_enabled"]);
        out.fns.push(FnSym {
            name,
            line: toks[i].line,
            body,
            is_campaign,
            is_merge,
            loops,
            trace_gated,
        });
        // Continue *inside* the body so nested fns are collected too.
        i += 2;
    }
}

/// Collect brace-matched scopes opened by `keywords` inside `range`. When
/// `guard_idents` is non-empty, only scopes whose header (tokens between
/// the keyword and the opening brace) mentions one of those identifiers
/// qualify — this is how trace-gated `if` blocks are recognized.
fn collect_scopes(
    model: &SourceModel,
    range: (usize, usize),
    keywords: &[&str],
    guard_idents: &[&str],
) -> Vec<(usize, usize)> {
    let toks = &model.tokens;
    let mut scopes = Vec::new();
    let mut i = range.0;
    while i < range.1 {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !keywords.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Header runs to the first `{` at paren depth 0.
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut guard_hit = guard_idents.is_empty();
        while j < range.1 {
            match toks[j].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren <= 0 => break,
                ";" if paren <= 0 => break,
                text => {
                    if toks[j].kind == TokKind::Ident && guard_idents.contains(&text) {
                        guard_hit = true;
                    }
                }
            }
            j += 1;
        }
        if j >= range.1 || toks[j].text != "{" {
            i = j;
            continue;
        }
        let end = match_braces(model, j).min(range.1);
        if guard_hit {
            scopes.push((j, end));
        }
        i = j + 1;
    }
    scopes
}

fn collect_structs(model: &SourceModel, out: &mut FileSymbols) {
    let toks = &model.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "struct" {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Field-carrying structs only: the next `{` before any `;` / `(`
        // opens the field block (unit and tuple structs have no named
        // string-keyed map fields to inspect).
        let mut j = i + 2;
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    body_open = Some(j);
                    break;
                }
                ";" | "(" => break,
                _ => {}
            }
            j += 1;
        }
        let mut sym = StructSym {
            name: name_tok.text.clone(),
            line: toks[i].line,
            string_keyed: Vec::new(),
        };
        if let Some(open) = body_open {
            let end = match_braces(model, open);
            let mut k = open;
            while k < end {
                let t = &toks[k];
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "BTreeMap" | "BTreeSet")
                    && toks.get(k + 1).map(|x| x.text.as_str()) == Some("<")
                {
                    let key = string_key_type(model, k + 2);
                    if let Some(desc) = key {
                        sym.string_keyed.push((t.line, t.text.clone(), desc));
                    }
                }
                k += 1;
            }
            i = end;
        } else {
            i = j;
        }
        out.structs.push(sym);
    }
}

/// Does the type starting at token index `i` begin with `String` or
/// `Vec<String…`? Returns its display form when it does.
fn string_key_type(model: &SourceModel, i: usize) -> Option<String> {
    let toks = &model.tokens;
    let first = toks.get(i)?;
    if first.kind != TokKind::Ident {
        return None;
    }
    match first.text.as_str() {
        "String" => Some("String".to_string()),
        "Vec" => {
            if toks.get(i + 1).map(|t| t.text.as_str()) == Some("<")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some("String")
            {
                Some("Vec<String>".to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

fn collect_crate_refs(model: &SourceModel, out: &mut FileSymbols) {
    let toks = &model.tokens;
    let mut seen = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !t.text.starts_with("itm_") {
            continue;
        }
        if toks.get(i + 1).map(|x| x.text.as_str()) != Some("::") {
            continue;
        }
        let name = t.text.replace('_', "-");
        if seen.insert((name.clone(), t.line)) {
            out.crate_refs.push((name, t.line));
        }
    }
}
