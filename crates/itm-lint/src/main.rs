//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p itm-lint [-- --root PATH] [--json PATH] [--no-json]
//!                       [--baseline FILE | --diff] [--list-rules] [-q]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or, in baseline mode, *new* findings
//! vs the baseline), 2 usage or I/O error.

use itm_lint::LintReport;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: itm-lint [--root PATH] [--json PATH] [--no-json] [--baseline FILE] [--diff] [--list-rules] [-q]
  --root PATH      workspace root to scan (default: nearest ancestor with [workspace])
  --json PATH      where to write the JSON report (default: <root>/results/lint_report.json)
  --no-json        skip the JSON report
  --baseline FILE  gate on NEW findings only, vs a committed baseline report
  --diff           shorthand for --baseline <root>/results/lint_baseline.json
  --list-rules     print the rule set and exit
  -q, --quiet      suppress per-finding output (summary line only)";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_json = true;
    let mut quiet = false;
    let mut baseline: Option<PathBuf> = None;
    let mut diff_default = false;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--no-json" => write_json = false,
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a file"),
            },
            "--diff" => diff_default = true,
            "--list-rules" => {
                for (id, desc) in itm_lint::rules::RULES {
                    println!("{id}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if baseline.is_some() && diff_default {
        return usage_error("--baseline and --diff are mutually exclusive");
    }

    let root = match root {
        Some(r) => {
            // A root that does not exist (or is a file) is an argument
            // error, not a scan failure: fail fast with usage.
            if !r.is_dir() {
                return usage_error(&format!("--root `{}` is not a directory", r.display()));
            }
            r
        }
        None => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => return io_error(&format!("cannot determine working directory: {e}")),
            };
            match itm_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return io_error("no [workspace] Cargo.toml above the working directory"),
            }
        }
    };
    if diff_default {
        baseline = Some(root.join("results").join("lint_baseline.json"));
    }

    let report = match itm_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => return io_error(&format!("scan failed: {e}")),
    };

    let results_dir = root.join("results");
    if write_json {
        let path = json_path.unwrap_or_else(|| results_dir.join("lint_report.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                return io_error(&format!("cannot create {}: {e}", dir.display()));
            }
        }
        let json = match serde_json::to_string_pretty(&report) {
            Ok(j) => j,
            Err(e) => return io_error(&format!("report serialization failed: {e}")),
        };
        if let Err(e) = fs::write(&path, json) {
            return io_error(&format!("cannot write {}: {e}", path.display()));
        }
        if !quiet {
            eprintln!("itm-lint: report written to {}", path.display());
        }
    }

    // Baseline mode: only findings absent from the committed baseline
    // gate; the full report above is still written for artifact upload.
    if let Some(baseline_path) = baseline {
        let text = match fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                return io_error(&format!(
                    "cannot read baseline {}: {e}",
                    baseline_path.display()
                ))
            }
        };
        let base: LintReport = match serde_json::from_str(&text) {
            Ok(r) => r,
            Err(e) => {
                return io_error(&format!("baseline {}: {e}", baseline_path.display()));
            }
        };
        let diff = report.diff(&base);
        if write_json {
            let diff_path = results_dir.join("lint_diff.json");
            match serde_json::to_string_pretty(&diff) {
                Ok(j) => {
                    let _ = fs::create_dir_all(&results_dir);
                    if let Err(e) = fs::write(&diff_path, j) {
                        return io_error(&format!("cannot write {}: {e}", diff_path.display()));
                    }
                    if !quiet {
                        eprintln!("itm-lint: diff written to {}", diff_path.display());
                    }
                }
                Err(e) => return io_error(&format!("diff serialization failed: {e}")),
            }
        }
        if quiet {
            if let Some(summary) = diff.render().lines().last() {
                println!("{summary}");
            }
        } else {
            print!("{}", diff.render());
        }
        return if diff.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if quiet {
        let last = report.render();
        if let Some(summary) = last.lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{}", report.render());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("itm-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("itm-lint: {msg}");
    ExitCode::from(2)
}
