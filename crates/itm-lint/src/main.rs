//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p itm-lint [-- --root PATH] [--json PATH] [--no-json] [--list-rules] [-q]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: itm-lint [--root PATH] [--json PATH] [--no-json] [--list-rules] [-q]
  --root PATH    workspace root to scan (default: nearest ancestor with [workspace])
  --json PATH    where to write the JSON report (default: <root>/results/lint_report.json)
  --no-json      skip the JSON report
  --list-rules   print the rule set and exit
  -q, --quiet    suppress per-finding output (summary line only)";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_json = true;
    let mut quiet = false;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--no-json" => write_json = false,
            "--list-rules" => {
                for (id, desc) in itm_lint::rules::RULES {
                    println!("{id}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => return io_error(&format!("cannot determine working directory: {e}")),
            };
            match itm_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return io_error("no [workspace] Cargo.toml above the working directory"),
            }
        }
    };

    let report = match itm_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => return io_error(&format!("scan failed: {e}")),
    };

    if write_json {
        let path = json_path.unwrap_or_else(|| root.join("results").join("lint_report.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                return io_error(&format!("cannot create {}: {e}", dir.display()));
            }
        }
        let json = match serde_json::to_string_pretty(&report) {
            Ok(j) => j,
            Err(e) => return io_error(&format!("report serialization failed: {e}")),
        };
        if let Err(e) = fs::write(&path, json) {
            return io_error(&format!("cannot write {}: {e}", path.display()));
        }
        if !quiet {
            eprintln!("itm-lint: report written to {}", path.display());
        }
    }

    if quiet {
        let last = report.render();
        if let Some(summary) = last.lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{}", report.render());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("itm-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("itm-lint: {msg}");
    ExitCode::from(2)
}
