//! Line-level Rust lexer for the lint rules.
//!
//! This is deliberately *not* a full Rust parser. The rules in
//! [`crate::rules`] only need three things, all of which a lightweight
//! single-pass lexer can supply reliably:
//!
//! 1. a token stream (identifiers, numeric literals, multi-char operators)
//!    with comment bodies and string contents stripped, so `// unwrap()` in
//!    prose or `"panic!"` in a message never trips a rule;
//! 2. the comment text of every line, so `// itm-lint: allow(...)`
//!    annotations can be recovered;
//! 3. which lines belong to `#[cfg(test)]` / `#[test]` / `#[bench]` items,
//!    so the panic-safety rules exempt test code.
//!
//! The lexer handles line comments, nested block comments, string / raw
//! string / char / byte-string literals, and lifetime ticks. It does not
//! attempt macro expansion or type resolution — rules that need type
//! information (D003) work from declaration syntax instead.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
}

/// Coarse token classification — only what the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal that is lexically a float (`1.0`, `2e5`, `3f64`).
    Float,
    /// Any other numeric literal.
    Int,
    /// Operator or punctuation (multi-char ops like `==`, `::` are fused).
    Punct,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct SourceModel {
    /// Token stream with comments and string contents removed.
    pub tokens: Vec<Token>,
    /// Raw text of every line (for finding snippets), 0-indexed.
    pub raw_lines: Vec<String>,
    /// Concatenated comment text per line (empty when none), 0-indexed.
    pub comments: Vec<String>,
    /// Per line: does it carry at least one code token?
    pub has_code: Vec<bool>,
    /// Per line: is it inside a `#[cfg(test)]` / `#[test]` / `#[bench]` item?
    pub is_test: Vec<bool>,
}

impl SourceModel {
    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.raw_lines.len()
    }

    /// Trimmed snippet of a 1-based line, for finding display.
    pub fn snippet(&self, line: u32) -> String {
        self.raw_lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Whether a 1-based line sits in test-only code.
    pub fn line_is_test(&self, line: u32) -> bool {
        self.is_test
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }
}

/// Lex a whole file.
pub fn lex(src: &str) -> SourceModel {
    let raw_lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let n = raw_lines.len();
    let mut model = SourceModel {
        tokens: Vec::new(),
        raw_lines,
        comments: vec![String::new(); n],
        has_code: vec![false; n],
        is_test: vec![false; n],
    };
    let cleaned = strip_comments_and_strings(src, &mut model.comments);
    tokenize(&cleaned, &mut model);
    mark_test_regions(&mut model);
    model
}

/// Replace comment bodies and string/char contents with spaces (preserving
/// line structure), collecting comment text per line on the way.
fn strip_comments_and_strings(src: &str, comments: &mut [String]) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut line = 0usize;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        match st {
            St::Code => match c {
                '/' if next == '/' => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == '*' => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // r"..", b"..", br"..", r#".."#, etc.: emit the prefix
                    // (letters + hashes + opening quote) verbatim, then
                    // blank the body until the matching close.
                    let mut j = i;
                    while matches!(chars.get(j), Some('r') | Some('b')) {
                        out.push(chars[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        out.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    debug_assert_eq!(chars.get(j), Some(&'"'));
                    out.push('"');
                    if hashes == 0 && chars[i..j].iter().all(|&p| p == 'b') {
                        st = St::Str; // plain byte string: ordinary escapes
                    } else {
                        st = St::RawStr(hashes);
                    }
                    i = j + 1;
                    continue;
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`): a lifetime is
                    // `'` + ident not followed by a closing quote.
                    let is_lifetime = next.is_alphabetic() || next == '_';
                    let closes = chars.get(i + 2) == Some(&'\'');
                    if is_lifetime && !closes {
                        out.push(' '); // drop the tick, keep the ident
                    } else {
                        st = St::Char;
                        out.push('\'');
                    }
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                    line += 1;
                } else {
                    if let Some(slot) = comments.get_mut(line) {
                        slot.push(c);
                    }
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == '*' {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    if let Some(slot) = comments.get_mut(line) {
                        slot.push(c);
                    }
                    out.push(' ');
                }
            }
            St::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    if next == '\n' {
                        line += 1;
                        // keep line structure for the escape-newline case
                        out.pop();
                        out.pop();
                        out.push(' ');
                        out.push('\n');
                    }
                    continue;
                }
                '"' => {
                    st = St::Code;
                    out.push('"');
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(' '),
            },
            St::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    st = St::Code;
                    i += 1 + hashes as usize;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    out.push(' ');
                }
            }
            St::Char => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    st = St::Code;
                    out.push('\'');
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Is `chars[i]` the start of a raw/byte string prefix (`r"`, `r#`, `br"`,
/// `rb"`, `b"`)?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Not a prefix if glued to a preceding ident char (e.g. `hear"..` can't
    // happen, but `var` endings like `xr` followed by `"` could).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    while j < chars.len() {
        match chars[j] {
            'r' | 'b' if j - i < 2 => j += 1,
            '#' => j += 1,
            '"' => return j > i, // at least one prefix char consumed
            _ => return false,
        }
    }
    false
}

/// Does the `"` at `chars[i]` close a raw string with `hashes` hashes?
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if chars.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}

/// Tokenize cleaned source (comments/strings already blanked).
fn tokenize(cleaned: &str, model: &mut SourceModel) {
    for (idx, line) in cleaned.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                push_token(
                    model,
                    lineno,
                    TokKind::Ident,
                    chars[start..i].iter().collect(),
                );
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                let mut is_float = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && chars
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                            .unwrap_or(false)
                        && i > start
                    {
                        is_float = true;
                        i += 2;
                    } else if d.is_alphanumeric() {
                        // suffix: f32/f64 force float, u32 etc. stay int
                        let suffix_start = i;
                        while i < chars.len() && chars[i].is_alphanumeric() {
                            i += 1;
                        }
                        let suffix: String = chars[suffix_start..i].iter().collect();
                        if suffix == "f32" || suffix == "f64" {
                            is_float = true;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                let kind = if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
                push_token(model, lineno, kind, chars[start..i].iter().collect());
                continue;
            }
            // Punctuation: fuse the two-char operators the rules care about.
            let next = chars.get(i + 1).copied().unwrap_or('\0');
            let fused = matches!(
                (c, next),
                ('=', '=') | ('!', '=') | (':', ':') | ('-', '>') | ('=', '>') | ('.', '.')
            );
            if fused {
                push_token(model, lineno, TokKind::Punct, format!("{c}{next}"));
                i += 2;
            } else {
                push_token(model, lineno, TokKind::Punct, c.to_string());
                i += 1;
            }
        }
    }
}

fn push_token(model: &mut SourceModel, line: u32, kind: TokKind, text: String) {
    if let Some(slot) = model.has_code.get_mut(line as usize - 1) {
        *slot = true;
    }
    model.tokens.push(Token { line, kind, text });
}

/// Mark every line inside a `#[cfg(test)]`, `#[test]`, or `#[bench]` item
/// as test code. Works on the token stream: after such an attribute, skip
/// any further attributes, then extend the region to the matching close
/// brace of the item body (or to the end of a `;`-terminated item).
fn mark_test_regions(model: &mut SourceModel) {
    let toks = &model.tokens;
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (attr_end, is_test_attr) = scan_attribute(toks, i);
            if is_test_attr {
                // Skip trailing attributes before the item itself.
                let mut j = attr_end;
                while j < toks.len()
                    && toks[j].text == "#"
                    && toks.get(j + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    let (end, _) = scan_attribute(toks, j);
                    j = end;
                }
                // Find the item body: first `{` before a top-level `;`.
                let mut depth = 0i32;
                let mut k = j;
                let mut opened = false;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            depth += 1;
                            opened = true;
                        }
                        "}" => {
                            depth -= 1;
                            if opened && depth == 0 {
                                regions.push((toks[i].line, toks[k].line));
                                break;
                            }
                        }
                        ";" if !opened => {
                            regions.push((toks[i].line, toks[k].line));
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k.max(attr_end);
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    for (from, to) in regions {
        for l in from..=to {
            if let Some(slot) = model.is_test.get_mut(l as usize - 1) {
                *slot = true;
            }
        }
    }
}

/// Scan `#[...]` starting at token `i` (`#`). Returns (index one past the
/// closing `]`, attribute-is-test-related).
fn scan_attribute(toks: &[Token], i: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut is_test = false;
    let mut saw_cfg = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 && t.text == "]" {
                    return (j + 1, is_test);
                }
            }
            "cfg" => saw_cfg = true,
            "test" if saw_cfg => is_test = true,
            // `#[test]` / `#[bench]` directly
            "test" | "bench" if depth == 1 && j == i + 2 => is_test = true,
            _ => {}
        }
        j += 1;
    }
    (j, is_test)
}
