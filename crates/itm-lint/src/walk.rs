//! Workspace file discovery and classification.
//!
//! The walk is deterministic (directory entries sorted by name) and
//! self-contained: `target/`, hidden directories, and the linter's own
//! violation fixtures are skipped; everything else ending in `.rs` is
//! classified by path shape.

use crate::rules::FileClass;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes (report key).
    pub rel: String,
    /// Which rules apply.
    pub class: FileClass,
}

/// Classify a workspace-relative path. `None` means "do not scan".
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    // Deliberate-violation fixtures for the linter's own tests.
    if rel.contains("tests/fixtures/") {
        return None;
    }
    if rel.starts_with("crates/shims/") {
        return Some(FileClass::Shim);
    }
    // Tooling crates and every non-library target: panics and wall-clock
    // are legitimate (a bench must read the clock; a binary may exit).
    let harness_crate = rel.starts_with("crates/itm-bench/") || rel.starts_with("crates/itm-lint/");
    let harness_dir = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/bin/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/");
    if harness_crate || harness_dir {
        return Some(FileClass::Harness);
    }
    Some(FileClass::Library)
}

/// Recursively collect every classifiable `.rs` file under `root`, sorted
/// by relative path.
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some(class) = classify(&rel) {
                out.push(SourceFile { path, rel, class });
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
