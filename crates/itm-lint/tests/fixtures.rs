//! Fixture-driven rule tests: each file under `tests/fixtures/` carries a
//! known set of violations; the assertions pin exact rule ids and line
//! numbers so a lexer or rule regression shows up as a diff here.

use itm_lint::{scan_source, FileClass, LintReport};
use std::fs;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// `(rule, line)` pairs of a scan, sorted.
fn hits(name: &str) -> (Vec<(String, u32)>, usize) {
    let src = fixture(name);
    let (findings, allows_used) = scan_source(&src, FileClass::Library, name);
    let mut pairs: Vec<(String, u32)> = findings.into_iter().map(|f| (f.rule, f.line)).collect();
    pairs.sort();
    (pairs, allows_used)
}

fn owned(pairs: &[(&str, u32)]) -> Vec<(String, u32)> {
    pairs.iter().map(|(r, l)| (r.to_string(), *l)).collect()
}

#[test]
fn d001_flags_wall_clock_but_not_in_tests() {
    let (pairs, _) = hits("d001.rs");
    assert_eq!(pairs, owned(&[("D001", 5), ("D001", 6)]));
}

#[test]
fn d002_flags_unseeded_randomness() {
    let (pairs, _) = hits("d002.rs");
    // line 2: the `thread_rng` import; line 5: the call; line 6: rand::random.
    assert_eq!(pairs, owned(&[("D002", 2), ("D002", 5), ("D002", 6)]));
}

#[test]
fn d003_flags_only_serialized_unordered_fields() {
    let (pairs, _) = hits("d003.rs");
    assert_eq!(pairs, owned(&[("D003", 7), ("D003", 8)]));
}

#[test]
fn d004_flags_thread_spawns_in_library_code() {
    let (pairs, _) = hits("d004.rs");
    assert_eq!(pairs, owned(&[("D004", 5), ("D004", 6), ("D004", 7)]));
}

#[test]
fn d004_is_silent_in_registered_executor_files() {
    let src = fixture("d004.rs");
    let (findings, _) = scan_source(&src, FileClass::Library, "crates/itm-core/src/exec.rs");
    assert!(
        findings.is_empty(),
        "the registered executor may spawn threads: {findings:?}"
    );
}

#[test]
fn d004_does_not_apply_to_harness_code() {
    let src = fixture("d004.rs");
    let (findings, _) = scan_source(&src, FileClass::Harness, "d004.rs");
    assert!(
        findings.is_empty(),
        "test/bench code may spawn threads: {findings:?}"
    );
}

#[test]
fn d005_flags_raw_allocator_access() {
    let (pairs, _) = hits("d005.rs");
    // line 2: the std::alloc import; 6: the GlobalAlloc impl; 8/11: direct
    // std::alloc calls; 15: the #[global_allocator] attribute.
    assert_eq!(
        pairs,
        owned(&[
            ("D005", 2),
            ("D005", 6),
            ("D005", 8),
            ("D005", 11),
            ("D005", 15),
        ])
    );
}

#[test]
fn d005_is_silent_in_the_registered_wrapper_file() {
    let src = fixture("d005.rs");
    let (findings, _) = scan_source(&src, FileClass::Library, "crates/itm-obs/src/alloc.rs");
    assert!(
        findings.is_empty(),
        "the tracking wrapper may touch the raw allocator: {findings:?}"
    );
}

#[test]
fn d005_does_not_apply_to_harness_code() {
    let src = fixture("d005.rs");
    let (findings, _) = scan_source(&src, FileClass::Harness, "d005.rs");
    assert!(
        findings.is_empty(),
        "binaries/benches/tests install the global allocator: {findings:?}"
    );
}

#[test]
fn p001_flags_panics_not_prose_or_tests() {
    let (pairs, _) = hits("p001.rs");
    assert_eq!(pairs, owned(&[("P001", 3), ("P001", 4), ("P001", 6)]));
}

#[test]
fn f001_flags_float_equality_only() {
    let (pairs, _) = hits("f001.rs");
    assert_eq!(pairs, owned(&[("F001", 3), ("F001", 6)]));
}

#[test]
fn valid_allows_suppress_and_are_counted() {
    let (pairs, allows_used) = hits("allow_ok.rs");
    assert_eq!(pairs, owned(&[]));
    assert_eq!(allows_used, 2);
}

#[test]
fn malformed_allows_are_findings_and_do_not_suppress() {
    let (pairs, allows_used) = hits("allow_bad.rs");
    assert_eq!(
        pairs,
        owned(&[("A001", 3), ("A001", 8), ("P001", 4), ("P001", 9)])
    );
    assert_eq!(allows_used, 0);
}

#[test]
fn unused_allows_are_flagged() {
    let (pairs, allows_used) = hits("allow_unused.rs");
    assert_eq!(pairs, owned(&[("A002", 3)]));
    assert_eq!(allows_used, 0);
}

#[test]
fn harness_class_skips_panic_and_clock_rules() {
    let src = fixture("d001.rs");
    let (findings, _) = scan_source(&src, FileClass::Harness, "d001.rs");
    assert!(findings.is_empty(), "harness files may read the clock");
    let src = fixture("p001.rs");
    let (findings, _) = scan_source(&src, FileClass::Harness, "p001.rs");
    assert!(findings.is_empty(), "harness files may panic");
    // …but unseeded randomness is never fine.
    let src = fixture("d002.rs");
    let (findings, _) = scan_source(&src, FileClass::Harness, "d002.rs");
    assert_eq!(findings.len(), 3);
}

#[test]
fn json_report_round_trips_through_the_shim() {
    let mut all = Vec::new();
    for name in ["d001.rs", "d003.rs", "p001.rs", "allow_bad.rs"] {
        let (findings, _) = scan_source(&fixture(name), FileClass::Library, name);
        all.extend(findings);
    }
    assert!(!all.is_empty());
    let report = LintReport::new(4, 0, all);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: LintReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(back, report);
    // Deterministic: serializing again is byte-identical.
    let json2 = serde_json::to_string_pretty(&back).expect("report serializes");
    assert_eq!(json, json2);
}

#[test]
fn m001_flags_owned_copies_only_in_campaign_loops() {
    let (pairs, _) = hits("m001.rs");
    // 6/7: clone + to_string in the shard loop. Line 16 (non-campaign fn)
    // and line 23 (merge fn, but outside a loop) stay silent.
    assert_eq!(pairs, owned(&[("M001", 6), ("M001", 7)]));
}

#[test]
fn m002_flags_string_keys_only_on_hot_structs() {
    let (pairs, _) = hits("m002.rs");
    // 6: BTreeMap<String, …>; 7: BTreeSet<Vec<String>>. The u32-keyed
    // field (8) and the cold struct (12) stay silent.
    assert_eq!(pairs, owned(&[("M002", 6), ("M002", 7)]));
}

#[test]
fn m003_flags_sorts_only_on_merge_paths() {
    let (pairs, _) = hits("m003.rs");
    assert_eq!(pairs, owned(&[("M003", 5)]));
}

#[test]
fn m004_flags_shard_loop_allocation_except_trace_gated() {
    let (pairs, _) = hits("m004.rs");
    // 6: format!; 7: vec!; 8: String::from. Line 11 is trace-gated and
    // line 20 sits in a non-shard fn.
    assert_eq!(pairs, owned(&[("M004", 6), ("M004", 7), ("M004", 8)]));
}

#[test]
fn c001_flags_shared_mutable_capture_in_executor_args() {
    let (pairs, _) = hits("c001.rs");
    // 6: .lock() in exec.map args; 11: &mut capture; 19: .lock() in a
    // run_with argument. The pure closure (15) stays silent.
    assert_eq!(pairs, owned(&[("C001", 6), ("C001", 11), ("C001", 19)]));
}

#[test]
fn c001_is_silent_in_the_registered_executor_file() {
    let src = fixture("c001.rs");
    let (findings, _) = scan_source(&src, FileClass::Library, "crates/itm-core/src/exec.rs");
    assert!(
        findings.is_empty(),
        "the executor owns its shared work-queue state: {findings:?}"
    );
}

#[test]
fn c002_flags_hash_iteration_only_on_campaign_or_serialized_flows() {
    let (pairs, _) = hits("c002.rs");
    // 11: HashMap iteration in a merge fn. The BTreeMap merge (22) and
    // the unserialized helper (31) stay silent.
    assert_eq!(pairs, owned(&[("C002", 11)]));
}

#[test]
fn scale_rules_do_not_apply_to_harness_or_shim_code() {
    for name in [
        "m001.rs", "m002.rs", "m003.rs", "m004.rs", "c001.rs", "c002.rs",
    ] {
        for class in [FileClass::Harness, FileClass::Shim] {
            let (findings, _) = scan_source(&fixture(name), class, name);
            assert!(
                findings.is_empty(),
                "{name} under {class:?} should be exempt: {findings:?}"
            );
        }
    }
}

#[test]
fn l001_flags_upward_crate_references_in_a_fixture_workspace() {
    let root = format!("{}/tests/fixtures/l001_ws", env!("CARGO_MANIFEST_DIR"));
    let report = itm_lint::scan_workspace(std::path::Path::new(&root)).expect("fixture scan");
    assert_eq!(report.files_scanned, 2);
    let pairs: Vec<(String, String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect();
    assert_eq!(
        pairs,
        vec![(
            "L001".to_string(),
            "crates/itm-types/src/lib.rs".to_string(),
            4
        )]
    );
}

#[test]
fn allow_of_one_rule_does_not_absorb_findings_of_another() {
    // Satellite: a `// itm-lint: allow(R1)` followed by findings of a
    // *different* rule on the covered line must keep those findings AND
    // still report A002 for the unused allow.
    let (pairs, allows_used) = hits("allow_multi.rs");
    // P001@7 survives the mismatched allow(D001); P001@13 is suppressed
    // by its matching allow(P001); the two non-matching allows are A002.
    assert_eq!(pairs, owned(&[("A002", 6), ("A002", 12), ("P001", 7)]));
    // Only the matching P001 allow is in use.
    assert_eq!(allows_used, 1);
}

#[test]
fn findings_are_sorted_deterministically() {
    let (findings, _) = scan_source(&fixture("d001.rs"), FileClass::Library, "d001.rs");
    let report = LintReport::new(1, 0, findings);
    let keys: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert_eq!(report.by_rule.get("D001"), Some(&2));
}
