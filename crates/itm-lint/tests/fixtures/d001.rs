// Fixture: D001 — wall-clock reads. Never compiled; scanned by tests only.
use std::time::{Instant, SystemTime};

pub fn stamp() -> bool {
    let t = Instant::now();
    let s = SystemTime::now();
    s.elapsed().is_ok() && t.elapsed().as_nanos() > 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn clock_in_test_code_is_fine() {
        let _ = std::time::Instant::now();
    }
}
