// Fixture: D003 — unordered collections in serialized types.
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exported {
    pub scores: HashMap<String, f64>,
    pub seen: HashSet<u32>,
    pub name: String,
}

pub struct Internal {
    // Not serialized: hash order never reaches an output byte.
    pub cache: HashMap<u64, u64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clean {
    pub totals: std::collections::BTreeMap<String, u64>,
}
