// Fixture: D005 — raw allocator access. Never compiled; scanned by tests only.
use std::alloc::Layout;

pub struct Shadow;

unsafe impl GlobalAlloc for Shadow {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        std::alloc::alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        std::alloc::dealloc(ptr, layout)
    }
}

#[global_allocator]
static A: Shadow = Shadow;

pub fn allocate(bytes: usize) -> usize {
    // A local merely *named* alloc is not the allocator.
    let alloc = bytes;
    alloc
}
