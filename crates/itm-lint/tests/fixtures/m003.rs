//! Deliberate M003 violation: materialize-then-sort at merge time.

pub fn merge(run_shards: &dyn Fn(usize) -> Vec<u32>) -> Vec<u32> {
    let mut all: Vec<u32> = (0..4).flat_map(|s| run_shards(s)).collect();
    all.sort_unstable();
    all
}

pub fn not_merge(xs: &mut Vec<u32>) {
    xs.sort();
}
