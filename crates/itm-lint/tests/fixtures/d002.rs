// Fixture: D002 — unseeded randomness. Never compiled; scanned by tests only.
use rand::{thread_rng, Rng};

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0) + rand::random::<f64>()
}

pub fn seeded(rng: &mut impl Rng) -> f64 {
    // A seeded generator passed in by the caller is fine.
    rng.gen_range(0.0..1.0)
}
