// Fixture: D004 — ad-hoc threads. Never compiled; scanned by tests only.
use std::thread;

pub fn fan_out() -> i32 {
    let h = thread::spawn(|| 1 + 1);
    thread::scope(|s| {
        s.spawn(|| ());
    });
    h.join().unwrap_or(0)
}

pub fn spawn(work: usize) -> usize {
    // A free function merely *named* `spawn` is not a thread spawn.
    work
}

pub fn dispatch() -> usize {
    spawn(3)
}
