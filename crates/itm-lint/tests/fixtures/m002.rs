//! Deliberate M002 violations: string-keyed ordered maps on hot structs.

use std::collections::{BTreeMap, BTreeSet};

pub struct HotFootprint {
    pub by_domain: BTreeMap<String, Vec<u32>>,
    pub tag_sets: BTreeSet<Vec<String>>,
    pub by_id: BTreeMap<u32, Vec<u32>>,
}

pub struct ColdConfig {
    pub labels: BTreeMap<String, String>,
}

pub fn build_shard(_n: usize) -> HotFootprint {
    HotFootprint {
        by_domain: BTreeMap::new(),
        tag_sets: BTreeSet::new(),
        by_id: BTreeMap::new(),
    }
}

pub fn cold_helper() -> usize {
    ColdConfig { labels: BTreeMap::new() }.labels.len()
}
