// Fixture: an allow that suppresses nothing is flagged.
pub fn tidy(v: &[u32]) -> u32 {
    // itm-lint: allow(D001): stale annotation left behind after a refactor
    v.iter().sum()
}
