//! Multi-rule-per-line allow behavior: an allow suppresses findings of
//! *its* rule on the covered line; other rules' findings on that line
//! neither consume the allow nor escape through it.

pub fn mismatched(v: Option<u32>) -> u32 {
    // itm-lint: allow(D001): wrong rule on purpose — the next line violates P001
    v.unwrap()
}

pub fn split(v: Option<u32>) -> u32 {
    // itm-lint: allow(P001): fixture — suppresses the unwrap below
    // itm-lint: allow(D002): fixture — nothing on that line violates D002
    v.unwrap()
}
