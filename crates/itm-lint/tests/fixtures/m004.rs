//! Deliberate M004 violations: per-item allocation in shard bodies.

pub fn probe_shard(lo: u32, hi: u32) -> Vec<String> {
    let mut out = Vec::new();
    for p in lo..hi {
        out.push(format!("p{p}"));
        let v = vec![p];
        let s = String::from("x");
        let _ = (v, s);
        if trace_enabled() {
            out.push(format!("trace p{p}"));
        }
    }
    out
}

pub fn plain_probe(lo: u32, hi: u32) -> Vec<String> {
    let mut out = Vec::new();
    for p in lo..hi {
        out.push(format!("p{p}"));
    }
    out
}
