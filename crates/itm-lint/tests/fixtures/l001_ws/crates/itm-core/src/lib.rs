//! Highest layer referencing downward — clean under L001.

pub fn answer() -> u32 {
    itm_types::SEED
}
