//! Lowest layer referencing upward — the L001 violation.

pub fn bad() -> u32 {
    itm_core::answer()
}
