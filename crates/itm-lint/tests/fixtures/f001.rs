// Fixture: F001 — float equality.
pub fn classify(x: f64, n: u32) -> u32 {
    if x == 0.5 {
        return 1;
    }
    if 1.0 != x {
        return 2;
    }
    if n == 5 {
        return 3;
    }
    0
}
