// Fixture: a valid allow annotation suppresses its finding.
pub fn observe() -> u128 {
    // itm-lint: allow(D001): span timing is observability-only wall time
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

pub fn pick(v: &[u32]) -> u32 {
    *v.first().unwrap() // itm-lint: allow(P001): caller guarantees non-empty
}
