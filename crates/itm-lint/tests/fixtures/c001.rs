//! Deliberate C001 violations: shared mutable capture in shard closures.

use std::sync::Mutex;

pub fn bad_mutex(exec: &Exec, acc: &Mutex<Vec<u32>>) {
    exec.map(4, |i| acc.lock().push(i as u32));
}

pub fn bad_refmut(exec: &Exec) {
    let mut total = 0u32;
    exec.map(4, |i| add(&mut total, i));
}

pub fn fine(exec: &Exec) -> Vec<u32> {
    exec.map(4, |i| i as u32)
}

pub fn bad_runner(cfg: &Cfg, state: &Mutex<Vec<u32>>) {
    run_with(cfg, |n, _job| state.lock().push(n));
}
