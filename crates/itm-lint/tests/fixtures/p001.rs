// Fixture: P001 — panicking calls in library code.
pub fn risky(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty");
    if *first > *last {
        panic!("inverted");
    }
    first + last
}

pub fn safe(v: &[u32]) -> u32 {
    // unwrap_or and friends do not panic; the string below is not code.
    let s = "never unwrap() in prose";
    v.first().copied().unwrap_or(s.len() as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::safe(&[]).checked_add(1).unwrap(), 25);
    }
}
