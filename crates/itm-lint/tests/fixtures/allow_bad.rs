// Fixture: malformed allow annotations are themselves findings.
pub fn pick(v: &[u32]) -> u32 {
    // itm-lint: allow(P001)
    *v.first().unwrap()
}

pub fn other(v: &[u32]) -> u32 {
    // itm-lint: allow(X999): no such rule
    *v.last().unwrap()
}
