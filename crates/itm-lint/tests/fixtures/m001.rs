//! Deliberate M001 violations: per-item owned copies on campaign paths.

pub fn scan_shard(domains: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for d in domains {
        out.push(d.clone());
        let s = d.to_string();
        let _ = s;
    }
    out
}

pub fn not_campaign(domains: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for d in domains {
        out.push(d.clone());
    }
    out
}

pub fn merge(run_shards: &dyn Fn(usize) -> Vec<String>) -> Vec<String> {
    let parts = run_shards(4);
    let hoisted = parts.clone();
    hoisted
}
