//! Deliberate C002 violation: hash-order iteration feeding a merge flow.

use std::collections::{BTreeMap, HashMap};

pub fn merge(run_shards: &dyn Fn(usize) -> Vec<u32>) -> Vec<u32> {
    let mut seen = HashMap::new();
    for p in run_shards(2) {
        seen.insert(p, p);
    }
    let mut out = Vec::new();
    for (k, _v) in seen.iter() {
        out.push(*k);
    }
    out
}

pub fn ordered_merge(run_shards: &dyn Fn(usize) -> Vec<u32>) -> Vec<u32> {
    let mut seen = BTreeMap::new();
    for p in run_shards(2) {
        seen.insert(p, p);
    }
    seen.keys().copied().collect()
}

pub fn unserialized(xs: &[u32]) -> u32 {
    let mut seen = HashMap::new();
    for x in xs {
        seen.insert(*x, *x);
    }
    let mut sum = 0;
    for (k, _v) in seen.iter() {
        sum += k;
    }
    sum
}
