//! The gate: the full rule set over the whole workspace must come back
//! clean. Any new wall-clock read, unseeded RNG, serialized HashMap,
//! library panic, or float `==` fails `cargo test` right here — with the
//! same `file:line` findings `cargo run -p itm-lint` prints.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/itm-lint");
    let report = itm_lint::scan_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "itm-lint found unallowed violations:\n{}",
        report.render()
    );
    // The waivers that do exist must all be live (A002 enforces this
    // inside the scan) and carry reasons (A001 likewise) — here we just
    // pin that the workspace actually uses the escape hatch somewhere, so
    // the suppression path stays exercised.
    assert!(
        report.allows_used > 0,
        "expected at least one reasoned allow"
    );
}
