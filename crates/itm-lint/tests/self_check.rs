//! The gate: the full rule set over the whole workspace must come back
//! clean. Any new wall-clock read, unseeded RNG, serialized HashMap,
//! library panic, or float `==` fails `cargo test` right here — with the
//! same `file:line` findings `cargo run -p itm-lint` prints.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/itm-lint");
    let report = itm_lint::scan_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "itm-lint found unallowed violations:\n{}",
        report.render()
    );
    // The waivers that do exist must all be live (A002 enforces this
    // inside the scan) and carry reasons (A001 likewise) — here we just
    // pin that the workspace actually uses the escape hatch somewhere, so
    // the suppression path stays exercised.
    assert!(
        report.allows_used > 0,
        "expected at least one reasoned allow"
    );
}

#[test]
fn workspace_scan_is_deterministic_and_round_trips() {
    // The symbol table is rebuilt from scratch on every scan; two scans
    // must agree finding-for-finding and serialize byte-identically, and
    // the JSON must round-trip through the shim unchanged.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/itm-lint");
    let a = itm_lint::scan_workspace(root).expect("first scan");
    let b = itm_lint::scan_workspace(root).expect("second scan");
    assert_eq!(a, b, "re-scan produced different findings");
    let ja = serde_json::to_string_pretty(&a).expect("serialize");
    let jb = serde_json::to_string_pretty(&b).expect("serialize");
    assert_eq!(ja, jb, "re-scan report is not byte-identical");
    let back: itm_lint::LintReport = serde_json::from_str(&ja).expect("parse");
    assert_eq!(back, a, "report did not round-trip");
}
