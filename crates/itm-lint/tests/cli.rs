//! CLI contract tests: argument validation, exit codes, and the
//! baseline/diff gate, exercised against the real binary.

use std::path::Path;
use std::process::Command;

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_itm-lint"))
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/itm-lint")
}

#[test]
fn nonexistent_root_exits_2_with_usage() {
    let out = lint()
        .args(["--root", "/definitely/not/a/real/path"])
        .output()
        .expect("spawn itm-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage:"),
        "expected usage text, got: {stderr}"
    );
    assert!(stderr.contains("not a directory"), "got: {stderr}");
}

#[test]
fn file_root_exits_2_with_usage() {
    let this_file = format!("{}/tests/cli.rs", env!("CARGO_MANIFEST_DIR"));
    let out = lint()
        .args(["--root", &this_file])
        .output()
        .expect("spawn itm-lint");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "got: {stderr}");
}

#[test]
fn unknown_argument_exits_2_with_usage() {
    let out = lint().arg("--frobnicate").output().expect("spawn itm-lint");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_baseline_file_exits_2() {
    let root = workspace_root();
    let out = lint()
        .args(["--root".as_ref(), root.as_os_str()])
        .args(["--no-json", "--baseline", "/no/such/baseline.json"])
        .output()
        .expect("spawn itm-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("baseline"), "got: {stderr}");
}

#[test]
fn committed_baseline_gates_on_new_findings_only() {
    let root = workspace_root();
    let baseline = root.join("results").join("lint_baseline.json");
    assert!(
        baseline.is_file(),
        "results/lint_baseline.json must be committed"
    );
    let out = lint()
        .args(["--root".as_ref(), root.as_os_str()])
        .arg("--no-json")
        .args(["--baseline".as_ref(), baseline.as_os_str()])
        .output()
        .expect("spawn itm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace has findings not in the baseline:\n{stdout}"
    );
    assert!(stdout.contains("0 new finding(s)"), "got: {stdout}");
}

#[test]
fn list_rules_includes_every_family() {
    let out = lint().arg("--list-rules").output().expect("spawn itm-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "D001", "D005", "P001", "F001", "M001", "M004", "C001", "C002", "L001", "A002",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in --list-rules");
    }
}
