//! End-to-end allocation tracking through a real installed
//! `#[global_allocator]` — the unit tests in `itm_obs::alloc` drive the
//! accounting hooks directly; this binary checks the wrapper actually
//! observes Rust allocations once installed, that span guards double as
//! attribution phases, and that [`itm_obs::snapshot`] attaches (and JSON
//! renders) the resource section only while tracking is on.
//!
//! One test body: the counters are process-global.

use itm_obs::alloc;
use std::hint::black_box;

#[global_allocator]
static ALLOC: alloc::TrackingAlloc = alloc::TrackingAlloc::new();

#[test]
fn installed_allocator_tracks_attributes_and_reports() {
    // --- Disabled (the default): allocations leave no trace. ---
    assert!(!alloc::enabled());
    black_box(vec![0u8; 64 * 1024]);
    let silent = alloc::stats();
    assert_eq!(silent, alloc::AllocStats::default(), "tracked while off");

    // --- Enabled: a known allocation is counted, then freed. ---
    alloc::set_enabled(true);
    alloc::reset();
    let before = alloc::stats();
    let buf = black_box(vec![7u8; 100_000]);
    let live = alloc::stats();
    assert!(live.allocs > before.allocs);
    assert!(
        live.total_bytes >= before.total_bytes + 100_000,
        "100 KB allocation not counted: {live:?}"
    );
    assert!(live.current_bytes >= 100_000);
    assert!(live.peak_bytes >= live.current_bytes);
    drop(buf);
    let freed = alloc::stats();
    assert!(freed.deallocs > live.deallocs);
    assert!(freed.current_bytes <= live.current_bytes - 100_000);
    // Totals are monotone; the peak remembers the high-water mark.
    assert!(freed.total_bytes >= live.total_bytes);
    assert!(freed.peak_bytes >= 100_000);

    // --- Explicit phase attribution. ---
    let slot = alloc::register_phase("test.explicit").expect("phase table full");
    {
        let _g = alloc::enter_phase(slot);
        black_box(vec![1u8; 50_000]);
    }
    let phases = alloc::phase_stats();
    let (_, explicit) = phases
        .iter()
        .find(|(n, _)| n == "test.explicit")
        .expect("registered phase missing from snapshot");
    assert!(explicit.total_bytes >= 50_000, "{explicit:?}");
    assert!(explicit.allocs >= 1);
    assert!(explicit.peak_bytes >= 50_000);

    // --- Span guards double as phases: no extra call sites needed. ---
    itm_obs::set_enabled(true);
    {
        let _span = itm_obs::span("alloc_it.span_phase");
        black_box(vec![2u8; 40_000]);
    }
    let phases = alloc::phase_stats();
    let (_, span_phase) = phases
        .iter()
        .find(|(n, _)| n == "alloc_it.span_phase")
        .expect("span path was not registered as a phase");
    assert!(span_phase.total_bytes >= 40_000, "{span_phase:?}");

    // --- snapshot() attaches resources while tracking is on… ---
    let report = itm_obs::snapshot();
    let resources = report.resources.as_ref().expect("resources missing");
    assert!(resources.alloc.total_bytes > 0);
    assert!(resources.phases.contains_key("alloc_it.span_phase"));
    if cfg!(target_os = "linux") {
        assert!(resources.peak_rss_bytes.unwrap() > 0);
        assert!(resources.current_rss_bytes.unwrap() > 0);
    }
    let json = serde_json::to_string(&report.to_json()).unwrap();
    assert!(json.contains("\"resources\""), "{json}");
    assert!(json.contains("\"tracked\""), "{json}");

    // --- …and stays byte-compatible with pre-profiler reports when off. ---
    alloc::set_enabled(false);
    let report = itm_obs::snapshot();
    assert!(report.resources.is_none());
    let json = serde_json::to_string(&report.to_json()).unwrap();
    assert!(
        !json.contains("\"resources\""),
        "resources key must be absent (not null) when tracking is off: {json}"
    );
    itm_obs::set_enabled(false);
}
