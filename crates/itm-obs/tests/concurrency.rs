//! Parallel increments must lose no counts, across counters, histograms,
//! and span timers — the registry's only job under contention.

use itm_obs::Registry;
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn parallel_counter_increments_lose_nothing() {
    let r = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                // Half the threads register the series themselves, half
                // increment through a pre-fetched handle, so both the
                // registration path and the handle path race.
                let c = r.counter("race.counter");
                for i in 0..PER_THREAD {
                    if t % 2 == 0 {
                        c.inc();
                    } else {
                        r.counter("race.counter").add(1);
                        let _ = i;
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        r.snapshot().counter("race.counter"),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn parallel_histogram_records_lose_nothing() {
    let r = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let h = r.histogram("race.hist");
                for i in 0..PER_THREAD {
                    h.record((t as u64) * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = r.snapshot();
    let hist = &snap.histograms["race.hist"];
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(hist.count, n);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, n - 1);
    assert_eq!(hist.sum, n * (n - 1) / 2);
    assert_eq!(hist.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
}

#[test]
fn parallel_spans_aggregate_per_thread_paths() {
    let r = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                for _ in 0..200 {
                    let _outer = r.span("work");
                    let _inner = r.span("step");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = r.snapshot();
    // Span stacks are thread-local: every thread saw the same two paths.
    assert_eq!(snap.spans["work"].count, THREADS as u64 * 200);
    assert_eq!(snap.spans["work/step"].count, THREADS as u64 * 200);
    assert!(!snap.spans.contains_key("step"));
}
