//! Concurrency guarantees of the trace ring.
//!
//! Sharding is by global sequence number, so distribution over the
//! mutex-guarded rings is exactly even: below total capacity no event is
//! ever evicted (causality links stay complete), and above it the
//! `dropped_events` counter is exactly `emitted - capacity`.

use itm_obs::trace::{EventId, EventKind, Subjects, Technique, TraceLog};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;

#[test]
fn no_causality_links_lost_below_capacity() {
    const PER_THREAD: usize = 2_000;
    // Each thread emits one campaign root + PER_THREAD children.
    let total = THREADS * (PER_THREAD + 1);
    let log = Arc::new(TraceLog::new(total));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                let _scope = log.campaign(Technique::CacheProbe, &format!("worker-{t}"));
                for i in 0..PER_THREAD {
                    log.emit(
                        Technique::CacheProbe,
                        EventKind::CacheHit,
                        Subjects::none().prefix(i as u32).asn(t as u32),
                        "",
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = log.snapshot();
    assert_eq!(snap.dropped_events, 0, "events dropped below capacity");
    assert_eq!(snap.records.len(), total);

    // Every child's parent survived, is a campaign root, and shares the
    // child's trace id — no broken causality links.
    let by_id: HashMap<EventId, _> = snap.records.iter().map(|r| (r.id, r)).collect();
    let mut children_per_trace: HashMap<u64, usize> = HashMap::new();
    for r in &snap.records {
        match r.parent {
            None => assert_eq!(r.kind, EventKind::CampaignStarted),
            Some(p) => {
                let root = by_id.get(&p).expect("parent evicted");
                assert_eq!(root.kind, EventKind::CampaignStarted);
                assert_eq!(root.trace, r.trace, "trace id broken");
                *children_per_trace.entry(r.trace.0).or_default() += 1;
            }
        }
    }
    // Each thread's campaign kept all its children.
    assert_eq!(children_per_trace.len(), THREADS);
    for (&trace, &n) in &children_per_trace {
        assert_eq!(n, PER_THREAD, "trace {trace:x} lost children");
    }
}

#[test]
fn dropped_events_is_exact_above_capacity() {
    const CAPACITY: usize = 1_024;
    const PER_THREAD: usize = 5_000;
    let log = Arc::new(TraceLog::new(CAPACITY));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    log.emit(
                        Technique::TlsScan,
                        EventKind::CertMatched,
                        Subjects::none().addr((t * PER_THREAD + i) as u32),
                        "",
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let emitted = (THREADS * PER_THREAD) as u64;
    assert_eq!(log.emitted(), emitted);
    let snap = log.snapshot();
    assert_eq!(snap.records.len(), CAPACITY);
    assert_eq!(
        snap.dropped_events,
        emitted - CAPACITY as u64,
        "dropped counter must be exact"
    );

    // Survivors are unique and are exactly the newest ids per shard slot
    // count; at minimum: all ids unique and none older than the eviction
    // horizon minus one shard round.
    let ids: HashSet<u64> = snap.records.iter().map(|r| r.id.0).collect();
    assert_eq!(ids.len(), CAPACITY, "duplicate records in snapshot");
    let oldest = ids.iter().min().unwrap();
    assert!(
        *oldest >= emitted - CAPACITY as u64 - 16,
        "survivor older than eviction horizon: {oldest}"
    );
}
