//! Saturation stress: when many shards hammer a full ring in the same
//! instant, the drop accounting must stay *exact* — every emitted event
//! is either in the ring or counted in `dropped_events`, never both,
//! never neither.

use itm_obs::trace::{EventKind, Subjects, Technique, TraceLog};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const EXTRA: usize = 37;

/// N threads each emit `capacity + K` events into one shared ring, so the
/// ring saturates almost immediately and nearly every push races the
/// eviction path. The invariant `recorded + dropped == emitted` must hold
/// exactly at the end, for capacities below, at, and far above the
/// internal shard count.
#[test]
fn recorded_plus_dropped_equals_emitted_under_saturation() {
    for requested in [1usize, 15, 16, 17, 100, 1_024] {
        let log = Arc::new(TraceLog::new(requested));
        // Capacity is rounded up to a shard multiple; assert against the
        // effective value, not the requested one.
        let capacity = log.capacity();
        let per_thread = capacity + EXTRA;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = Arc::clone(&log);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        log.emit(
                            Technique::CacheProbe,
                            EventKind::CacheHit,
                            Subjects::none().prefix(i as u32).asn(t as u32),
                            "",
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let emitted = (THREADS * per_thread) as u64;
        assert_eq!(log.emitted(), emitted, "capacity {requested}");
        let snap = log.snapshot();
        assert_eq!(
            snap.records.len() as u64 + snap.dropped_events,
            emitted,
            "capacity {requested}: {} recorded + {} dropped != {emitted} emitted",
            snap.records.len(),
            snap.dropped_events
        );
        // The ring is saturated, so the recorded side is exactly full.
        assert_eq!(snap.records.len(), capacity, "capacity {requested}");
        // No event counted twice: ids are unique among survivors.
        let mut ids: Vec<u64> = snap.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), capacity, "capacity {requested}: duplicate ids");
    }
}
