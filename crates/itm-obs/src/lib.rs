//! Lightweight, dependency-minimal instrumentation for the traffic-map
//! pipeline.
//!
//! Three primitives, one registry:
//!
//! * **Counters** — monotonic, optionally labeled
//!   (`dns.queries{technique="cache_probe"}`). One relaxed atomic add on
//!   the hot path.
//! * **Histograms** — fixed log₂ buckets (65 of them, covering all of
//!   `u64`), for value distributions like per-AS probe fan-out.
//! * **Span timers** — scoped RAII guards that nest: a span opened while
//!   another is live on the same thread records under the joined path
//!   (`substrate.build/topology.generate`).
//!
//! The process-global registry ([`global`]) starts **disabled**: every
//! `inc`/`record` is a single relaxed load and a branch, and span guards
//! never read the clock, so instrumented library code costs (nearly)
//! nothing unless a driver opts in with [`set_enabled`]. Tests construct
//! their own [`Registry`] instances and are unaffected by the global
//! toggle's state.
//!
//! [`snapshot`] freezes everything into a [`MetricsReport`] whose JSON
//! rendering is deterministically ordered (all maps are `BTreeMap`s), so
//! two runs of the same deterministic pipeline produce byte-identical
//! counter sections.
//!
//! A fourth primitive lives alongside the registry: the **trace log**
//! ([`trace`]) — a bounded, lock-sharded ring of typed causal events
//! (probes, cache hits, certificate matches, asserted map edges) with
//! RNG-seeded virtual timestamps. It exports as Chrome trace-format JSON
//! ([`chrome_trace`]) for Perfetto timelines and is queried through a
//! [`ProvenanceIndex`] (`explain(edge) → EvidenceChain`). Like the
//! registry it is process-global, **disabled** by default, and gated by a
//! single relaxed atomic load per emission. See DESIGN.md §7.
//!
//! Naming convention: `subsystem.metric` in lower snake-case segments,
//! labels in `{key="value"}` suffix form, sorted by key. See
//! DESIGN.md § Observability.

pub mod alloc;
pub mod chrome;
mod histogram;
pub mod provenance;
pub mod quality;
mod registry;
mod report;
pub mod resource;
mod span;
pub mod trace;

pub use chrome::chrome_trace;
pub use histogram::{Histogram, HistogramSnapshot};
pub use provenance::{EvidenceChain, ProvenanceIndex};
pub use quality::{QualityReport, TechniqueAudit, TechniqueScore, Verdict};
pub use registry::{Counter, Registry};
pub use report::MetricsReport;
pub use resource::ResourceReport;
pub use span::{SpanGuard, SpanSnapshot};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Created lazily, **disabled** by default.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new_disabled)
}

/// Turn global metric collection on or off.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global registry is currently collecting.
pub fn enabled() -> bool {
    global().enabled()
}

/// Fetch-or-register a counter on the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Fetch-or-register a labeled counter on the global registry.
///
/// The canonical name is `name{k1="v1",k2="v2"}` with labels sorted by
/// key, so the same label set always maps to the same series.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter_with(name, labels)
}

/// Fetch-or-register a histogram on the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Open a scoped span timer on the global registry. Time is recorded when
/// the returned guard drops; nested spans record under joined paths.
pub fn span(name: &str) -> SpanGuard<'static> {
    global().span(name)
}

/// Snapshot the global registry. When allocation tracking
/// ([`alloc::set_enabled`]) is on, the report additionally carries a
/// [`ResourceReport`] (peak RSS, tracked bytes, per-phase attribution);
/// otherwise `resources` stays `None` and the JSON rendering is unchanged
/// from pre-profiler builds.
pub fn snapshot() -> MetricsReport {
    // Freeze the resource accounting before the registry snapshot: the
    // snapshot itself allocates (bucket vectors whose sizes depend on
    // which timing buckets are occupied), and those run-dependent bytes
    // must not leak into totals that reproduce exactly.
    let resources = if alloc::enabled() {
        Some(ResourceReport::collect())
    } else {
        None
    };
    let mut report = global().snapshot();
    report.resources = resources;
    report
}

/// Zero every metric in the global registry (handles stay valid).
pub fn reset() {
    global().reset()
}

/// A cached global-counter handle for a fixed call site.
///
/// Expands to a `&'static Counter`: the registry lookup happens once per
/// call site, after which each use is a single atomic add.
///
/// ```
/// itm_obs::counter!("dns.cache.hit").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::counter($name))
    }};
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::counter_with($name, &[$(($k, $v)),+]))
    }};
}

/// A cached global-histogram handle for a fixed call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_starts_disabled_and_toggles() {
        // Don't assert the current state (other tests may toggle it);
        // assert the toggle round-trips.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }

    #[test]
    fn macro_handles_are_cached() {
        let a = counter!("test.macro.cached") as *const Counter;
        let b = counter!("test.macro.cached") as *const Counter;
        // Two distinct call sites → two statics, but each resolves to the
        // same underlying series.
        let ca = counter!("test.macro.series");
        let cb = counter("test.macro.series");
        let r = global();
        let was = r.enabled();
        r.set_enabled(true);
        ca.inc();
        assert_eq!(cb.get(), ca.get());
        r.set_enabled(was);
        let _ = (a, b);
    }
}
