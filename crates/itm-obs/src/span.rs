//! Scoped RAII span timers with thread-local nesting.
//!
//! `registry.span("topology.generate")` opened while
//! `registry.span("substrate.build")` is live on the same thread records
//! its elapsed time under `substrate.build/topology.generate`. The path
//! stack is thread-local; spans on different threads do not nest into
//! each other. When the registry is disabled, entering a span is a single
//! relaxed load and the guard is inert (no clock read, no allocation).
//!
//! When the global [`crate::trace`] log is enabled, entering and dropping
//! a span also emits `SpanBegin`/`SpanEnd` trace events carrying the
//! nested path, from which [`crate::chrome_trace`] synthesizes timeline
//! duration events with deterministic virtual timestamps.

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Separator joining nested span names into a path.
pub const PATH_SEP: char = '/';

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Live RAII guard for one span. Records on drop.
pub struct SpanGuard<'a> {
    active: Option<Active<'a>>,
}

struct Active<'a> {
    registry: &'a Registry,
    /// Full nested path of this span.
    path: String,
    /// Stack depth this span pushed at (for drop-order robustness).
    depth: usize,
    start: Instant,
    /// Allocation-attribution scope for the same path, held while the
    /// span is live so the span annotations double as memory phases.
    /// `None` when allocation tracking is off (or the phase table is
    /// full).
    _phase: Option<crate::alloc::PhaseGuard>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(registry: &'a Registry, name: &str) -> SpanGuard<'a> {
        if !registry.enabled() {
            return SpanGuard { active: None };
        }
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}{PATH_SEP}{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            (path, stack.len())
        });
        // Mirror the span into the global trace log (when tracing is on)
        // so the Chrome exporter can synthesize duration events with
        // deterministic virtual timestamps.
        crate::trace::emit(
            crate::trace::Technique::Span,
            crate::trace::EventKind::SpanBegin,
            crate::trace::Subjects::none(),
            &path,
        );
        // When the tracking allocator is collecting, make this span the
        // current thread's allocation phase: every span path becomes a
        // row in ResourceReport.phases with zero extra call sites.
        let phase = if crate::alloc::enabled() {
            crate::alloc::register_phase(&path).map(crate::alloc::enter_phase)
        } else {
            None
        };
        SpanGuard {
            active: Some(Active {
                registry,
                path,
                depth,
                // itm-lint: allow(D001): span timing is observability-only wall time and never feeds the map
                start: Instant::now(),
                _phase: phase,
            }),
        }
    }

    /// The full nested path this span records under (`None` when the
    /// registry was disabled at entry).
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.path.as_str())
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed().as_nanos() as u64;
        crate::trace::emit(
            crate::trace::Technique::Span,
            crate::trace::EventKind::SpanEnd,
            crate::trace::Subjects::none(),
            &active.path,
        );
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Truncate rather than pop: if an inner guard leaked past an
            // outer one (mem::forget, async misuse), recover the stack.
            stack.truncate(active.depth.saturating_sub(1));
        });
        active.registry.record_span(&active.path, elapsed);
    }
}

/// Aggregated timings for one span path.
pub(crate) struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    pub(crate) fn new() -> SpanStats {
        SpanStats {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SpanSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        SpanSnapshot {
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Frozen timings for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed entries of this span.
    pub count: u64,
    /// Total time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Fastest entry (0 when never entered).
    pub min_ns: u64,
    /// Slowest entry.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_paths() {
        let r = Registry::new();
        {
            let outer = r.span("build");
            assert_eq!(outer.path(), Some("build"));
            let inner = r.span("topology");
            assert_eq!(inner.path(), Some("build/topology"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["build"].count, 1);
        assert_eq!(snap.spans["build/topology"].count, 1);
        assert!(snap.spans["build"].total_ns >= snap.spans["build/topology"].total_ns);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let r = Registry::new_disabled();
        {
            let g = r.span("quiet");
            assert_eq!(g.path(), None);
        }
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn sequential_spans_do_not_nest() {
        let r = Registry::new();
        drop(r.span("a"));
        drop(r.span("b"));
        let snap = r.snapshot();
        assert!(snap.spans.contains_key("a"));
        assert!(snap.spans.contains_key("b"));
        assert!(!snap.spans.contains_key("a/b"));
    }

    #[test]
    fn repeated_entries_aggregate() {
        let r = Registry::new();
        for _ in 0..3 {
            drop(r.span("loop"));
        }
        let s = r.snapshot().spans["loop"];
        assert_eq!(s.count, 3);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }
}
