//! Causal event tracing: a lock-sharded, bounded ring buffer of typed
//! pipeline events.
//!
//! Where counters answer "how many probes did we send", the trace log
//! answers "*which* probe justified this edge". Every event carries:
//!
//! * a [`TraceId`] naming the measurement campaign it belongs to and an
//!   optional parent [`EventId`] (the campaign root), forming a causality
//!   chain;
//! * the emitting [`Technique`] and typed [`EventKind`];
//! * RNG-seeded **virtual timestamps** — monotone in emission order,
//!   jittered from the run seed, never read from a wall clock — so traces
//!   from the same seed are byte-identical across machines and runs;
//! * the [`Subjects`] (prefix, service, AS, front-end address, PoP) the
//!   event is about, as raw ids, keeping this crate dependency-free.
//!
//! The log is **zero-cost when disabled**: emission starts with a single
//! relaxed atomic load (the same gate as [`crate::Counter::add`]) and
//! returns before touching any argument. When enabled it is **bounded**:
//! events are distributed round-robin over `N_SHARDS` mutex-guarded rings
//! of `capacity / N_SHARDS` slots each, evicting oldest-first and counting
//! evictions in `dropped_events`. Because sharding is by global sequence
//! number (not by thread), distribution over shards is exactly even: no
//! event is ever dropped while fewer than `capacity` events have been
//! emitted, and past that point `dropped_events` is exactly
//! `emitted - capacity`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of independently locked rings. Matches the metrics registry's
/// shard count; emission contends on `seq mod N_SHARDS`, so concurrent
/// emitters rarely collide.
const N_SHARDS: usize = 16;

/// Default total ring capacity (events). At ~112 bytes/event this bounds
/// an enabled trace to ~30 MB; a full small-substrate pipeline emits well
/// under this, so small-run traces are complete (nothing dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// SplitMix64 finalizer (local copy; this crate stays dependency-free).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifier of one measurement campaign (a top-level causal chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifier of one event: its global emission sequence number, unique
/// and monotone within a run of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// The measurement technique (or pipeline stage) that emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Technique {
    CacheProbe,
    RootCrawl,
    EcsMapping,
    IpidProbe,
    TlsScan,
    SniScan,
    CloudProbe,
    Routing,
    Dns,
    Resolvers,
    MapAssembly,
    Span,
    Other,
}

impl Technique {
    /// Stable lower-snake name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Technique::CacheProbe => "cache_probe",
            Technique::RootCrawl => "root_crawl",
            Technique::EcsMapping => "ecs_mapping",
            Technique::IpidProbe => "ipid_probe",
            Technique::TlsScan => "tls_scan",
            Technique::SniScan => "sni_scan",
            Technique::CloudProbe => "cloud_probe",
            Technique::Routing => "routing",
            Technique::Dns => "dns",
            Technique::Resolvers => "resolvers",
            Technique::MapAssembly => "map_assembly",
            Technique::Span => "span",
            Technique::Other => "other",
        }
    }
}

/// What happened. One variant per observable pipeline fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum EventKind {
    /// Root of a causal chain; all events emitted inside the campaign's
    /// scope carry this event as their parent.
    CampaignStarted,
    /// A probe left a vantage point (generic).
    ProbeSent,
    /// An open-resolver cache probe observed a cached answer.
    CacheHit,
    /// An open-resolver cache probe observed a cold cache.
    CacheMiss,
    /// An ECS query returned an answer scoped to the client /24.
    EcsScopedAnswer,
    /// The authoritative DNS answered a redirection query.
    AuthAnswer,
    /// A recursive resolver was assigned to an AS during substrate build.
    ResolverAssigned,
    /// A TLS handshake returned a certificate tied to an organisation.
    CertMatched,
    /// An SNI-directed handshake confirmed a domain is served at an
    /// address.
    SniMatched,
    /// An off-net (ISP-hosted) cache of a hypergiant was identified.
    OffnetDetected,
    /// A best-path routing tree was resolved for a destination.
    RouteResolved,
    /// A cloud-vantage traceroute revealed an inter-AS link.
    LinkDiscovered,
    /// A root-DNS log line was attributed to an AS.
    LogLineAttributed,
    /// An IPID side-channel sample was taken from a router.
    IpidSampled,
    /// Per-AS activity signals were fused into one estimate.
    ActivityFused,
    /// Map assembly asserted a user-prefix → service edge.
    EdgeAsserted,
    /// A probe exhausted its retries; the campaign recorded a gap
    /// instead of an observation (deterministic fault injection).
    ProbeFailed,
    /// A faulted probe was retried after a virtual-time backoff and
    /// eventually succeeded (degraded observation).
    ProbeRetried,
    /// A [`crate::SpanGuard`] opened (timeline duration start).
    SpanBegin,
    /// A [`crate::SpanGuard`] closed (timeline duration end).
    SpanEnd,
}

impl EventKind {
    /// Stable name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::CampaignStarted => "CampaignStarted",
            EventKind::ProbeSent => "ProbeSent",
            EventKind::CacheHit => "CacheHit",
            EventKind::CacheMiss => "CacheMiss",
            EventKind::EcsScopedAnswer => "EcsScopedAnswer",
            EventKind::AuthAnswer => "AuthAnswer",
            EventKind::ResolverAssigned => "ResolverAssigned",
            EventKind::CertMatched => "CertMatched",
            EventKind::SniMatched => "SniMatched",
            EventKind::OffnetDetected => "OffnetDetected",
            EventKind::RouteResolved => "RouteResolved",
            EventKind::LinkDiscovered => "LinkDiscovered",
            EventKind::IpidSampled => "IpidSampled",
            EventKind::LogLineAttributed => "LogLineAttributed",
            EventKind::ActivityFused => "ActivityFused",
            EventKind::EdgeAsserted => "EdgeAsserted",
            EventKind::ProbeFailed => "ProbeFailed",
            EventKind::ProbeRetried => "ProbeRetried",
            EventKind::SpanBegin => "SpanBegin",
            EventKind::SpanEnd => "SpanEnd",
        }
    }
}

/// The entity ids an event is about, as raw integers (the typed-id crates
/// sit above this one; callers pass `id.raw()`). All fields optional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Subjects {
    /// A `/24` prefix (`PrefixId::raw()`).
    pub prefix: Option<u32>,
    /// A service (`ServiceId::raw()`).
    pub service: Option<u32>,
    /// An AS (`Asn::raw()`).
    pub asn: Option<u32>,
    /// A front-end / endpoint address (`Ipv4Addr.0`).
    pub addr: Option<u32>,
    /// A platform PoP (`PopId::raw()`).
    pub pop: Option<u32>,
}

impl Subjects {
    /// No subjects.
    pub fn none() -> Subjects {
        Subjects::default()
    }

    /// Set the prefix subject.
    pub fn prefix(mut self, raw: u32) -> Subjects {
        self.prefix = Some(raw);
        self
    }

    /// Set the service subject.
    pub fn service(mut self, raw: u32) -> Subjects {
        self.service = Some(raw);
        self
    }

    /// Set the AS subject.
    pub fn asn(mut self, raw: u32) -> Subjects {
        self.asn = Some(raw);
        self
    }

    /// Set the address subject.
    pub fn addr(mut self, raw: u32) -> Subjects {
        self.addr = Some(raw);
        self
    }

    /// Set the PoP subject.
    pub fn pop(mut self, raw: u32) -> Subjects {
        self.pop = Some(raw);
        self
    }
}

/// Render a raw address subject as a dotted quad.
pub(crate) fn fmt_addr(raw: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        raw >> 24,
        (raw >> 16) & 0xFF,
        (raw >> 8) & 0xFF,
        raw & 0xFF
    )
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Unique, monotone event id (global sequence number).
    pub id: EventId,
    /// The campaign (causal chain) this event belongs to.
    pub trace: TraceId,
    /// The campaign-root event this event descends from, if any.
    pub parent: Option<EventId>,
    /// Emitting technique.
    pub technique: Technique,
    /// What happened.
    pub kind: EventKind,
    /// Virtual timestamp, microseconds. Monotone in `id`, jittered from
    /// the run seed, never from a wall clock.
    pub vt_us: u64,
    /// Small dense id of the emitting thread (0 for the first emitter).
    pub tid: u32,
    /// The entities the event is about.
    pub subjects: Subjects,
    /// Free-form detail (domain probed, issuer matched, …). Empty when
    /// none.
    pub detail: String,
}

/// Frozen contents of a [`TraceLog`].
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Surviving records, ascending by [`EventId`].
    pub records: Vec<TraceRecord>,
    /// Events evicted because the ring was full.
    pub dropped_events: u64,
    /// Total ring capacity at snapshot time.
    pub capacity: usize,
}

thread_local! {
    /// Campaign context stack: (trace, root event) pairs pushed by
    /// [`CampaignScope`]s live on this thread. Shared across logs — in
    /// practice exactly one log is active per thread.
    static CTX: RefCell<Vec<(TraceId, EventId)>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense trace tid.
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Deferred-emission buffer: while `Some`, [`emit`] on this thread
    /// stores pending events here instead of sequencing them into the
    /// global log. Installed by [`capture_begin`] on executor worker
    /// threads; drained by [`capture_take`].
    static CAPTURE: RefCell<Option<Vec<PendingEvent>>> = const { RefCell::new(None) };
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// One emission deferred by a capture scope: everything [`emit`] was
/// called with, minus the sequence number it has not been assigned yet.
#[derive(Debug, Clone)]
struct PendingEvent {
    technique: Technique,
    kind: EventKind,
    subjects: Subjects,
    detail: String,
}

/// Events deferred on a worker thread between [`capture_begin`] and
/// [`capture_take`], waiting to be [`replay`]ed. Opaque: the only useful
/// thing to do with one is hand it back in a deterministic order.
#[derive(Debug, Default)]
pub struct CapturedEvents {
    events: Vec<PendingEvent>,
}

impl CapturedEvents {
    /// Number of deferred events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Begin deferring this thread's [`emit`] calls into a capture buffer.
///
/// This is the executor's half of the deterministic-parallel-trace
/// protocol (`ParallelExecutor::map`): each worker captures the events
/// its shard job emits, and the calling thread [`replay`]s the buffers in
/// shard-index order after the barrier. Sequence numbers — and therefore
/// virtual timestamps, trace ids, and campaign parents — are assigned at
/// replay, on the replaying thread, so the resulting trace is
/// byte-identical to a single-threaded run of the same shards.
///
/// Scoped to the calling thread; replaces any buffer already installed.
/// Campaign scopes must not be opened while a capture is active (their
/// root event would need a sequence number before its children); shard
/// jobs in this workspace never open campaigns — campaigns wrap the
/// `map` call on the coordinating thread.
pub fn capture_begin() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Stop capturing on this thread and take the deferred events.
pub fn capture_take() -> CapturedEvents {
    CapturedEvents {
        events: CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default(),
    }
}

/// Sequence previously captured events into the global log, in order, as
/// if they had been emitted on the calling thread — they inherit its
/// campaign scope (so a worker's `ProbeFailed` gets the campaign root as
/// parent) and its trace tid.
pub fn replay(captured: CapturedEvents) {
    let l = log();
    for e in captured.events {
        l.emit(e.technique, e.kind, e.subjects, &e.detail);
    }
}

/// RAII guard for one campaign scope: while alive, events emitted on this
/// thread carry the campaign's [`TraceId`] and root [`EventId`] as parent.
#[must_use = "the campaign scope ends when this guard drops"]
pub struct CampaignScope {
    pushed: bool,
}

impl Drop for CampaignScope {
    fn drop(&mut self) {
        if self.pushed {
            CTX.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// The lock-sharded, bounded event log.
pub struct TraceLog {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    vt_seed: AtomicU64,
    cap_per_shard: AtomicUsize,
    shards: Vec<Mutex<VecDeque<TraceRecord>>>,
}

impl TraceLog {
    /// A new, **enabled** log with the given total capacity (rounded up
    /// to a multiple of the shard count, minimum one slot per shard).
    pub fn new(capacity: usize) -> TraceLog {
        let log = TraceLog::new_disabled(capacity);
        log.set_enabled(true);
        log
    }

    /// A new, **disabled** log (the global default state).
    pub fn new_disabled(capacity: usize) -> TraceLog {
        TraceLog {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            vt_seed: AtomicU64::new(0),
            cap_per_shard: AtomicUsize::new(capacity.div_ceil(N_SHARDS).max(1)),
            shards: (0..N_SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Turn collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the log is collecting.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Seed the virtual clock (call once per run, before emission, with
    /// the run's master seed so timestamps are derivable from it).
    pub fn set_seed(&self, seed: u64) {
        self.vt_seed.store(seed, Ordering::Relaxed);
    }

    /// Change total ring capacity; trims existing shards if shrinking.
    pub fn set_capacity(&self, capacity: usize) {
        let per = capacity.div_ceil(N_SHARDS).max(1);
        self.cap_per_shard.store(per, Ordering::Relaxed);
        for shard in &self.shards {
            let mut ring = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while ring.len() > per {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current total ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap_per_shard.load(Ordering::Relaxed) * N_SHARDS
    }

    /// Events evicted so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events emitted so far (including any later evicted).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Record one event. When the log is disabled this is a single
    /// relaxed load; nothing else is touched. Returns the new event's id
    /// when recorded.
    #[inline]
    pub fn emit(
        &self,
        technique: Technique,
        kind: EventKind,
        subjects: Subjects,
        detail: &str,
    ) -> Option<EventId> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        Some(self.push(technique, kind, subjects, detail, false))
    }

    /// Open a campaign: emits a [`EventKind::CampaignStarted`] root event
    /// and makes it the parent of every event emitted on this thread
    /// while the returned scope lives. Nested campaigns chain (the inner
    /// root's parent is the outer root). Inert when disabled.
    pub fn campaign(&self, technique: Technique, detail: &str) -> CampaignScope {
        if !self.enabled.load(Ordering::Relaxed) {
            return CampaignScope { pushed: false };
        }
        self.push(
            technique,
            EventKind::CampaignStarted,
            Subjects::none(),
            detail,
            true,
        );
        CampaignScope { pushed: true }
    }

    /// Internal: allocate a sequence number, stamp, and store. When
    /// `open_campaign` is set, also push the new event onto the context
    /// stack as a campaign root.
    fn push(
        &self,
        technique: Technique,
        kind: EventKind,
        subjects: Subjects,
        detail: &str,
        open_campaign: bool,
    ) -> EventId {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let seed = self.vt_seed.load(Ordering::Relaxed);
        // Virtual clock: 8 ticks per event plus seed-derived sub-tick
        // jitter. Strictly monotone in seq; a different master seed
        // shifts every timestamp, which is exactly the "RNG-seeded, no
        // wall clock" property the determinism argument needs.
        let vt_us = seq * 8 + (mix64(seed ^ seq) & 7);
        let id = EventId(seq);
        let (trace, parent) = CTX.with(|c| match c.borrow().last() {
            Some(&(trace, root)) => (trace, Some(root)),
            // Standalone event (or campaign root at top level): it heads
            // its own chain, with a seed-derived trace id.
            None => (TraceId(mix64(seed ^ mix64(seq))), None),
        });
        if open_campaign {
            // The root heads a fresh chain at top level, or continues the
            // enclosing campaign's chain when nested.
            CTX.with(|c| c.borrow_mut().push((trace, id)));
        }
        let tid = TID.with(|t| *t);
        let rec = TraceRecord {
            id,
            trace,
            parent,
            technique,
            kind,
            vt_us,
            tid,
            subjects,
            detail: detail.to_string(),
        };
        let cap = self.cap_per_shard.load(Ordering::Relaxed);
        let mut ring = self.shards[seq as usize % N_SHARDS]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A thread can be descheduled between claiming `seq` and taking
        // the shard lock, arriving here after records with later ids.
        // Keep the ring sorted by id so eviction always removes the true
        // oldest survivor (the "newest `capacity` events win" guarantee
        // the concurrency tests assert).
        if ring.len() >= cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if ring.front().is_some_and(|f| rec.id < f.id) {
                // The straggler itself is the oldest: it is the eviction.
                return id;
            }
            ring.pop_front();
        }
        match ring.back() {
            // Hot path: ids arrive in order.
            Some(b) if rec.id < b.id => {
                let pos = ring.partition_point(|r| r.id < rec.id);
                ring.insert(pos, rec);
            }
            _ => ring.push_back(rec),
        }
        id
    }

    /// Freeze the surviving records, ascending by event id.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut records = Vec::new();
        for shard in &self.shards {
            let ring = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            records.extend(ring.iter().cloned());
        }
        records.sort_by_key(|r| r.id);
        TraceSnapshot {
            records,
            dropped_events: self.dropped.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }

    /// Discard all records and restart the sequence (and virtual clock)
    /// from zero. Enabled/seed/capacity settings persist.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

static GLOBAL_TRACE: OnceLock<TraceLog> = OnceLock::new();

/// The process-global trace log. Created lazily, **disabled** by default.
pub fn log() -> &'static TraceLog {
    GLOBAL_TRACE.get_or_init(|| TraceLog::new_disabled(DEFAULT_TRACE_CAPACITY))
}

/// Enable/disable the global trace log.
pub fn set_enabled(on: bool) {
    log().set_enabled(on);
}

/// Whether the global trace log is collecting.
#[inline]
pub fn enabled() -> bool {
    log().enabled()
}

/// Seed the global virtual clock from the run's master seed.
pub fn set_seed(seed: u64) {
    log().set_seed(seed);
}

/// Change the global ring capacity.
pub fn set_capacity(capacity: usize) {
    log().set_capacity(capacity);
}

/// Emit one event to the global log (single relaxed load when disabled).
///
/// While a capture scope ([`capture_begin`]) is active on this thread the
/// event is deferred instead of sequenced, and `None` is returned — no
/// caller in this workspace consumes the id, and deferred events receive
/// theirs at [`replay`].
#[inline]
pub fn emit(
    technique: Technique,
    kind: EventKind,
    subjects: Subjects,
    detail: &str,
) -> Option<EventId> {
    let l = log();
    if !l.enabled() {
        return None;
    }
    let deferred = CAPTURE.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(PendingEvent {
                technique,
                kind,
                subjects,
                detail: detail.to_string(),
            });
            true
        } else {
            false
        }
    });
    if deferred {
        return None;
    }
    l.emit(technique, kind, subjects, detail)
}

/// Open a campaign scope on the global log.
pub fn campaign(technique: Technique, detail: &str) -> CampaignScope {
    log().campaign(technique, detail)
}

/// Snapshot the global log.
pub fn snapshot() -> TraceSnapshot {
    log().snapshot()
}

/// Clear the global log and restart its virtual clock.
pub fn reset() {
    log().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::new_disabled(64);
        assert_eq!(
            log.emit(
                Technique::CacheProbe,
                EventKind::CacheHit,
                Subjects::none(),
                ""
            ),
            None
        );
        let _scope = log.campaign(Technique::CacheProbe, "c");
        assert!(log.snapshot().records.is_empty());
        assert_eq!(log.emitted(), 0);
    }

    #[test]
    fn events_inherit_campaign_causality() {
        let log = TraceLog::new(64);
        let root_trace;
        {
            let _c = log.campaign(Technique::TlsScan, "scan");
            log.emit(
                Technique::TlsScan,
                EventKind::CertMatched,
                Subjects::none().addr(0x0A000001),
                "issuer",
            );
            let snap = log.snapshot();
            root_trace = snap.records[0].trace;
        }
        // After the scope closes, emission is standalone again.
        log.emit(Technique::Other, EventKind::ProbeSent, Subjects::none(), "");
        let snap = log.snapshot();
        assert_eq!(snap.records.len(), 3);
        let root = &snap.records[0];
        let child = &snap.records[1];
        let loner = &snap.records[2];
        assert_eq!(root.kind, EventKind::CampaignStarted);
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(child.trace, root_trace);
        assert_eq!(loner.parent, None);
        assert_ne!(loner.trace, root_trace);
    }

    #[test]
    fn nested_campaigns_chain() {
        let log = TraceLog::new(64);
        let _outer = log.campaign(Technique::MapAssembly, "outer");
        let _inner = log.campaign(Technique::CacheProbe, "inner");
        log.emit(
            Technique::CacheProbe,
            EventKind::CacheHit,
            Subjects::none(),
            "",
        );
        let snap = log.snapshot();
        assert_eq!(snap.records[1].parent, Some(snap.records[0].id));
        assert_eq!(snap.records[2].parent, Some(snap.records[1].id));
        // One chain: the inner campaign inherits the outer trace id.
        assert_eq!(snap.records[2].trace, snap.records[0].trace);
    }

    #[test]
    fn virtual_time_is_monotone_and_seed_dependent() {
        let log = TraceLog::new(256);
        log.set_seed(7);
        for _ in 0..50 {
            log.emit(Technique::Other, EventKind::ProbeSent, Subjects::none(), "");
        }
        let a = log.snapshot();
        for w in a.records.windows(2) {
            assert!(w[0].vt_us < w[1].vt_us, "vt not strictly monotone");
        }
        log.reset();
        log.set_seed(8);
        for _ in 0..50 {
            log.emit(Technique::Other, EventKind::ProbeSent, Subjects::none(), "");
        }
        let b = log.snapshot();
        let ts_a: Vec<u64> = a.records.iter().map(|r| r.vt_us).collect();
        let ts_b: Vec<u64> = b.records.iter().map(|r| r.vt_us).collect();
        assert_ne!(ts_a, ts_b, "seed must perturb the virtual clock");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let log = TraceLog::new(N_SHARDS); // one slot per shard
        for i in 0..100u64 {
            log.emit(
                Technique::Other,
                EventKind::ProbeSent,
                Subjects::none(),
                &i.to_string(),
            );
        }
        let snap = log.snapshot();
        assert_eq!(snap.records.len(), N_SHARDS);
        assert_eq!(snap.dropped_events, 100 - N_SHARDS as u64);
        // Survivors are exactly the newest `capacity` events.
        for r in &snap.records {
            assert!(r.id.0 >= 100 - N_SHARDS as u64);
        }
    }

    #[test]
    fn shrinking_capacity_trims() {
        let log = TraceLog::new(64);
        for _ in 0..64 {
            log.emit(Technique::Other, EventKind::ProbeSent, Subjects::none(), "");
        }
        assert_eq!(log.dropped_events(), 0);
        log.set_capacity(N_SHARDS);
        let snap = log.snapshot();
        assert_eq!(snap.records.len(), N_SHARDS);
        assert_eq!(snap.dropped_events, 64 - N_SHARDS as u64);
    }

    #[test]
    fn reset_restarts_sequence() {
        let log = TraceLog::new(64);
        log.emit(Technique::Other, EventKind::ProbeSent, Subjects::none(), "");
        log.reset();
        log.emit(Technique::Other, EventKind::ProbeSent, Subjects::none(), "");
        let snap = log.snapshot();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].id, EventId(0));
    }

    #[test]
    fn addr_subject_renders_dotted() {
        assert_eq!(fmt_addr(0x0A01FE63), "10.1.254.99");
    }
}
