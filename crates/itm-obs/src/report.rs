//! The frozen, serializable view of a registry.

use crate::histogram::HistogramSnapshot;
use crate::resource::ResourceReport;
use crate::span::SpanSnapshot;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Everything a registry knew at snapshot time, keyed by series name.
///
/// All maps are `BTreeMap`s, so iteration — and therefore the JSON
/// rendering — is deterministically ordered regardless of registration
/// order or shard layout.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timings, keyed by nested path.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Resource accounting (RSS + tracked allocations). Populated only by
    /// the global [`crate::snapshot`] when allocation tracking is on;
    /// `None` keeps the JSON rendering byte-identical to pre-profiler
    /// reports.
    pub resources: Option<ResourceReport>,
}

impl MetricsReport {
    /// A counter's value, 0 if the series was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A labeled counter's value, 0 if absent.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counter(&crate::registry::canonical_name(name, labels))
    }

    /// Render as a JSON value (deterministic key order).
    pub fn to_json(&self) -> Value {
        let mut counters = serde_json::Map::new();
        for (name, v) in &self.counters {
            counters.insert(name.clone(), Value::from(*v));
        }
        let mut histograms = serde_json::Map::new();
        for (name, h) in &self.histograms {
            let buckets: Vec<Value> = h
                .buckets
                .iter()
                .map(|&(upper, count)| json!([upper, count]))
                .collect();
            histograms.insert(
                name.clone(),
                json!({
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.quantile(0.50),
                    "p90": h.quantile(0.90),
                    "p99": h.quantile(0.99),
                    "buckets": buckets,
                }),
            );
        }
        let mut spans = serde_json::Map::new();
        for (name, s) in &self.spans {
            spans.insert(
                name.clone(),
                json!({
                    "count": s.count,
                    "total_ns": s.total_ns,
                    "min_ns": s.min_ns,
                    "max_ns": s.max_ns,
                }),
            );
        }
        Value::Object({
            let mut root = serde_json::Map::new();
            root.insert("counters".into(), Value::Object(counters));
            root.insert("histograms".into(), Value::Object(histograms));
            // Only present when resource profiling ran: absent-key (not
            // null) keeps unprofiled reports byte-identical to pre-PR 6.
            if let Some(resources) = &self.resources {
                root.insert("resources".into(), resources.to_json());
            }
            root.insert("spans".into(), Value::Object(spans));
            root
        })
    }
}

impl serde_json::Serialize for MetricsReport {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_is_deterministically_ordered() {
        let r = Registry::new();
        // Register in non-alphabetical order.
        r.counter("z.last").inc();
        r.counter("a.first").add(2);
        r.histogram("m.h").record(5);
        drop(r.span("p.span"));
        let text = serde_json::to_string(&r.snapshot().to_json()).unwrap();
        let z = text.find("z.last").unwrap();
        let a = text.find("a.first").unwrap();
        assert!(a < z, "keys not sorted: {text}");
        // Two snapshots render identically (timings aside, counters do).
        let again = serde_json::to_string(&r.snapshot().to_json()).unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn histogram_json_carries_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [1u64, 2, 4, 8, 100, 1000] {
            h.record(v);
        }
        let text = serde_json::to_string(&r.snapshot().to_json()).unwrap();
        for key in ["\"p50\":", "\"p90\":", "\"p99\":"] {
            assert!(text.contains(key), "{key} missing in {text}");
        }
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let r = Registry::new();
        let snap = r.snapshot();
        assert_eq!(snap.counter("never.registered"), 0);
        assert_eq!(snap.counter_with("n", &[("a", "b")]), 0);
    }
}
