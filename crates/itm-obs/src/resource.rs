//! The resource section of a metrics snapshot: OS-reported RSS plus the
//! allocator-tracked accounting from [`crate::alloc`].
//!
//! RSS comes from `/proc/self/status` (`VmHWM` / `VmRSS`), so the two
//! fields are `None` off Linux — and, like wall-clock span timings, they
//! are *not* deterministic. The tracked-allocation fields are: totals and
//! counts reproduce exactly for a deterministic workload (peaks only on a
//! single thread; see `alloc` module docs).

use crate::alloc::{AllocStats, PhaseAllocStats};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Frozen resource accounting attached to a [`crate::MetricsReport`] when
/// allocation tracking is enabled.
#[derive(Debug, Clone, Default)]
pub struct ResourceReport {
    /// Peak resident set size (`VmHWM`), bytes. `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
    /// Current resident set size (`VmRSS`), bytes. `None` off Linux.
    pub current_rss_bytes: Option<u64>,
    /// Process-wide allocator-tracked accounting.
    pub alloc: AllocStats,
    /// Per-phase accounting, keyed by phase (= span path) name.
    pub phases: BTreeMap<String, PhaseAllocStats>,
}

impl ResourceReport {
    /// Snapshot the current process: tracked counters from
    /// [`crate::alloc`] plus RSS from the OS.
    ///
    /// The allocator counters are frozen *first*: reading procfs
    /// allocates (and `/proc/self/status` varies in length with the RSS
    /// digit count), so sampling it earlier would leak run-dependent
    /// bytes into totals that must reproduce exactly.
    pub fn collect() -> ResourceReport {
        let alloc = crate::alloc::stats();
        let phases = crate::alloc::phase_stats().into_iter().collect();
        let (peak_rss_bytes, current_rss_bytes) = read_proc_rss();
        ResourceReport {
            peak_rss_bytes,
            current_rss_bytes,
            alloc,
            phases,
        }
    }

    /// The top `n` phases by total bytes allocated, descending (name ties
    /// break alphabetically, so the order is deterministic).
    pub fn top_phases(&self, n: usize) -> Vec<(&str, &PhaseAllocStats)> {
        let mut phases: Vec<_> = self.phases.iter().collect();
        phases.sort_by(|a, b| b.1.total_bytes.cmp(&a.1.total_bytes).then(a.0.cmp(b.0)));
        phases
            .into_iter()
            .take(n)
            .map(|(name, s)| (name.as_str(), s))
            .collect()
    }

    /// Render as a JSON value (deterministic key order; RSS fields are
    /// `null` when unavailable).
    pub fn to_json(&self) -> Value {
        let mut phases = serde_json::Map::new();
        for (name, p) in &self.phases {
            phases.insert(
                name.clone(),
                json!({
                    "current_bytes": p.current_bytes,
                    "peak_bytes": p.peak_bytes,
                    "total_bytes": p.total_bytes,
                    "allocs": p.allocs,
                }),
            );
        }
        Value::Object({
            let mut root = serde_json::Map::new();
            root.insert("peak_rss_bytes".into(), opt(self.peak_rss_bytes));
            root.insert("current_rss_bytes".into(), opt(self.current_rss_bytes));
            root.insert(
                "tracked".into(),
                json!({
                    "current_bytes": self.alloc.current_bytes,
                    "peak_bytes": self.alloc.peak_bytes,
                    "total_bytes": self.alloc.total_bytes,
                    "allocs": self.alloc.allocs,
                    "deallocs": self.alloc.deallocs,
                }),
            );
            root.insert("phases".into(), Value::Object(phases));
            root
        })
    }
}

fn opt(v: Option<u64>) -> Value {
    match v {
        Some(v) => Value::from(v),
        None => Value::Null,
    }
}

/// `(VmHWM, VmRSS)` in bytes from `/proc/self/status`, `(None, None)`
/// where procfs is absent.
pub fn read_proc_rss() -> (Option<u64>, Option<u64>) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (None, None);
    };
    (
        parse_status_kb(&status, "VmHWM:").map(|kb| kb * 1024),
        parse_status_kb(&status, "VmRSS:").map(|kb| kb * 1024),
    )
}

/// Parse a `Key:   1234 kB` line out of `/proc/self/status` text.
fn parse_status_kb(status: &str, key: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::PhaseAllocStats;

    #[test]
    fn parse_status_lines() {
        let status = "Name:\trepro\nVmHWM:\t  204800 kB\nVmRSS:\t  102400 kB\n";
        assert_eq!(parse_status_kb(status, "VmHWM:"), Some(204800));
        assert_eq!(parse_status_kb(status, "VmRSS:"), Some(102400));
        assert_eq!(parse_status_kb(status, "VmSwap:"), None);
    }

    #[test]
    fn proc_rss_reads_on_linux() {
        let (hwm, rss) = read_proc_rss();
        if cfg!(target_os = "linux") {
            assert!(hwm.unwrap() > 0);
            assert!(rss.unwrap() > 0);
            assert!(hwm.unwrap() >= rss.unwrap());
        }
    }

    #[test]
    fn top_phases_sorts_by_total_then_name() {
        let mut report = ResourceReport::default();
        for (name, total) in [("b", 100u64), ("a", 100), ("c", 500), ("d", 1)] {
            report.phases.insert(
                name.into(),
                PhaseAllocStats {
                    total_bytes: total,
                    ..Default::default()
                },
            );
        }
        let top: Vec<&str> = report.top_phases(3).iter().map(|(n, _)| *n).collect();
        assert_eq!(top, ["c", "a", "b"]);
    }

    #[test]
    fn json_renders_null_rss_when_absent() {
        let report = ResourceReport::default();
        let text = serde_json::to_string(&report.to_json()).unwrap();
        assert!(text.contains("\"peak_rss_bytes\":null"), "{text}");
        assert!(text.contains("\"tracked\""), "{text}");
    }
}
