//! Provenance: from an asserted map edge back to the observations that
//! justify it.
//!
//! Map assembly emits one [`EventKind::EdgeAsserted`] event per
//! user-prefix → service cell it writes. The [`ProvenanceIndex`] is built
//! *post hoc* from a [`TraceSnapshot`] — emission stays cheap and the
//! pipeline's result types stay clean — by joining every edge against the
//! observation events that share its subjects:
//!
//! * prefix-scoped evidence: ECS-scoped answers and cache hits for the
//!   same `/24` (how the user side of the edge was measured);
//! * endpoint-scoped evidence: certificate / SNI matches, off-net
//!   detections and authoritative answers for the same front-end address
//!   (how the service side was identified);
//! * AS-scoped evidence: route resolutions for the serving AS (how the
//!   edge is reachable).
//!
//! Span and campaign bookkeeping events are never evidence; cache
//! *misses* are excluded too (absence of an answer justifies nothing), as
//! are fault-injection events ([`EventKind::ProbeFailed`] /
//! [`EventKind::ProbeRetried`]) — a lost probe justifies no edge. Fault
//! events are instead queryable through [`ProvenanceIndex::failures`],
//! which explains why an *expected* edge is missing from a degraded run.

use crate::trace::{EventKind, Subjects, TraceRecord, TraceSnapshot};
use std::collections::BTreeMap;

/// An asserted edge plus the observation events supporting it, ascending
/// by event id (= emission order).
#[derive(Debug, Clone)]
pub struct EvidenceChain {
    /// The [`EventKind::EdgeAsserted`] record being explained.
    pub edge: TraceRecord,
    /// Supporting observations, oldest first.
    pub evidence: Vec<TraceRecord>,
}

/// Render one record as a single human-readable line.
fn fmt_record(r: &TraceRecord) -> String {
    let mut line = format!(
        "#{:<6} t={}µs  {}/{}",
        r.id.0,
        r.vt_us,
        r.technique.as_str(),
        r.kind.as_str()
    );
    line.push_str(&fmt_subjects(&r.subjects));
    if !r.detail.is_empty() {
        line.push_str(&format!(" {:?}", r.detail));
    }
    line
}

/// Render subjects as ` pfx12 svc3 AS17 addr=10.0.0.1 pop4`.
fn fmt_subjects(s: &Subjects) -> String {
    let mut out = String::new();
    if let Some(p) = s.prefix {
        out.push_str(&format!(" pfx{p}"));
    }
    if let Some(v) = s.service {
        out.push_str(&format!(" svc{v}"));
    }
    if let Some(a) = s.asn {
        out.push_str(&format!(" AS{a}"));
    }
    if let Some(a) = s.addr {
        out.push_str(&format!(" addr={}", crate::trace::fmt_addr(a)));
    }
    if let Some(p) = s.pop {
        out.push_str(&format!(" pop{p}"));
    }
    out
}

/// Maximum evidence lines [`EvidenceChain::render`] prints before
/// summarizing the remainder. A dense front-end can accumulate hundreds
/// of corroborating observations; a human only needs the first screenful.
const RENDER_EVIDENCE_CAP: usize = 12;

impl EvidenceChain {
    /// Multi-line human-readable rendering: the edge, then each piece of
    /// evidence indented beneath it. Long chains are truncated to
    /// [`RENDER_EVIDENCE_CAP`] lines with a trailing count.
    pub fn render(&self) -> String {
        let e = &self.edge;
        let mut out = format!(
            "edge:{} [{} {}]\n",
            fmt_subjects(&e.subjects),
            e.technique.as_str(),
            fmt_record(e).trim_start(),
        );
        if self.evidence.is_empty() {
            out.push_str("  (no surviving evidence — ring capacity exceeded?)\n");
        } else {
            out.push_str(&format!("  evidence ({} events):\n", self.evidence.len()));
            for r in self.evidence.iter().take(RENDER_EVIDENCE_CAP) {
                out.push_str("    ");
                out.push_str(&fmt_record(r));
                out.push('\n');
            }
            let hidden = self.evidence.len().saturating_sub(RENDER_EVIDENCE_CAP);
            if hidden > 0 {
                out.push_str(&format!("    … and {hidden} more events\n"));
            }
        }
        out
    }
}

/// Queryable index over a frozen trace.
///
/// Beyond the raw record list it keeps three inverted indices (by prefix,
/// by endpoint address, by serving AS) so [`ProvenanceIndex::explain_edge`]
/// touches only candidate records instead of scanning the whole ring —
/// explaining every edge of a full run stays cheap.
#[derive(Debug, Clone)]
pub struct ProvenanceIndex {
    records: Vec<TraceRecord>,
    /// Observation records carrying a prefix subject, by prefix.
    by_prefix: BTreeMap<u32, Vec<usize>>,
    /// Endpoint-identification records (cert/SNI/off-net/authoritative),
    /// by front-end address.
    by_addr: BTreeMap<u32, Vec<usize>>,
    /// Route-resolution records, by AS.
    by_route_asn: BTreeMap<u32, Vec<usize>>,
}

/// Whether a record can serve as evidence for some edge at all.
fn is_observation(r: &TraceRecord) -> bool {
    !matches!(
        r.kind,
        EventKind::EdgeAsserted
            | EventKind::CampaignStarted
            | EventKind::SpanBegin
            | EventKind::SpanEnd
            | EventKind::CacheMiss
            | EventKind::ProbeFailed
            | EventKind::ProbeRetried
    )
}

/// Event kinds that identify the service side of an edge by front-end
/// address.
fn is_endpoint_kind(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::CertMatched
            | EventKind::SniMatched
            | EventKind::OffnetDetected
            | EventKind::AuthAnswer
    )
}

impl ProvenanceIndex {
    /// Build the index from a snapshot.
    pub fn build(snap: &TraceSnapshot) -> ProvenanceIndex {
        let records = snap.records.clone();
        let mut by_prefix: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut by_addr: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut by_route_asn: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            if !is_observation(r) {
                continue;
            }
            if let Some(p) = r.subjects.prefix {
                by_prefix.entry(p).or_default().push(i);
            }
            if let Some(a) = r.subjects.addr {
                if is_endpoint_kind(r.kind) {
                    by_addr.entry(a).or_default().push(i);
                }
            }
            if let Some(a) = r.subjects.asn {
                if r.kind == EventKind::RouteResolved {
                    by_route_asn.entry(a).or_default().push(i);
                }
            }
        }
        ProvenanceIndex {
            records,
            by_prefix,
            by_addr,
            by_route_asn,
        }
    }

    /// All asserted edges, in emission order.
    pub fn edges(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.kind == EventKind::EdgeAsserted)
    }

    /// Explain the edge for `(prefix, service)` (raw ids), if it was
    /// asserted and survived in the ring.
    pub fn explain(&self, prefix: u32, service: u32) -> Option<EvidenceChain> {
        let edge = self
            .records
            .iter()
            .find(|r| {
                r.kind == EventKind::EdgeAsserted
                    && r.subjects.prefix == Some(prefix)
                    && r.subjects.service == Some(service)
            })?
            .clone();
        Some(self.explain_edge(&edge))
    }

    /// Collect the evidence chain for an edge record.
    ///
    /// Three joins, all against the inverted indices:
    ///
    /// * prefix side — measurements of the same /24, either about this
    ///   very service or service-agnostic (cache-probe discovery);
    /// * endpoint side — identifications of the serving front-end
    ///   address; a service-carrying event (AuthAnswer) must be about
    ///   *this* service — the same front-end serves many domains and
    ///   answers for the others prove nothing;
    /// * route side — route resolutions for the serving AS.
    pub fn explain_edge(&self, edge: &TraceRecord) -> EvidenceChain {
        let svc = edge.subjects.service;
        let service_compatible = |i: &usize| -> bool {
            let s = self.records[*i].subjects.service;
            s == svc || s.is_none()
        };
        let mut hits: Vec<usize> = Vec::new();
        if let Some(p) = edge.subjects.prefix {
            if let Some(v) = self.by_prefix.get(&p) {
                hits.extend(v.iter().filter(|i| service_compatible(i)));
            }
        }
        if let Some(a) = edge.subjects.addr {
            if let Some(v) = self.by_addr.get(&a) {
                hits.extend(v.iter().filter(|i| service_compatible(i)));
            }
        }
        if let Some(a) = edge.subjects.asn {
            if let Some(v) = self.by_route_asn.get(&a) {
                hits.extend(v.iter());
            }
        }
        // A record can land in several indices (an off-net detection has
        // both a prefix and an address); present it once, oldest first.
        hits.sort_unstable();
        hits.dedup();
        EvidenceChain {
            edge: edge.clone(),
            evidence: hits.into_iter().map(|i| self.records[i].clone()).collect(),
        }
    }

    /// Fault events touching `(prefix, service)` (raw ids), in emission
    /// order: every [`EventKind::ProbeFailed`] or
    /// [`EventKind::ProbeRetried`] record about this prefix, or about this
    /// service at this prefix. This is the negative-space counterpart of
    /// [`ProvenanceIndex::explain`]: when no edge was asserted for a cell,
    /// these records say which probes were lost or degraded on the way.
    pub fn failures(&self, prefix: u32, service: u32) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.kind, EventKind::ProbeFailed | EventKind::ProbeRetried))
            .filter(|r| {
                let p = r.subjects.prefix;
                let s = r.subjects.service;
                p == Some(prefix) && (s == Some(service) || s.is_none())
                    || p.is_none() && s == Some(service)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Subjects, Technique, TraceLog};

    fn sample_log() -> TraceLog {
        let log = TraceLog::new(256);
        {
            let _c = log.campaign(Technique::CacheProbe, "probe");
            log.emit(
                Technique::CacheProbe,
                EventKind::CacheHit,
                Subjects::none().prefix(12).service(3),
                "svc3.example",
            );
            log.emit(
                Technique::CacheProbe,
                EventKind::CacheMiss,
                Subjects::none().prefix(12).service(4),
                "svc4.example",
            );
        }
        {
            let _c = log.campaign(Technique::EcsMapping, "map");
            log.emit(
                Technique::EcsMapping,
                EventKind::EcsScopedAnswer,
                Subjects::none().prefix(12).service(3).addr(0x0A000001),
                "svc3.example",
            );
        }
        log.emit(
            Technique::TlsScan,
            EventKind::CertMatched,
            Subjects::none().addr(0x0A000001).asn(17),
            "issuer: hg0",
        );
        // Same front-end answering authoritatively for a *different*
        // service: must not count as evidence for the svc3 edge.
        log.emit(
            Technique::Dns,
            EventKind::AuthAnswer,
            Subjects::none().service(9).addr(0x0A000001),
            "svc9.example",
        );
        log.emit(
            Technique::Routing,
            EventKind::RouteResolved,
            Subjects::none().asn(17),
            "",
        );
        log.emit(
            Technique::MapAssembly,
            EventKind::EdgeAsserted,
            Subjects::none()
                .prefix(12)
                .service(3)
                .addr(0x0A000001)
                .asn(17),
            "",
        );
        log
    }

    #[test]
    fn explain_joins_all_three_sides() {
        let idx = ProvenanceIndex::build(&sample_log().snapshot());
        let chain = idx.explain(12, 3).expect("edge exists");
        let kinds: Vec<EventKind> = chain.evidence.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&EventKind::CacheHit));
        assert!(kinds.contains(&EventKind::EcsScopedAnswer));
        assert!(kinds.contains(&EventKind::CertMatched));
        assert!(kinds.contains(&EventKind::RouteResolved));
        // Misses and bookkeeping are never evidence.
        assert!(!kinds.contains(&EventKind::CacheMiss));
        assert!(!kinds.contains(&EventKind::CampaignStarted));
        // The AuthAnswer for another service at the same address is
        // excluded by the service-compatibility side of the addr join.
        assert!(!kinds.contains(&EventKind::AuthAnswer));
        assert!(chain.evidence.iter().all(|r| r.subjects.service != Some(9)));
        // Emission order preserved.
        for w in chain.evidence.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn explain_unknown_edge_is_none() {
        let idx = ProvenanceIndex::build(&sample_log().snapshot());
        assert!(idx.explain(99, 3).is_none());
        assert!(idx.explain(12, 99).is_none());
    }

    #[test]
    fn render_is_human_readable() {
        let idx = ProvenanceIndex::build(&sample_log().snapshot());
        let text = idx.explain(12, 3).unwrap().render();
        assert!(text.contains("pfx12"), "{text}");
        assert!(text.contains("svc3"), "{text}");
        assert!(text.contains("AS17"), "{text}");
        assert!(text.contains("10.0.0.1"), "{text}");
        assert!(text.contains("ecs_mapping/EcsScopedAnswer"), "{text}");
        assert!(text.lines().count() >= 4, "{text}");
    }

    #[test]
    fn edges_iterates_assertions() {
        let idx = ProvenanceIndex::build(&sample_log().snapshot());
        assert_eq!(idx.edges().count(), 1);
    }

    #[test]
    fn fault_events_are_not_evidence_but_explain_missing_edges() {
        let log = sample_log();
        log.emit(
            Technique::CacheProbe,
            EventKind::ProbeFailed,
            Subjects::none().prefix(12).service(3),
            "loss after 2 retries",
        );
        log.emit(
            Technique::EcsMapping,
            EventKind::ProbeRetried,
            Subjects::none().prefix(12),
            "retries=1 backoff=3s",
        );
        // Fault event for a different prefix: not part of this cell.
        log.emit(
            Technique::CacheProbe,
            EventKind::ProbeFailed,
            Subjects::none().prefix(44).service(3),
            "timeout",
        );
        let idx = ProvenanceIndex::build(&log.snapshot());
        let chain = idx.explain(12, 3).expect("edge exists");
        assert!(chain
            .evidence
            .iter()
            .all(|r| !matches!(r.kind, EventKind::ProbeFailed | EventKind::ProbeRetried)));
        let failures = idx.failures(12, 3);
        assert_eq!(failures.len(), 2, "prefix-scoped fault events only");
        assert!(failures.iter().any(|r| r.detail.contains("loss")));
        for w in failures.windows(2) {
            assert!(w[0].id < w[1].id);
        }
        assert_eq!(idx.failures(99, 98).len(), 0);
    }
}
