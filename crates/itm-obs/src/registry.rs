//! The metric registry: sharded name→handle maps plus the enable gate.
//!
//! Registration (first lookup of a name) takes a shard mutex; every
//! subsequent operation goes through a cheap cloned handle that touches
//! only atomics. Sixteen shards keep concurrent registration from
//! different subsystems off a single lock.

use crate::histogram::{Histogram, HistogramInner};
use crate::report::MetricsReport;
use crate::span::{SpanGuard, SpanStats};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const N_SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<String, Arc<HistogramInner>>>,
    spans: Mutex<HashMap<String, Arc<SpanStats>>>,
}

/// A monotonic counter handle. Cloning is cheap (two `Arc`s); all clones
/// address the same series.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A registry of counters, histograms, and span timings.
///
/// [`crate::global`] returns the process-wide instance; tests may build
/// private ones so their assertions are immune to concurrent global use.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    shards: Vec<Shard>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry with collection enabled.
    pub fn new() -> Registry {
        Registry::with_enabled(true)
    }

    /// A registry with collection disabled (the global default).
    pub fn new_disabled() -> Registry {
        Registry::with_enabled(false)
    }

    fn with_enabled(on: bool) -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(on)),
            shards: (0..N_SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// Turn collection on or off. Handles already handed out observe the
    /// change immediately (they share the flag).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether collection is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[fnv1a(name) as usize % N_SHARDS]
    }

    /// Fetch-or-register a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.shard(name).counters.lock();
        let value = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            value,
            enabled: self.enabled.clone(),
        }
    }

    /// Fetch-or-register a labeled counter; see [`canonical_name`].
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&canonical_name(name, labels))
    }

    /// Fetch-or-register a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.shard(name).histograms.lock();
        let inner = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramInner::new()))
            .clone();
        Histogram::new(inner, self.enabled.clone())
    }

    /// Open a scoped span timer; see [`SpanGuard`].
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(self, name)
    }

    pub(crate) fn record_span(&self, path: &str, elapsed_ns: u64) {
        let stats = {
            let mut map = self.shard(path).spans.lock();
            map.entry(path.to_string())
                .or_insert_with(|| Arc::new(SpanStats::new()))
                .clone()
        };
        stats.record(elapsed_ns);
    }

    /// Freeze every series into a deterministically-ordered report.
    pub fn snapshot(&self) -> MetricsReport {
        let mut report = MetricsReport::default();
        for shard in &self.shards {
            for (name, v) in shard.counters.lock().iter() {
                report
                    .counters
                    .insert(name.clone(), v.load(Ordering::Relaxed));
            }
            for (name, h) in shard.histograms.lock().iter() {
                report.histograms.insert(name.clone(), h.snapshot());
            }
            for (name, s) in shard.spans.lock().iter() {
                report.spans.insert(name.clone(), s.snapshot());
            }
        }
        report
    }

    /// Zero every series in place. Handles stay valid and keep counting.
    pub fn reset(&self) {
        for shard in &self.shards {
            for v in shard.counters.lock().values() {
                v.store(0, Ordering::Relaxed);
            }
            for h in shard.histograms.lock().values() {
                h.reset();
            }
            for s in shard.spans.lock().values() {
                s.reset();
            }
        }
    }
}

/// Render `name{k1="v1",k2="v2"}` with labels sorted by key. Idempotent
/// for a given label set, so it is safe to use as a series identity.
pub fn canonical_name(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_share_series() {
        let r = Registry::new();
        let a = r.counter("x.y");
        let b = r.counter("x.y");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counters["x.y"], 5);
    }

    #[test]
    fn disabled_registry_drops_increments() {
        let r = Registry::new_disabled();
        let c = r.counter("quiet");
        c.inc();
        assert_eq!(c.get(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn labels_are_canonicalized() {
        assert_eq!(
            canonical_name("dns.queries", &[("technique", "cache_probe")]),
            "dns.queries{technique=\"cache_probe\"}"
        );
        // Order-insensitive.
        let r = Registry::new();
        let a = r.counter_with("m", &[("b", "2"), ("a", "1")]);
        let b = r.counter_with("m", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.snapshot().counters["m{a=\"1\",b=\"2\"}"], 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("z");
        c.add(7);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
