//! Fixed log₂-bucket histograms.
//!
//! Bucket 0 holds zeros; bucket `b ≥ 1` holds values in
//! `[2^(b−1), 2^b − 1]`. Sixty-five buckets therefore cover every `u64`
//! with ≤2× relative error — plenty for fan-out counts, byte costs, and
//! latencies, and recording is branch-free (`leading_zeros` + one atomic
//! add per bucket/aggregate).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

pub(crate) const N_BUCKETS: usize = 65;

pub(crate) struct HistogramInner {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new() -> HistogramInner {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper(b), c))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `b`.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A histogram handle; clones address the same series.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    pub(crate) fn new(inner: Arc<HistogramInner>, enabled: Arc<AtomicBool>) -> Histogram {
        Histogram { inner, enabled }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.inner.record(v);
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (wraps only past `u64::MAX` total).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `(inclusive_upper_bound, count)` for each non-empty bucket,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the covering log₂ bucket, Prometheus
    /// `histogram_quantile` style. The estimate is clamped to the
    /// observed `[min, max]`, so exact-at-the-edges quantiles (q=0, q=1)
    /// and single-bucket histograms return true observed bounds. Returns
    /// 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            if seen + n >= target {
                // Lower inclusive bound of a log₂ bucket from its upper:
                // [0,0], [1,1], [2,3], [4,7], … — halve-and-add-one.
                let lower = if upper == 0 { 0 } else { (upper >> 1) + 1 };
                let frac = (target - seen) as f64 / n as f64;
                let est = lower as f64 + frac * (upper - lower) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn snapshot_aggregates() {
        let h = HistogramInner::new();
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 105);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (3, 1), (127, 1)]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = HistogramInner::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Log₂ buckets bound relative error by 2×; interpolation does
        // much better on a uniform fill.
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = s.quantile(q) as f64;
            assert!(
                (got / expect - 1.0).abs() < 0.35,
                "q{q}: got {got}, expect ~{expect}"
            );
        }
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = HistogramInner::new();
        h.record(100);
        let s = h.snapshot();
        // One observation: every quantile is that observation.
        assert_eq!(s.quantile(0.5), 100);
        assert_eq!(s.quantile(0.99), 100);
        assert_eq!(HistogramInner::new().snapshot().quantile(0.5), 0);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = HistogramInner::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
    }
}
