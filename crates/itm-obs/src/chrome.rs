//! Chrome trace-format export.
//!
//! Renders a [`TraceSnapshot`] as the JSON Object Format consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of phase events. [`EventKind::SpanBegin`] /
//! [`EventKind::SpanEnd`] records become duration events (`ph: "B"/"E"`,
//! nested per thread — synthesized from the [`crate::SpanGuard`] stack),
//! and every other kind becomes a thread-scoped instant event
//! (`ph: "i"`, `s: "t"`) carrying its causality ids and subjects in
//! `args`. Timestamps are the records' virtual microseconds, so the
//! exported file is deterministic for a fixed seed.
//!
//! The ring buffer can evict a `SpanBegin` while its newer `SpanEnd`
//! survives (eviction is oldest-first); the exporter drops such orphaned
//! ends, and closes any still-open begins at the trace's end, so the
//! B/E stream is always balanced and loads without errors.

use crate::trace::{EventKind, TraceRecord, TraceSnapshot};
use serde_json::{json, Map, Value};
use std::collections::HashMap;

/// Render one record's subjects/causality as a Chrome `args` object.
fn args_of(r: &TraceRecord) -> Value {
    let mut m = Map::new();
    m.insert("id".into(), Value::from(r.id.0));
    m.insert("trace".into(), Value::from(format!("{:016x}", r.trace.0)));
    if let Some(p) = r.parent {
        m.insert("parent".into(), Value::from(p.0));
    }
    if let Some(p) = r.subjects.prefix {
        m.insert("prefix".into(), Value::from(format!("pfx{p}")));
    }
    if let Some(s) = r.subjects.service {
        m.insert("service".into(), Value::from(format!("svc{s}")));
    }
    if let Some(a) = r.subjects.asn {
        m.insert("asn".into(), Value::from(format!("AS{a}")));
    }
    if let Some(a) = r.subjects.addr {
        m.insert("addr".into(), Value::from(crate::trace::fmt_addr(a)));
    }
    if let Some(p) = r.subjects.pop {
        m.insert("pop".into(), Value::from(format!("pop{p}")));
    }
    if !r.detail.is_empty() {
        m.insert("detail".into(), Value::from(r.detail.clone()));
    }
    Value::Object(m)
}

/// Convert a snapshot into a Chrome trace-format JSON value.
pub fn chrome_trace(snap: &TraceSnapshot) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(snap.records.len());
    // Per-tid stack of open span names, for B/E balancing.
    let mut open: HashMap<u32, Vec<(String, Value)>> = HashMap::new();
    let mut last_ts = 0u64;

    for r in &snap.records {
        last_ts = last_ts.max(r.vt_us);
        match r.kind {
            EventKind::SpanBegin => {
                let ev = json!({
                    "name": r.detail.clone(),
                    "cat": r.technique.as_str(),
                    "ph": "B",
                    "ts": r.vt_us,
                    "pid": 1,
                    "tid": r.tid,
                    "args": args_of(r),
                });
                open.entry(r.tid)
                    .or_default()
                    .push((r.detail.clone(), ev.clone()));
                events.push(ev);
            }
            EventKind::SpanEnd => {
                // Only close a span that is actually open on this thread;
                // an orphaned end (its begin was evicted) is dropped.
                let stack = open.entry(r.tid).or_default();
                if stack.last().map(|(n, _)| n == &r.detail).unwrap_or(false) {
                    stack.pop();
                    events.push(json!({
                        "name": r.detail.clone(),
                        "cat": r.technique.as_str(),
                        "ph": "E",
                        "ts": r.vt_us,
                        "pid": 1,
                        "tid": r.tid,
                    }));
                }
            }
            _ => {
                events.push(json!({
                    "name": r.kind.as_str(),
                    "cat": r.technique.as_str(),
                    "ph": "i",
                    "ts": r.vt_us,
                    "pid": 1,
                    "tid": r.tid,
                    "s": "t",
                    "args": args_of(r),
                }));
            }
        }
    }

    // Close any spans still open (their end was emitted after the
    // snapshot, or never) so viewers see balanced durations.
    let mut tids: Vec<u32> = open.keys().copied().collect();
    tids.sort_unstable();
    for tid in tids {
        let stack = open.remove(&tid).unwrap_or_default();
        for (name, _) in stack.into_iter().rev() {
            last_ts += 1;
            events.push(json!({
                "name": name,
                "cat": "span",
                "ph": "E",
                "ts": last_ts,
                "pid": 1,
                "tid": tid,
            }));
        }
    }

    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_events": snap.dropped_events,
            "capacity": snap.capacity,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Subjects, Technique, TraceLog};

    #[test]
    fn spans_become_balanced_duration_events() {
        let log = TraceLog::new(256);
        log.emit(
            Technique::Span,
            EventKind::SpanBegin,
            Subjects::none(),
            "build",
        );
        log.emit(
            Technique::Span,
            EventKind::SpanBegin,
            Subjects::none(),
            "build/topology",
        );
        log.emit(
            Technique::Span,
            EventKind::SpanEnd,
            Subjects::none(),
            "build/topology",
        );
        log.emit(
            Technique::Span,
            EventKind::SpanEnd,
            Subjects::none(),
            "build",
        );
        let v = chrome_trace(&log.snapshot());
        let events = match v.get("traceEvents") {
            Some(Value::Array(a)) => a,
            _ => panic!("traceEvents missing"),
        };
        let phases: Vec<&str> = events
            .iter()
            .map(|e| match e.get("ph") {
                Some(Value::String(s)) => s.as_str(),
                _ => panic!("ph missing"),
            })
            .collect();
        assert_eq!(phases, ["B", "B", "E", "E"]);
    }

    #[test]
    fn orphaned_ends_dropped_open_begins_closed() {
        let log = TraceLog::new(256);
        // An end with no begin (begin evicted), then a begin never ended.
        log.emit(
            Technique::Span,
            EventKind::SpanEnd,
            Subjects::none(),
            "ghost",
        );
        log.emit(
            Technique::Span,
            EventKind::SpanBegin,
            Subjects::none(),
            "open",
        );
        let v = chrome_trace(&log.snapshot());
        let events = match v.get("traceEvents") {
            Some(Value::Array(a)) => a,
            _ => panic!("traceEvents missing"),
        };
        let mut depth = 0i64;
        for e in events {
            match e.get("ph") {
                Some(Value::String(s)) if s == "B" => depth += 1,
                Some(Value::String(s)) if s == "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced E");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unclosed B events");
    }

    #[test]
    fn instants_carry_subjects_and_scope() {
        let log = TraceLog::new(256);
        log.emit(
            Technique::EcsMapping,
            EventKind::EcsScopedAnswer,
            Subjects::none().prefix(12).service(3).addr(0x0A000001),
            "svc3.example",
        );
        let v = chrome_trace(&log.snapshot());
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains("\"ph\":\"i\""), "{text}");
        assert!(text.contains("\"s\":\"t\""), "{text}");
        assert!(text.contains("pfx12"), "{text}");
        assert!(text.contains("svc3"), "{text}");
        assert!(text.contains("10.0.0.1"), "{text}");
        assert!(text.contains("displayTimeUnit"), "{text}");
    }
}
