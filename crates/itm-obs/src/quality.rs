//! Truth-conditioned map-quality scoring: the data model.
//!
//! The map is assembled from several partial measurement views — the
//! "five blind men" problem: each technique sees a slice of the truth,
//! and where the slices overlap they may disagree. Because the synthetic
//! substrate knows the ground truth, every technique's view can be scored
//! exactly. This module holds the *scoring machinery* in substrate-free
//! form (raw `u32` subject ids, the same interning convention as the
//! [`crate::provenance`] index and the trace [`crate::trace::Subjects`]):
//! the sweep that enumerates cells and computes claims lives in
//! `itm-core::audit`, which owns the ground truth.
//!
//! Three kinds of aggregate:
//!
//! * [`TechniqueScore`] / [`TechniqueAudit`] — per-technique verdict
//!   accounting. Every cell of a technique's universe receives exactly
//!   one [`Verdict`]: **asserted** (claimed, and the claim matches the
//!   truth), **contradicted** (claimed, and the claim is wrong), or
//!   **silent** (no claim), so `asserted + contradicted + silent ==
//!   cells` always holds. Precision, recall and coverage derive from the
//!   three counters. Audits carry marginal breakdowns by service class
//!   and by prefix population tier.
//! * [`DisagreementIndex`] — the per-cell disagreement index: for every
//!   cell, how many techniques claimed a replica assignment, how many
//!   distinct answers they gave, and which technique dissents from the
//!   plurality.
//! * [`PairwiseAgreement`] — for every technique pair, over the cells
//!   both claimed, how often they named the same replica.
//!
//! All containers are `BTreeMap`s and all outputs are emitted in sorted
//! key order, so a [`QualityReport`]'s JSON is a pure function of its
//! content — byte-identical across runs and thread counts.

use serde_json::Value;
use std::collections::BTreeMap;

/// Schema version stamped on [`QualityReport`] JSON.
pub const QUALITY_SCHEMA_VERSION: u64 = 1;

/// The outcome of scoring one technique on one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The technique claimed this cell and the claim matches the truth.
    Asserted,
    /// The technique claimed this cell and the claim is wrong.
    Contradicted,
    /// The technique made no claim about this cell.
    Silent,
}

impl Verdict {
    /// Stable lower-case name used in exports and `--explain` output.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Asserted => "asserted",
            Verdict::Contradicted => "contradicted",
            Verdict::Silent => "silent",
        }
    }
}

/// Verdict counters for one technique over one cell population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TechniqueScore {
    /// Cells scored (the technique's universe, or one breakdown slice).
    pub cells: u64,
    /// Claimed and correct.
    pub asserted: u64,
    /// Claimed and wrong.
    pub contradicted: u64,
    /// Not claimed.
    pub silent: u64,
    /// Cells where the ground truth holds the property the technique
    /// measures (the recall denominator): all cells for replica
    /// techniques, truly-populated cells for presence techniques, true
    /// links for route techniques.
    pub truth_cells: u64,
}

impl TechniqueScore {
    /// Count one cell's verdict. `truth_relevant` marks cells that enter
    /// the recall denominator.
    pub fn record(&mut self, verdict: Verdict, truth_relevant: bool) {
        self.cells += 1;
        if truth_relevant {
            self.truth_cells += 1;
        }
        match verdict {
            Verdict::Asserted => self.asserted += 1,
            Verdict::Contradicted => self.contradicted += 1,
            Verdict::Silent => self.silent += 1,
        }
    }

    /// `asserted / (asserted + contradicted)`; 0 when nothing was claimed.
    pub fn precision(&self) -> f64 {
        ratio(self.asserted, self.asserted + self.contradicted)
    }

    /// `asserted / truth_cells`; 0 when the truth holds nothing.
    pub fn recall(&self) -> f64 {
        ratio(self.asserted, self.truth_cells)
    }

    /// `(asserted + contradicted) / cells`: how much of the universe the
    /// technique speaks about at all.
    pub fn coverage(&self) -> f64 {
        ratio(self.asserted + self.contradicted, self.cells)
    }

    /// The accounting invariant every score must satisfy.
    pub fn is_consistent(&self) -> bool {
        self.asserted + self.contradicted + self.silent == self.cells
    }

    fn to_json_value(self) -> Value {
        serde_json::json!({
            "cells": (self.cells),
            "asserted": (self.asserted),
            "contradicted": (self.contradicted),
            "silent": (self.silent),
            "truth_cells": (self.truth_cells),
            "precision": (self.precision()),
            "recall": (self.recall()),
            "coverage": (self.coverage()),
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One technique's full audit: overall score plus marginal breakdowns.
#[derive(Debug, Clone, Default)]
pub struct TechniqueAudit {
    /// Which plane the technique measures (`replica`, `presence`,
    /// `routes`). Informational; drives no logic here.
    pub plane: String,
    /// Verdicts over the whole universe.
    pub overall: TechniqueScore,
    /// Marginal breakdown by service class (empty for route techniques).
    pub by_service_class: BTreeMap<String, TechniqueScore>,
    /// Marginal breakdown by prefix population tier (empty for route
    /// techniques).
    pub by_population_tier: BTreeMap<String, TechniqueScore>,
}

impl TechniqueAudit {
    /// A fresh audit for one plane.
    pub fn new(plane: &str) -> TechniqueAudit {
        TechniqueAudit {
            plane: plane.to_string(),
            ..TechniqueAudit::default()
        }
    }

    /// Count one cell, attributing it to a service class and a population
    /// tier when the plane has them.
    pub fn record(
        &mut self,
        class: Option<&str>,
        tier: Option<&str>,
        verdict: Verdict,
        truth_relevant: bool,
    ) {
        self.overall.record(verdict, truth_relevant);
        if let Some(c) = class {
            self.by_service_class
                .entry(c.to_string())
                .or_default()
                .record(verdict, truth_relevant);
        }
        if let Some(t) = tier {
            self.by_population_tier
                .entry(t.to_string())
                .or_default()
                .record(verdict, truth_relevant);
        }
    }

    fn to_json_value(&self) -> Value {
        let breakdown = |m: &BTreeMap<String, TechniqueScore>| -> Value {
            Value::Object(
                m.iter()
                    .map(|(k, v)| (k.clone(), v.to_json_value()))
                    .collect(),
            )
        };
        let mut v = self.overall.to_json_value();
        if let Value::Object(ref mut obj) = v {
            obj.insert("plane".into(), Value::from(self.plane.as_str()));
            obj.insert("by_service_class".into(), breakdown(&self.by_service_class));
            obj.insert(
                "by_population_tier".into(),
                breakdown(&self.by_population_tier),
            );
        }
        v
    }
}

/// Per-cell disagreement accounting over the independent replica
/// estimators.
///
/// For each cell, callers pass the list of `(technique, claimed subject)`
/// pairs. The index records how many techniques spoke, how many distinct
/// answers they gave, and — for cells with two or more claimants — which
/// techniques dissent from the plurality answer (ties broken toward the
/// smallest subject id, for determinism).
#[derive(Debug, Clone, Default)]
pub struct DisagreementIndex {
    /// Cells with at least one claim.
    pub cells_claimed: u64,
    /// Cells with ≥2 claimants, all naming the same replica.
    pub unanimous: u64,
    /// Cells with ≥2 claimants naming ≥2 distinct replicas.
    pub split: u64,
    /// Histogram keyed `(claimants, distinct answers)` → cell count.
    pub histogram: BTreeMap<(u8, u8), u64>,
    /// Per-technique count of cells where its claim differs from the
    /// plurality answer.
    pub dissent: BTreeMap<String, u64>,
}

impl DisagreementIndex {
    /// Record one cell's claims: `(technique name, claimed subject id)`.
    /// Cells with no claims are not recorded (they carry no agreement
    /// signal).
    pub fn observe(&mut self, claims: &[(&str, u32)]) {
        if claims.is_empty() {
            return;
        }
        self.cells_claimed += 1;
        let plurality = plurality_of(claims);
        let mut distinct: Vec<u32> = claims.iter().map(|&(_, a)| a).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let claimants = claims.len().min(u8::MAX as usize) as u8;
        let n_distinct = distinct.len().min(u8::MAX as usize) as u8;
        *self.histogram.entry((claimants, n_distinct)).or_default() += 1;
        if claims.len() >= 2 {
            if n_distinct == 1 {
                self.unanimous += 1;
            } else {
                self.split += 1;
            }
        }
        for &(name, asn) in claims {
            if asn != plurality {
                *self.dissent.entry(name.to_string()).or_default() += 1;
            }
        }
    }

    fn to_json_value(&self) -> Value {
        let histogram: Vec<Value> = self
            .histogram
            .iter()
            .map(|(&(claimants, distinct), &cells)| {
                serde_json::json!({
                    "claimants": (u64::from(claimants)),
                    "distinct": (u64::from(distinct)),
                    "cells": (cells),
                })
            })
            .collect();
        serde_json::json!({
            "cells_claimed": (self.cells_claimed),
            "unanimous": (self.unanimous),
            "split": (self.split),
            "histogram": (Value::Array(histogram)),
            "dissent": (Value::Object(
                self.dissent
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::from(v)))
                    .collect(),
            )),
        })
    }
}

/// The plurality answer of a claim list: the most-voted subject id, ties
/// broken toward the smallest id.
fn plurality_of(claims: &[(&str, u32)]) -> u32 {
    let mut votes: BTreeMap<u32, u32> = BTreeMap::new();
    for &(_, a) in claims {
        *votes.entry(a).or_default() += 1;
    }
    let mut best = (0u32, 0u32); // (votes, subject); BTreeMap ascends, so
                                 // first max wins = smallest subject.
    for (&subject, &n) in &votes {
        if n > best.0 {
            best = (n, subject);
        }
    }
    best.1
}

/// Pairwise technique agreement over jointly-claimed cells.
#[derive(Debug, Clone, Default)]
pub struct PairwiseAgreement {
    /// `(a, b)` with `a < b` → `(both claimed, agreed)`.
    pub pairs: BTreeMap<(String, String), (u64, u64)>,
}

impl PairwiseAgreement {
    /// Record one cell's claims (same shape as
    /// [`DisagreementIndex::observe`]).
    pub fn observe(&mut self, claims: &[(&str, u32)]) {
        for (i, &(na, aa)) in claims.iter().enumerate() {
            for &(nb, ab) in claims.iter().skip(i + 1) {
                let key = if na <= nb {
                    (na.to_string(), nb.to_string())
                } else {
                    (nb.to_string(), na.to_string())
                };
                let slot = self.pairs.entry(key).or_default();
                slot.0 += 1;
                if aa == ab {
                    slot.1 += 1;
                }
            }
        }
    }

    fn to_json_value(&self) -> Value {
        let rows: Vec<Value> = self
            .pairs
            .iter()
            .map(|((a, b), &(both, agree))| {
                serde_json::json!({
                    "a": (a.as_str()),
                    "b": (b.as_str()),
                    "both_claimed": (both),
                    "agreed": (agree),
                    "rate": (ratio(agree, both)),
                })
            })
            .collect();
        Value::Array(rows)
    }
}

/// The complete quality report: everything `repro --audit` writes to
/// `results/map_quality.json` (minus the optional `faults` section, which
/// the caller attaches exactly as it does for the map summary).
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    /// Substrate master seed (provenance).
    pub seed: u64,
    /// Services in the audited cell universe.
    pub services: u64,
    /// Prefixes in the audited cell universe.
    pub prefixes: u64,
    /// Total cells (`services × prefixes`).
    pub cells: u64,
    /// Population-tier thresholds used for the tier breakdown: user
    /// counts at the 50th and 90th percentile of populated prefixes.
    pub tier_p50: f64,
    /// See [`QualityReport::tier_p50`].
    pub tier_p90: f64,
    /// Per-technique audits, keyed by technique name.
    pub techniques: BTreeMap<String, TechniqueAudit>,
    /// The per-cell disagreement index over independent replica
    /// estimators.
    pub disagreement: DisagreementIndex,
    /// Pairwise agreement over replica estimators (including the fused
    /// map view).
    pub pairwise: PairwiseAgreement,
}

impl QualityReport {
    /// Whether every technique satisfies the accounting invariant
    /// `asserted + contradicted + silent == cells`, overall and in every
    /// breakdown slice.
    pub fn is_consistent(&self) -> bool {
        self.techniques.values().all(|t| {
            t.overall.is_consistent()
                && t.by_service_class.values().all(|s| s.is_consistent())
                && t.by_population_tier.values().all(|s| s.is_consistent())
        })
    }

    /// Deterministic JSON rendering (sorted keys throughout).
    pub fn to_json_value(&self) -> Value {
        serde_json::json!({
            "schema_version": (QUALITY_SCHEMA_VERSION),
            "seed": (self.seed),
            "universe": (serde_json::json!({
                "services": (self.services),
                "prefixes": (self.prefixes),
                "cells": (self.cells),
            })),
            "population_tier_thresholds": (serde_json::json!({
                "p50_users": (self.tier_p50),
                "p90_users": (self.tier_p90),
            })),
            "techniques": (Value::Object(
                self.techniques
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json_value()))
                    .collect(),
            )),
            "disagreement": (self.disagreement.to_json_value()),
            "pairwise_agreement": (self.pairwise.to_json_value()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_accounting_invariant() {
        let mut s = TechniqueScore::default();
        s.record(Verdict::Asserted, true);
        s.record(Verdict::Contradicted, true);
        s.record(Verdict::Silent, true);
        s.record(Verdict::Silent, false);
        assert!(s.is_consistent());
        assert_eq!(s.cells, 4);
        assert_eq!(s.truth_cells, 3);
        assert!((s.precision() - 0.5).abs() < 1e-12);
        assert!((s.recall() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_score_has_zero_rates() {
        let s = TechniqueScore::default();
        assert!(s.is_consistent());
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.coverage(), 0.0);
    }

    #[test]
    fn audit_breakdowns_sum_to_overall() {
        let mut a = TechniqueAudit::new("replica");
        a.record(Some("ecs_dns"), Some("t3_high"), Verdict::Asserted, true);
        a.record(Some("ecs_dns"), Some("t1_low"), Verdict::Silent, true);
        a.record(
            Some("anycast"),
            Some("t3_high"),
            Verdict::Contradicted,
            true,
        );
        assert_eq!(a.overall.cells, 3);
        let class_sum: u64 = a.by_service_class.values().map(|s| s.cells).sum();
        let tier_sum: u64 = a.by_population_tier.values().map(|s| s.cells).sum();
        assert_eq!(class_sum, 3);
        assert_eq!(tier_sum, 3);
        assert_eq!(a.by_service_class["ecs_dns"].asserted, 1);
        assert_eq!(a.by_population_tier["t3_high"].contradicted, 1);
    }

    #[test]
    fn disagreement_counts_split_and_dissent() {
        let mut d = DisagreementIndex::default();
        // Unanimous pair.
        d.observe(&[("ecs", 17), ("anycast", 17)]);
        // Split 2-1: plurality is 17, tls dissents.
        d.observe(&[("ecs", 17), ("catalog_prior", 17), ("tls_nearest", 23)]);
        // Single claimant: counted, but neither unanimous nor split.
        d.observe(&[("ecs", 5)]);
        // No claims: ignored.
        d.observe(&[]);
        assert_eq!(d.cells_claimed, 3);
        assert_eq!(d.unanimous, 1);
        assert_eq!(d.split, 1);
        assert_eq!(d.histogram[&(2, 1)], 1);
        assert_eq!(d.histogram[&(3, 2)], 1);
        assert_eq!(d.histogram[&(1, 1)], 1);
        assert_eq!(d.dissent.get("tls_nearest"), Some(&1));
        assert_eq!(d.dissent.get("ecs"), None);
    }

    #[test]
    fn plurality_tie_breaks_toward_smallest_subject() {
        let mut d = DisagreementIndex::default();
        d.observe(&[("a", 9), ("b", 3)]);
        // 1-1 tie → plurality 3, so "a" (claiming 9) dissents.
        assert_eq!(d.dissent.get("a"), Some(&1));
        assert_eq!(d.dissent.get("b"), None);
    }

    #[test]
    fn pairwise_agreement_is_order_independent() {
        let mut p = PairwiseAgreement::default();
        p.observe(&[("ecs", 17), ("anycast", 17), ("tls_nearest", 23)]);
        p.observe(&[("anycast", 4), ("ecs", 4)]);
        let key = ("anycast".to_string(), "ecs".to_string());
        assert_eq!(p.pairs[&key], (2, 2));
        let key2 = ("ecs".to_string(), "tls_nearest".to_string());
        assert_eq!(p.pairs[&key2], (1, 0));
    }

    #[test]
    fn report_json_is_deterministic_and_consistent() {
        let mut r = QualityReport {
            seed: 42,
            services: 2,
            prefixes: 3,
            cells: 6,
            ..QualityReport::default()
        };
        let mut t = TechniqueAudit::new("replica");
        for _ in 0..6 {
            t.record(Some("ecs_dns"), Some("t1_low"), Verdict::Asserted, true);
        }
        r.techniques.insert("ecs".into(), t);
        assert!(r.is_consistent());
        let a = serde_json::to_string_pretty(&r.to_json_value()).unwrap();
        let b = serde_json::to_string_pretty(&r.to_json_value()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"schema_version\""), "{a}");
        assert!(a.contains("\"pairwise_agreement\""), "{a}");
    }

    #[test]
    fn inconsistent_score_is_detected() {
        let mut r = QualityReport::default();
        let mut t = TechniqueAudit::new("presence");
        t.overall.cells = 5; // counters left at zero: broken accounting
        r.techniques.insert("cache_probe".into(), t);
        assert!(!r.is_consistent());
    }
}
