//! Instrumented global-allocator wrapper with per-phase attribution.
//!
//! [`TrackingAlloc`] wraps the system allocator and, when tracking is
//! enabled, maintains deterministic byte/count accounting: a process-wide
//! current/peak/total plus a fixed table of **phase** slots. The phase a
//! thread is currently in is a thread-local set by [`PhaseGuard`]s —
//! [`crate::SpanGuard`] installs one automatically, so the existing span
//! annotations (`map.build/cache_probe.run`, …) double as allocation
//! attribution with no extra call sites.
//!
//! Three properties the rest of the workspace depends on:
//!
//! * **Zero behavioral footprint.** The wrapper forwards every call to
//!   `std::alloc::System` unchanged; whether tracking is on or off, every
//!   caller gets the same pointers, so enabling profiling cannot change
//!   any program output (the byte-identity contract all `itm-obs` layers
//!   share).
//! * **Disabled cost is one relaxed load.** The hot path is
//!   `ENABLED.load(Relaxed)` and a branch; no counters are touched.
//! * **No allocation inside the allocator.** The record path uses only
//!   atomics and a const-initialized `Cell` thread-local (no `Drop`, no
//!   lazy init), so it cannot recurse. Phase *registration* (which
//!   allocates a name) happens in [`register_phase`], always outside the
//!   allocator.
//!
//! Determinism: totals (`total_bytes`, `allocs`, `deallocs`) are sums
//! over the set of allocations performed, so they are reproducible for a
//! deterministic workload at any thread count. `current`/`peak` depend on
//! the *interleaving* of allocations, so they are reproducible only on a
//! single thread — `repro --bench-record` therefore defaults to
//! `--threads 1` (see DESIGN.md §11).

// This module is the single place in the workspace allowed to touch the
// raw allocator interface (lint rule D005 — the allocator equivalent of
// D004's executor allowlist).
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct phases the fixed attribution table holds.
/// Registration past the cap falls back to unattributed (global-only)
/// accounting rather than failing.
pub const PHASE_CAP: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

// Process-wide accounting.
static CURRENT: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// One phase slot's accounting. `current` is signed: a phase may free
/// memory another phase allocated (merge steps routinely do), so its net
/// can dip below zero; snapshots clamp at 0.
struct PhaseSlot {
    current: AtomicI64,
    peak: AtomicI64,
    total: AtomicU64,
    allocs: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const PHASE_SLOT_INIT: PhaseSlot = PhaseSlot {
    current: AtomicI64::new(0),
    peak: AtomicI64::new(0),
    total: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
};

static PHASES: [PhaseSlot; PHASE_CAP] = [PHASE_SLOT_INIT; PHASE_CAP];

/// Number of registered phases (indexes `0..N_PHASES` of [`PHASES`] are
/// live).
static N_PHASES: AtomicUsize = AtomicUsize::new(0);

/// Registered phase names, index-aligned with [`PHASES`]. Only touched by
/// [`register_phase`] / [`snapshot`] / [`reset`] — never from inside the
/// allocator.
static PHASE_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

thread_local! {
    /// The phase the current thread attributes allocations to, as
    /// `slot index + 1` (0 = unattributed). Const-initialized `Cell` with
    /// no destructor: reading it from inside the allocator cannot
    /// allocate or recurse.
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(0) };
}

/// Turn allocation tracking on or off. Off is the default; when off the
/// allocator's overhead is a single relaxed load per call.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation tracking is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Register (or look up) a phase by name, returning its slot index.
/// Returns `None` once [`PHASE_CAP`] distinct names exist — allocations
/// then stay unattributed rather than misattributed. Never call from
/// inside the allocator (it allocates).
pub fn register_phase(name: &str) -> Option<usize> {
    let mut names = PHASE_NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(i) = names.iter().position(|n| n == name) {
        return Some(i);
    }
    if names.len() >= PHASE_CAP {
        return None;
    }
    names.push(name.to_string());
    let i = names.len() - 1;
    N_PHASES.store(names.len(), Ordering::Release);
    Some(i)
}

/// RAII guard making `phase` the current thread's attribution target.
/// Restores the previous phase on drop, so guards nest like spans.
pub struct PhaseGuard {
    prev: usize,
}

/// Enter a phase slot on this thread (see [`register_phase`]).
pub fn enter_phase(slot: usize) -> PhaseGuard {
    let prev = CURRENT_PHASE.with(|c| c.replace(slot + 1));
    PhaseGuard { prev }
}

/// The slot index of this thread's current phase, if any — used by the
/// shard executor to propagate the caller's phase onto worker threads.
pub fn current_phase() -> Option<usize> {
    let raw = CURRENT_PHASE.with(Cell::get);
    (raw > 0).then(|| raw - 1)
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        CURRENT_PHASE.with(|c| c.set(self.prev));
    }
}

/// Record one allocation of `size` bytes. Atomics only; never allocates.
#[inline]
fn on_alloc(size: usize) {
    let size = size as u64;
    TOTAL.fetch_add(size, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let cur = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK.fetch_max(cur, Ordering::Relaxed);
    let phase = CURRENT_PHASE.with(Cell::get);
    if phase > 0 {
        let slot = &PHASES[phase - 1];
        slot.total.fetch_add(size, Ordering::Relaxed);
        slot.allocs.fetch_add(1, Ordering::Relaxed);
        let cur = slot.current.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        slot.peak.fetch_max(cur, Ordering::Relaxed);
    }
}

/// Record one deallocation of `size` bytes. Atomics only; never allocates.
#[inline]
fn on_dealloc(size: usize) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
    let phase = CURRENT_PHASE.with(Cell::get);
    if phase > 0 {
        PHASES[phase - 1]
            .current
            .fetch_sub(size as i64, Ordering::Relaxed);
    }
}

/// The instrumented allocator. Install as the program's global allocator
/// to activate tracking support:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: itm_obs::alloc::TrackingAlloc = itm_obs::alloc::TrackingAlloc::new();
/// ```
///
/// Tracking still starts **disabled**; flip it with
/// [`set_enabled`]. Binaries that never install the wrapper simply report
/// zero tracked bytes.
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// The wrapper (const, so it can initialize a `static`).
    pub const fn new() -> TrackingAlloc {
        TrackingAlloc
    }
}

impl Default for TrackingAlloc {
    fn default() -> Self {
        TrackingAlloc::new()
    }
}

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged; the accounting on the side touches only atomics and a
// const-init thread-local, so it cannot allocate, unwind, or alias the
// returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Ordering::Relaxed) {
            on_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Frozen process-wide allocation accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently live (allocated minus freed since the last reset;
    /// clamped at 0 if frees of pre-reset memory outnumber allocations).
    pub current_bytes: u64,
    /// High-water mark of `current_bytes`.
    pub peak_bytes: u64,
    /// Total bytes ever allocated (monotone).
    pub total_bytes: u64,
    /// Allocation calls.
    pub allocs: u64,
    /// Deallocation calls.
    pub deallocs: u64,
}

/// Frozen accounting for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAllocStats {
    /// Net live bytes attributed to the phase (clamped at 0: a phase may
    /// free memory another phase allocated).
    pub current_bytes: u64,
    /// High-water mark of the phase's net live bytes.
    pub peak_bytes: u64,
    /// Total bytes the phase allocated.
    pub total_bytes: u64,
    /// Allocation calls made while the phase was current.
    pub allocs: u64,
}

/// Snapshot the process-wide counters.
pub fn stats() -> AllocStats {
    AllocStats {
        current_bytes: CURRENT.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK.load(Ordering::Relaxed).max(0) as u64,
        total_bytes: TOTAL.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
    }
}

/// Snapshot every registered phase as `(name, stats)`, in registration
/// order.
pub fn phase_stats() -> Vec<(String, PhaseAllocStats)> {
    let names = PHASE_NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let slot = &PHASES[i];
            (
                name.clone(),
                PhaseAllocStats {
                    current_bytes: slot.current.load(Ordering::Relaxed).max(0) as u64,
                    peak_bytes: slot.peak.load(Ordering::Relaxed).max(0) as u64,
                    total_bytes: slot.total.load(Ordering::Relaxed),
                    allocs: slot.allocs.load(Ordering::Relaxed),
                },
            )
        })
        .collect()
}

/// Zero every counter and forget all phase registrations. Call between
/// measurement windows (e.g. once per `--bench-record` size) so each
/// window's numbers stand alone.
pub fn reset() {
    // Take the registration lock for the whole reset so a concurrent
    // `register_phase` cannot interleave with the slot zeroing.
    let mut names = PHASE_NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    CURRENT.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
    TOTAL.store(0, Ordering::Relaxed);
    ALLOCS.store(0, Ordering::Relaxed);
    DEALLOCS.store(0, Ordering::Relaxed);
    for slot in &PHASES {
        slot.current.store(0, Ordering::Relaxed);
        slot.peak.store(0, Ordering::Relaxed);
        slot.total.store(0, Ordering::Relaxed);
        slot.allocs.store(0, Ordering::Relaxed);
    }
    names.clear();
    N_PHASES.store(0, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run without the wrapper installed (unit tests share the
    // harness allocator), so they drive the accounting entry points
    // directly; `itm-obs/tests/alloc_tracking.rs` covers the installed
    // path end to end.

    #[test]
    fn phase_guards_nest_and_restore() {
        reset();
        let a = register_phase("alpha").unwrap();
        let b = register_phase("beta").unwrap();
        assert_eq!(register_phase("alpha"), Some(a));
        {
            let _ga = enter_phase(a);
            assert_eq!(current_phase(), Some(a));
            {
                let _gb = enter_phase(b);
                assert_eq!(current_phase(), Some(b));
            }
            assert_eq!(current_phase(), Some(a));
        }
        assert_eq!(current_phase(), None);
    }

    #[test]
    fn accounting_attributes_to_current_phase() {
        reset();
        let p = register_phase("campaign").unwrap();
        {
            let _g = enter_phase(p);
            on_alloc(1000);
            on_alloc(24);
            on_dealloc(24);
        }
        on_alloc(7); // unattributed
        let s = stats();
        assert_eq!(s.total_bytes, 1031);
        assert_eq!(s.allocs, 3);
        assert_eq!(s.deallocs, 1);
        assert_eq!(s.current_bytes, 1007);
        assert!(s.peak_bytes >= 1024);
        let phases = phase_stats();
        assert_eq!(phases.len(), 1);
        let (name, ps) = &phases[0];
        assert_eq!(name, "campaign");
        assert_eq!(ps.total_bytes, 1024);
        assert_eq!(ps.allocs, 2);
        assert_eq!(ps.current_bytes, 1000);
        assert_eq!(ps.peak_bytes, 1024);
        reset();
        assert_eq!(stats(), AllocStats::default());
        assert!(phase_stats().is_empty());
    }

    #[test]
    fn cross_phase_frees_clamp_at_zero() {
        reset();
        let p = register_phase("freer").unwrap();
        {
            let _g = enter_phase(p);
            on_dealloc(512); // frees memory some other phase allocated
        }
        let (_, ps) = &phase_stats()[0];
        assert_eq!(ps.current_bytes, 0, "net must clamp, not wrap");
        reset();
    }

    #[test]
    fn registration_caps_and_falls_back() {
        reset();
        for i in 0..PHASE_CAP {
            assert!(register_phase(&format!("p{i}")).is_some());
        }
        assert_eq!(register_phase("one-too-many"), None);
        // Existing names still resolve at the cap.
        assert_eq!(register_phase("p0"), Some(0));
        reset();
    }
}
