//! # itm-serve — zero-copy queries over a map snapshot
//!
//! The paper's end goal is "a continuously updated map of the Internet"
//! that researchers and operators *query*, not a one-shot batch artifact.
//! This crate is that serving layer: it opens the snapshot file written by
//! `repro --snapshot` (format: [`itm_types::snap`], DESIGN.md §14) and
//! answers the map's three question families directly off the file bytes —
//!
//! * **point**: which replica serves prefix X for service Y, and which
//!   techniques back that claim ([`Snapshot::point`]);
//! * **reverse**: which ⟨service, prefix⟩ cells a front-end address serves
//!   ([`Snapshot::reverse`]);
//! * **route**: an AS's adjacency and the relationship on a specific edge
//!   ([`Snapshot::neighbors`], [`Snapshot::edge`]);
//! * **diff**: the structural delta between two snapshots of the same
//!   universe — cells added/removed/moved, route edges changed, each with
//!   technique provenance ([`MapDiff`], the `repro --diff` backend).
//!
//! Every query is offset arithmetic plus binary search over the loaded
//! bytes: nothing is deserialized into owned structures, so open cost is
//! one read + one validation pass and the resident set is the file itself.
//! The sections are 8-byte aligned and little-endian precisely so this
//! works equally well over a memory mapping; with the workspace offline
//! (no mmap crate), [`Snapshot::open`] reads the file into a `Vec<u8>` and
//! the query paths are byte-offset-based either way.
//!
//! Validation happens once, at open: the whole-file checksum (any single
//! corrupted byte is a hard error), presence and element sizes of all
//! sections, monotonicity of every offset array, sortedness of every
//! binary-searched column, and UTF-8 of the domain table. After that, the
//! query methods never panic and never re-validate.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod diff;

pub use diff::{decode_cells, decode_routes, CellDelta, DiffError, MapDiff, RouteDelta};

use itm_types::snap::{self, claim, section, SectionEntry, SnapError};
use itm_types::{Asn, Ipv4Addr, Ipv4Net, PrefixId, ServiceId};

/// Locate a section by id in a parsed directory.
fn find(dir: &[SectionEntry], id: u32) -> Option<&SectionEntry> {
    dir.iter().find(|e| e.id == id)
}

/// Located section: byte offset + element count, validated at open.
#[derive(Debug, Clone, Copy)]
struct Sec {
    off: usize,
    count: usize,
}

/// Width in bytes of one element of a section.
fn elem_size(id: u32) -> usize {
    match id {
        section::META | section::CELL_SVC_OFF | section::ROUTE_OFF => 8,
        section::DOM_BYTES | section::CELL_BITS | section::ROUTE_KIND => 1,
        _ => 4,
    }
}

/// The answer to a point lookup: the serving replica for one
/// ⟨service, prefix⟩ mapping cell, with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointAnswer {
    /// The front-end address the map asserts serves this cell.
    pub addr: Ipv4Addr,
    /// The AS hosting that front-end, when the address resolves to a
    /// routed prefix.
    pub front_as: Option<Asn>,
    /// Technique claim bitmap for the cell (see [`itm_types::snap::claim`]).
    pub claim_bits: u8,
}

impl PointAnswer {
    /// Names of the measurement techniques backing this cell, in bit order.
    pub fn techniques(&self) -> Vec<&'static str> {
        claim::names(self.claim_bits)
    }
}

/// An opened, validated map snapshot. All queries are zero-copy reads
/// against the underlying bytes.
#[derive(Debug)]
pub struct Snapshot {
    bytes: Vec<u8>,
    meta: [u64; snap::META_FIELDS],
    dom_off: Sec,
    dom_bytes: Sec,
    dom_sorted: Sec,
    pfx_base: Sec,
    pfx_owner: Sec,
    pfx_sorted: Sec,
    cell_svc_off: Sec,
    cell_prefix: Sec,
    cell_addr: Sec,
    cell_bits: Sec,
    cell_rev: Sec,
    front_addr: Sec,
    front_owner: Sec,
    route_off: Sec,
    route_nbr: Sec,
    route_kind: Sec,
}

/// All sections a v1 snapshot must carry, in id order.
const REQUIRED: [u32; 17] = [
    section::META,
    section::DOM_OFF,
    section::DOM_BYTES,
    section::DOM_SORTED,
    section::PFX_BASE,
    section::PFX_OWNER,
    section::PFX_SORTED,
    section::CELL_SVC_OFF,
    section::CELL_PREFIX,
    section::CELL_ADDR,
    section::CELL_BITS,
    section::CELL_REV,
    section::FRONT_ADDR,
    section::FRONT_OWNER,
    section::ROUTE_OFF,
    section::ROUTE_NBR,
    section::ROUTE_KIND,
];

impl Snapshot {
    /// Read and validate a snapshot file.
    pub fn open(path: &str) -> Result<Snapshot, SnapError> {
        let bytes = std::fs::read(path).map_err(|e| SnapError::Io {
            detail: format!("{path}: {e}"),
        })?;
        Snapshot::from_bytes(bytes)
    }

    /// Validate snapshot bytes and take ownership of them.
    ///
    /// Checks, beyond the header/checksum validation of
    /// [`snap::parse_dir`]: every required section is present with the
    /// right element size; section counts agree with the META counts;
    /// every offset array is monotone with the right endpoints; every
    /// binary-searched column is sorted; the domain table is NUL-delimited
    /// valid UTF-8; and every cross-section index is in range.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapError> {
        let dir = snap::parse_dir(&bytes)?;
        let mut secs = [Sec { off: 0, count: 0 }; REQUIRED.len()];
        for (k, id) in REQUIRED.iter().enumerate() {
            let e = find(&dir, *id).ok_or(SnapError::MissingSection { id: *id })?;
            let size = elem_size(*id) as u64;
            if e.len != e.count.saturating_mul(size) {
                return Err(SnapError::BadSection {
                    id: *id,
                    reason: "length disagrees with element count",
                });
            }
            secs[k] = Sec {
                off: e.offset as usize,
                count: e.count as usize,
            };
        }
        let [meta_sec, dom_off, dom_bytes, dom_sorted, pfx_base, pfx_owner, pfx_sorted, cell_svc_off, cell_prefix, cell_addr, cell_bits, cell_rev, front_addr, front_owner, route_off, route_nbr, route_kind] =
            secs;

        if meta_sec.count != snap::META_FIELDS {
            return Err(SnapError::BadSection {
                id: section::META,
                reason: "wrong field count",
            });
        }
        let mut meta = [0u64; snap::META_FIELDS];
        for (k, m) in meta.iter_mut().enumerate() {
            *m = snap::read_u64(&bytes, meta_sec.off + k * 8).unwrap_or(0);
        }
        let [_seed, n_ases, n_prefixes, n_services, n_cells, n_route_entries, n_fronts] = meta;

        let want = [
            (dom_off, n_services + 1, "domain offsets"),
            (dom_sorted, n_services, "domain sort index"),
            (pfx_base, n_prefixes, "prefix bases"),
            (pfx_owner, n_prefixes, "prefix owners"),
            (pfx_sorted, n_prefixes, "prefix sort index"),
            (cell_svc_off, n_services + 1, "cell service offsets"),
            (cell_prefix, n_cells, "cell prefixes"),
            (cell_addr, n_cells, "cell addresses"),
            (cell_bits, n_cells, "cell claim bits"),
            (cell_rev, n_cells, "cell reverse index"),
            (front_addr, n_fronts, "front addresses"),
            (front_owner, n_fronts, "front owners"),
            (route_off, n_ases + 1, "route offsets"),
            (route_nbr, n_route_entries, "route neighbors"),
            (route_kind, n_route_entries, "route kinds"),
        ];
        for (sec, expect, what) in want {
            if sec.count as u64 != expect {
                return Err(SnapError::Malformed { what });
            }
        }

        let s = Snapshot {
            bytes,
            meta,
            dom_off,
            dom_bytes,
            dom_sorted,
            pfx_base,
            pfx_owner,
            pfx_sorted,
            cell_svc_off,
            cell_prefix,
            cell_addr,
            cell_bits,
            cell_rev,
            front_addr,
            front_owner,
            route_off,
            route_nbr,
            route_kind,
        };
        s.validate_contents()?;
        Ok(s)
    }

    /// Semantic validation of section contents (see [`Snapshot::from_bytes`]).
    fn validate_contents(&self) -> Result<(), SnapError> {
        let malformed = |what| Err(SnapError::Malformed { what });

        // Domain table: monotone offsets ending exactly at the byte pool,
        // each name NUL-terminated, the whole pool valid UTF-8.
        if self.u32_in(self.dom_off, 0) != 0 {
            return malformed("domain offsets do not start at 0");
        }
        for sid in 0..self.n_services() {
            let a = self.u32_in(self.dom_off, sid) as usize;
            let b = self.u32_in(self.dom_off, sid + 1) as usize;
            if b <= a || b > self.dom_bytes.count {
                return malformed("domain offsets not monotone");
            }
            if self.u8_in(self.dom_bytes, b - 1) != 0 {
                return malformed("domain name missing NUL terminator");
            }
        }
        if self.u32_in(self.dom_off, self.n_services()) as usize != self.dom_bytes.count {
            return malformed("domain offsets do not cover the byte pool");
        }
        let pool = self
            .bytes
            .get(self.dom_bytes.off..self.dom_bytes.off + self.dom_bytes.count)
            .unwrap_or(&[]);
        if std::str::from_utf8(pool).is_err() {
            return malformed("domain table is not UTF-8");
        }
        for k in 0..self.dom_sorted.count {
            if self.u32_in(self.dom_sorted, k) as usize >= self.n_services() {
                return malformed("domain sort index out of range");
            }
        }

        // Prefix columns: the sort index must be in range and order the
        // bases it points at nondecreasing.
        let mut prev_base = 0u32;
        for k in 0..self.pfx_sorted.count {
            let i = self.u32_in(self.pfx_sorted, k) as usize;
            if i >= self.n_prefixes() {
                return malformed("prefix sort index out of range");
            }
            let base = self.u32_in(self.pfx_base, i);
            if k > 0 && base < prev_base {
                return malformed("prefix sort index not sorted by base");
            }
            prev_base = base;
        }

        // Cell columns: service runs partition the cells; prefixes are
        // strictly ascending within each run (the point-lookup invariant).
        if self.u64_in(self.cell_svc_off, 0) != 0
            || self.u64_in(self.cell_svc_off, self.n_services()) != self.n_cells() as u64
        {
            return malformed("cell service offsets have wrong endpoints");
        }
        for sid in 0..self.n_services() {
            let a = self.u64_in(self.cell_svc_off, sid) as usize;
            let b = self.u64_in(self.cell_svc_off, sid + 1) as usize;
            if b < a || b > self.n_cells() {
                return malformed("cell service offsets not monotone");
            }
            for i in a..b {
                if i > a && self.u32_in(self.cell_prefix, i) <= self.u32_in(self.cell_prefix, i - 1)
                {
                    return malformed("cell prefixes not ascending within a service");
                }
            }
        }

        // Reverse index: in range, ordered by the serving address it
        // dereferences to (the reverse-lookup invariant).
        let mut prev_addr = 0u32;
        for k in 0..self.cell_rev.count {
            let i = self.u32_in(self.cell_rev, k) as usize;
            if i >= self.n_cells() {
                return malformed("cell reverse index out of range");
            }
            let addr = self.u32_in(self.cell_addr, i);
            if k > 0 && addr < prev_addr {
                return malformed("cell reverse index not sorted by address");
            }
            prev_addr = addr;
        }

        // Front-end table: strictly ascending addresses.
        for k in 1..self.front_addr.count {
            if self.u32_in(self.front_addr, k) <= self.u32_in(self.front_addr, k - 1) {
                return malformed("front addresses not strictly ascending");
            }
        }

        // Route adjacency: offsets partition the entries; neighbor runs
        // are strictly ascending ASNs in range.
        if self.u64_in(self.route_off, 0) != 0
            || self.u64_in(self.route_off, self.n_ases()) != self.n_route_entries() as u64
        {
            return malformed("route offsets have wrong endpoints");
        }
        for a in 0..self.n_ases() {
            let lo = self.u64_in(self.route_off, a) as usize;
            let hi = self.u64_in(self.route_off, a + 1) as usize;
            if hi < lo || hi > self.n_route_entries() {
                return malformed("route offsets not monotone");
            }
            for i in lo..hi {
                let nbr = self.u32_in(self.route_nbr, i);
                if nbr as usize >= self.n_ases() {
                    return malformed("route neighbor out of range");
                }
                if i > lo && nbr <= self.u32_in(self.route_nbr, i - 1) {
                    return malformed("route neighbors not ascending within an AS");
                }
                if snap::rel::name(self.u8_in(self.route_kind, i)).is_none() {
                    return malformed("unknown route relationship code");
                }
            }
        }
        Ok(())
    }

    // ---- Raw column accessors. Offsets were bounds-checked at open, so
    // the `unwrap_or` defaults are unreachable for in-range indices.

    #[inline]
    fn u32_in(&self, s: Sec, i: usize) -> u32 {
        snap::read_u32(&self.bytes, s.off + i * 4).unwrap_or(0)
    }

    #[inline]
    fn u64_in(&self, s: Sec, i: usize) -> u64 {
        snap::read_u64(&self.bytes, s.off + i * 8).unwrap_or(0)
    }

    #[inline]
    fn u8_in(&self, s: Sec, i: usize) -> u8 {
        self.bytes.get(s.off + i).copied().unwrap_or(0)
    }

    /// First index in `[lo, hi)` whose key (per `key(i)`) is ≥ `target`.
    #[inline]
    fn lower_bound(
        &self,
        mut lo: usize,
        mut hi: usize,
        target: u32,
        key: impl Fn(usize) -> u32,
    ) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if key(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    // ---- Metadata.

    /// The substrate master seed the snapshot was built from.
    pub fn seed(&self) -> u64 {
        self.meta[0]
    }

    /// Number of ASes in the route view.
    pub fn n_ases(&self) -> usize {
        self.meta[1] as usize
    }

    /// Number of /24 prefixes in the topology.
    pub fn n_prefixes(&self) -> usize {
        self.meta[2] as usize
    }

    /// Number of services in the catalogue.
    pub fn n_services(&self) -> usize {
        self.meta[3] as usize
    }

    /// Number of ⟨service, prefix⟩ mapping cells.
    pub fn n_cells(&self) -> usize {
        self.meta[4] as usize
    }

    /// Number of directed route adjacency entries.
    pub fn n_route_entries(&self) -> usize {
        self.meta[5] as usize
    }

    /// Number of distinct front-end addresses.
    pub fn n_fronts(&self) -> usize {
        self.meta[6] as usize
    }

    /// Total size of the snapshot in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    // ---- Domain / service lookups.

    /// The domain name of a service, if the id is in range.
    pub fn domain_of(&self, service: ServiceId) -> Option<&str> {
        let s = service.index();
        if s >= self.n_services() {
            return None;
        }
        let a = self.u32_in(self.dom_off, s) as usize;
        let b = self.u32_in(self.dom_off, s + 1) as usize;
        // b - 1 drops the NUL terminator; validated non-empty at open.
        let name = self
            .bytes
            .get(self.dom_bytes.off + a..self.dom_bytes.off + b - 1)?;
        std::str::from_utf8(name).ok()
    }

    /// Find a service by exact domain name (binary search on the sorted
    /// domain index).
    pub fn service_named(&self, name: &str) -> Option<ServiceId> {
        let (mut lo, mut hi) = (0usize, self.n_services());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let sid = ServiceId(self.u32_in(self.dom_sorted, mid));
            if self.domain_of(sid).unwrap_or("") < name {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let sid =
            ServiceId(self.u32_in(self.dom_sorted, lo.min(self.n_services().saturating_sub(1))));
        if lo < self.n_services() && self.domain_of(sid) == Some(name) {
            Some(sid)
        } else {
            None
        }
    }

    // ---- Prefix lookups.

    /// The /24 network of a prefix id.
    pub fn prefix_net(&self, prefix: PrefixId) -> Option<Ipv4Net> {
        if prefix.index() >= self.n_prefixes() {
            return None;
        }
        Ipv4Net::new(Ipv4Addr(self.u32_in(self.pfx_base, prefix.index())), 24).ok()
    }

    /// The owner ASN of a prefix id.
    pub fn prefix_owner(&self, prefix: PrefixId) -> Option<Asn> {
        if prefix.index() >= self.n_prefixes() {
            return None;
        }
        Some(Asn(self.u32_in(self.pfx_owner, prefix.index())))
    }

    /// Find the prefix id whose /24 contains `addr`.
    pub fn prefix_of_addr(&self, addr: Ipv4Addr) -> Option<PrefixId> {
        self.find_base(addr.0 & !0xFF)
    }

    /// Find a prefix id by its network (the /24 base address).
    pub fn find_prefix(&self, net: Ipv4Net) -> Option<PrefixId> {
        self.find_base(net.network().0)
    }

    fn find_base(&self, base: u32) -> Option<PrefixId> {
        let k = self.lower_bound(0, self.n_prefixes(), base, |k| {
            self.u32_in(self.pfx_base, self.u32_in(self.pfx_sorted, k) as usize)
        });
        if k >= self.n_prefixes() {
            return None;
        }
        let id = self.u32_in(self.pfx_sorted, k);
        if self.u32_in(self.pfx_base, id as usize) == base {
            Some(PrefixId(id))
        } else {
            None
        }
    }

    // ---- The three query families.

    /// Point lookup: which replica serves `prefix` for `service`, and on
    /// what measurement evidence.
    ///
    /// One binary search over the service's prefix run — `O(log cells)`
    /// byte probes, no allocation.
    pub fn point(&self, service: ServiceId, prefix: PrefixId) -> Option<PointAnswer> {
        let s = service.index();
        if s >= self.n_services() {
            return None;
        }
        let lo = self.u64_in(self.cell_svc_off, s) as usize;
        let hi = self.u64_in(self.cell_svc_off, s + 1) as usize;
        let i = self.lower_bound(lo, hi, prefix.raw(), |i| self.u32_in(self.cell_prefix, i));
        if i >= hi || self.u32_in(self.cell_prefix, i) != prefix.raw() {
            return None;
        }
        let addr = Ipv4Addr(self.u32_in(self.cell_addr, i));
        Some(PointAnswer {
            addr,
            front_as: self.front_as_of(addr),
            claim_bits: self.u8_in(self.cell_bits, i),
        })
    }

    /// All ⟨prefix, replica⟩ cells of one service, in ascending prefix
    /// order.
    pub fn cells_of(&self, service: ServiceId) -> CellsIter<'_> {
        let s = service.index();
        let (lo, hi) = if s < self.n_services() {
            (
                self.u64_in(self.cell_svc_off, s) as usize,
                self.u64_in(self.cell_svc_off, s + 1) as usize,
            )
        } else {
            (0, 0)
        };
        CellsIter {
            snap: self,
            i: lo,
            hi,
        }
    }

    /// Reverse lookup: every ⟨service, prefix⟩ cell served by front-end
    /// address `addr`.
    ///
    /// Binary search over the reverse index for the address run, then one
    /// offset-partition search per hit to recover the service id.
    pub fn reverse(&self, addr: Ipv4Addr) -> Vec<(ServiceId, PrefixId)> {
        let key = |k: usize| self.u32_in(self.cell_addr, self.u32_in(self.cell_rev, k) as usize);
        let n = self.n_cells();
        let lo = self.lower_bound(0, n, addr.0, key);
        let hi = self.lower_bound(lo, n, addr.0.saturating_add(1), key);
        let hi = if addr.0 == u32::MAX { n } else { hi };
        let mut out = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let i = self.u32_in(self.cell_rev, k) as usize;
            if self.u32_in(self.cell_addr, i) != addr.0 {
                continue; // only reachable for addr == u32::MAX over-scan
            }
            out.push((
                self.service_of_cell(i),
                PrefixId(self.u32_in(self.cell_prefix, i)),
            ));
        }
        out
    }

    /// The service owning global cell index `i` (partition search over the
    /// service offset array).
    fn service_of_cell(&self, i: usize) -> ServiceId {
        let (mut lo, mut hi) = (0usize, self.n_services());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.u64_in(self.cell_svc_off, mid + 1) <= i as u64 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        ServiceId(lo as u32)
    }

    /// The ⟨service, prefix, replica⟩ triple at global cell index `i`
    /// (cells are ordered by ⟨service, prefix⟩). Lets callers sample the
    /// cell population without walking a service run.
    pub fn cell(&self, i: usize) -> Option<(ServiceId, PrefixId, Ipv4Addr)> {
        if i >= self.n_cells() {
            return None;
        }
        Some((
            self.service_of_cell(i),
            PrefixId(self.u32_in(self.cell_prefix, i)),
            Ipv4Addr(self.u32_in(self.cell_addr, i)),
        ))
    }

    /// The AS hosting a front-end address, when known.
    pub fn front_as_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        let k = self.lower_bound(0, self.n_fronts(), addr.0, |k| {
            self.u32_in(self.front_addr, k)
        });
        if k >= self.n_fronts() || self.u32_in(self.front_addr, k) != addr.0 {
            return None;
        }
        match self.u32_in(self.front_owner, k) {
            u32::MAX => None,
            owner => Some(Asn(owner)),
        }
    }

    /// Route lookup: the directed adjacency of `asn` as ⟨neighbor,
    /// relationship code⟩ pairs, ascending by neighbor (see
    /// [`itm_types::snap::rel`] for codes).
    pub fn neighbors(&self, asn: Asn) -> RouteIter<'_> {
        let a = asn.index();
        let (lo, hi) = if a < self.n_ases() {
            (
                self.u64_in(self.route_off, a) as usize,
                self.u64_in(self.route_off, a + 1) as usize,
            )
        } else {
            (0, 0)
        };
        RouteIter {
            snap: self,
            i: lo,
            hi,
        }
    }

    /// The relationship code on the directed edge `a → b`, if adjacent.
    pub fn edge(&self, a: Asn, b: Asn) -> Option<u8> {
        if a.index() >= self.n_ases() {
            return None;
        }
        let lo = self.u64_in(self.route_off, a.index()) as usize;
        let hi = self.u64_in(self.route_off, a.index() + 1) as usize;
        let i = self.lower_bound(lo, hi, b.raw(), |i| self.u32_in(self.route_nbr, i));
        if i < hi && self.u32_in(self.route_nbr, i) == b.raw() {
            Some(self.u8_in(self.route_kind, i))
        } else {
            None
        }
    }
}

/// Iterator over one service's mapping cells (see [`Snapshot::cells_of`]).
#[derive(Debug)]
pub struct CellsIter<'a> {
    snap: &'a Snapshot,
    i: usize,
    hi: usize,
}

impl Iterator for CellsIter<'_> {
    type Item = (PrefixId, Ipv4Addr);

    fn next(&mut self) -> Option<Self::Item> {
        if self.i >= self.hi {
            return None;
        }
        let i = self.i;
        self.i += 1;
        Some((
            PrefixId(self.snap.u32_in(self.snap.cell_prefix, i)),
            Ipv4Addr(self.snap.u32_in(self.snap.cell_addr, i)),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.hi - self.i;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CellsIter<'_> {}

/// Iterator over one AS's adjacency entries (see [`Snapshot::neighbors`]).
#[derive(Debug)]
pub struct RouteIter<'a> {
    snap: &'a Snapshot,
    i: usize,
    hi: usize,
}

impl Iterator for RouteIter<'_> {
    type Item = (Asn, u8);

    fn next(&mut self) -> Option<Self::Item> {
        if self.i >= self.hi {
            return None;
        }
        let i = self.i;
        self.i += 1;
        Some((
            Asn(self.snap.u32_in(self.snap.route_nbr, i)),
            self.snap.u8_in(self.snap.route_kind, i),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.hi - self.i;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_types::snap::SnapWriter;

    /// Hand-assemble a tiny but fully consistent snapshot:
    /// 2 services ("a.example", "b.example"), 3 prefixes, 4 cells,
    /// 2 front-ends, 3 ASes with a triangle of relationships.
    fn tiny() -> Vec<u8> {
        let mut w = SnapWriter::new();
        // seed, n_ases, n_prefixes, n_services, n_cells, n_route, n_fronts
        w.section_u64(section::META, &[42, 3, 3, 2, 4, 4, 2]);
        let names = b"a.example\0b.example\0";
        w.section_u32(section::DOM_OFF, &[0, 10, 20]);
        w.section_u8(section::DOM_BYTES, names);
        w.section_u32(section::DOM_SORTED, &[0, 1]);
        // Prefixes 10.0.0.0/24 (AS0), 10.0.1.0/24 (AS1), 10.0.2.0/24 (AS2),
        // stored out of base order to exercise the sort index.
        w.section_u32(section::PFX_BASE, &[0x0A000100, 0x0A000000, 0x0A000200]);
        w.section_u32(section::PFX_OWNER, &[1, 0, 2]);
        w.section_u32(section::PFX_SORTED, &[1, 0, 2]);
        // Service 0 maps prefixes {0, 1}; service 1 maps {1, 2}.
        w.section_u64(section::CELL_SVC_OFF, &[0, 2, 4]);
        w.section_u32(section::CELL_PREFIX, &[0, 1, 1, 2]);
        // Front 0x0A000001 serves cells 0 and 2; 0x0A000201 serves 1 and 3.
        w.section_u32(
            section::CELL_ADDR,
            &[0x0A000001, 0x0A000201, 0x0A000001, 0x0A000201],
        );
        w.section_u8(
            section::CELL_BITS,
            &[
                claim::ECS,
                claim::CATALOG_PRIOR,
                claim::ECS | claim::ANYCAST,
                0,
            ],
        );
        w.section_u32(section::CELL_REV, &[0, 2, 1, 3]);
        w.section_u32(section::FRONT_ADDR, &[0x0A000001, 0x0A000201]);
        w.section_u32(section::FRONT_OWNER, &[1, u32::MAX]);
        // AS0 ↔ AS1 (0's provider is 1), AS1 ↔ AS2 peers.
        w.section_u64(section::ROUTE_OFF, &[0, 1, 3, 4]);
        w.section_u32(section::ROUTE_NBR, &[1, 0, 2, 1]);
        w.section_u8(
            section::ROUTE_KIND,
            &[
                snap::rel::PROVIDER,
                snap::rel::CUSTOMER,
                snap::rel::PEER,
                snap::rel::PEER,
            ],
        );
        w.finish()
    }

    #[test]
    fn opens_and_reports_meta() {
        let s = Snapshot::from_bytes(tiny()).unwrap();
        assert_eq!(s.seed(), 42);
        assert_eq!(s.n_services(), 2);
        assert_eq!(s.n_cells(), 4);
        assert_eq!(s.n_fronts(), 2);
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let s = Snapshot::from_bytes(tiny()).unwrap();
        let hit = s.point(ServiceId(0), PrefixId(1)).unwrap();
        assert_eq!(hit.addr, Ipv4Addr(0x0A000201));
        assert_eq!(hit.front_as, None); // front owner is the unknown sentinel
        assert_eq!(hit.claim_bits, claim::CATALOG_PRIOR);
        assert_eq!(hit.techniques(), vec!["catalog_prior"]);
        let hit = s.point(ServiceId(1), PrefixId(1)).unwrap();
        assert_eq!(hit.front_as, Some(Asn(1)));
        assert_eq!(hit.techniques(), vec!["ecs", "anycast"]);
        assert!(s.point(ServiceId(0), PrefixId(2)).is_none());
        assert!(s.point(ServiceId(9), PrefixId(0)).is_none());
    }

    #[test]
    fn reverse_lookup_finds_all_cells_of_a_front() {
        let s = Snapshot::from_bytes(tiny()).unwrap();
        assert_eq!(
            s.reverse(Ipv4Addr(0x0A000001)),
            vec![(ServiceId(0), PrefixId(0)), (ServiceId(1), PrefixId(1))]
        );
        assert_eq!(
            s.reverse(Ipv4Addr(0x0A000201)),
            vec![(ServiceId(0), PrefixId(1)), (ServiceId(1), PrefixId(2))]
        );
        assert!(s.reverse(Ipv4Addr(0x01020304)).is_empty());
    }

    #[test]
    fn route_lookup_and_edges() {
        let s = Snapshot::from_bytes(tiny()).unwrap();
        let nbrs: Vec<_> = s.neighbors(Asn(1)).collect();
        assert_eq!(
            nbrs,
            vec![(Asn(0), snap::rel::CUSTOMER), (Asn(2), snap::rel::PEER)]
        );
        assert_eq!(s.edge(Asn(0), Asn(1)), Some(snap::rel::PROVIDER));
        assert_eq!(s.edge(Asn(0), Asn(2)), None);
        assert_eq!(s.neighbors(Asn(9)).count(), 0);
    }

    #[test]
    fn name_and_prefix_resolution() {
        let s = Snapshot::from_bytes(tiny()).unwrap();
        assert_eq!(s.domain_of(ServiceId(1)), Some("b.example"));
        assert_eq!(s.service_named("a.example"), Some(ServiceId(0)));
        assert_eq!(s.service_named("zzz"), None);
        assert_eq!(
            s.find_prefix("10.0.1.0/24".parse().unwrap()),
            Some(PrefixId(0))
        );
        assert_eq!(s.prefix_of_addr(Ipv4Addr(0x0A000042)), Some(PrefixId(1)));
        assert_eq!(s.prefix_of_addr(Ipv4Addr(0x7F000001)), None);
        assert_eq!(s.prefix_owner(PrefixId(2)), Some(Asn(2)));
        assert_eq!(
            s.prefix_net(PrefixId(1)).map(|n| n.to_string()),
            Some("10.0.0.0/24".into())
        );
    }

    #[test]
    fn cells_of_iterates_one_service_run() {
        let s = Snapshot::from_bytes(tiny()).unwrap();
        let cells: Vec<_> = s.cells_of(ServiceId(1)).collect();
        assert_eq!(
            cells,
            vec![
                (PrefixId(1), Ipv4Addr(0x0A000001)),
                (PrefixId(2), Ipv4Addr(0x0A000201)),
            ]
        );
        assert_eq!(s.cells_of(ServiceId(7)).count(), 0);
        assert_eq!(
            s.cell(2),
            Some((ServiceId(1), PrefixId(1), Ipv4Addr(0x0A000001)))
        );
        assert_eq!(s.cell(9), None);
    }

    #[test]
    fn missing_section_is_rejected() {
        let mut w = SnapWriter::new();
        w.section_u64(section::META, &[0; snap::META_FIELDS]);
        assert!(matches!(
            Snapshot::from_bytes(w.finish()),
            Err(SnapError::MissingSection { .. })
        ));
    }

    #[test]
    fn inconsistent_counts_are_rejected() {
        // Same sections as tiny() but META claims 5 cells.
        let good = tiny();
        let mut w = SnapWriter::new();
        w.section_u64(section::META, &[42, 3, 3, 2, 5, 4, 2]);
        let dir = snap::parse_dir(&good).unwrap();
        for e in dir.iter().skip(1) {
            let payload = &good[e.offset as usize..(e.offset + e.len) as usize];
            w.section_u8(e.id, payload); // byte-count mismatch vs u32 counts
        }
        assert!(Snapshot::from_bytes(w.finish()).is_err());
    }

    #[test]
    fn corrupted_byte_is_rejected() {
        let good = tiny();
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0xFF;
        assert!(Snapshot::from_bytes(bad).is_err());
    }
}
