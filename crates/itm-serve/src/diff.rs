//! Structural diff between two map snapshots (`repro --diff A B`).
//!
//! A continuously updated map is only trustworthy if its evolution is
//! inspectable: when epoch `k+1`'s snapshot differs from epoch `k`'s, an
//! operator needs to see *which* ⟨service, prefix⟩ cells moved to a new
//! front-end, which appeared or vanished, which route edges changed — and
//! which measurement techniques back each side of every delta.
//!
//! [`MapDiff::compute`] walks both snapshots' sorted columns in lockstep
//! (no decoding into owned structures beyond the delta lists themselves)
//! and reports:
//!
//! * [`CellDelta`] — a mapping cell added, removed, re-pointed to a
//!   different replica, or re-evidenced (same replica, different claim
//!   bits), with both sides' claim bitmaps as provenance;
//! * [`RouteDelta`] — a directed adjacency entry added, removed, or
//!   re-classified.
//!
//! Deltas come out in ⟨service, prefix⟩ / ⟨AS, neighbor⟩ order — the
//! snapshots' own canonical orders — so a serialized diff is byte-stable.
//!
//! Two snapshots are only comparable over the same universe: equal
//! service/prefix/AS counts, identical domain tables, identical prefix
//! tables. Anything else is an [`DiffError::Incompatible`], which the CLI
//! maps to exit 2 (version mismatches are caught earlier, at open, by the
//! snapshot header check).

use crate::Snapshot;
use itm_types::snap::claim;
use itm_types::{Asn, Ipv4Addr, PrefixId, ServiceId};
use std::collections::BTreeMap;

/// Why two snapshots cannot be diffed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The snapshots describe different universes.
    Incompatible {
        /// Which table disagrees.
        what: &'static str,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Incompatible { what } => {
                write!(f, "snapshots are not comparable: {what} differ")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// One mapping-cell difference between snapshot A and snapshot B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellDelta {
    /// The service the cell belongs to.
    pub service: ServiceId,
    /// The client prefix of the cell.
    pub prefix: PrefixId,
    /// A's serving replica (`None` = the cell did not exist in A).
    pub old_addr: Option<Ipv4Addr>,
    /// B's serving replica (`None` = the cell no longer exists in B).
    pub new_addr: Option<Ipv4Addr>,
    /// A's technique claim bitmap (0 when absent in A).
    pub old_bits: u8,
    /// B's technique claim bitmap (0 when absent in B).
    pub new_bits: u8,
}

impl CellDelta {
    /// `added`, `removed`, `moved` (replica changed) or `re-evidenced`
    /// (same replica, different claims).
    pub fn kind(&self) -> &'static str {
        match (self.old_addr, self.new_addr) {
            (None, Some(_)) => "added",
            (Some(_), None) => "removed",
            (Some(a), Some(b)) if a != b => "moved",
            _ => "re-evidenced",
        }
    }

    /// Technique names backing A's side of the cell.
    pub fn old_techniques(&self) -> Vec<&'static str> {
        claim::names(self.old_bits)
    }

    /// Technique names backing B's side of the cell.
    pub fn new_techniques(&self) -> Vec<&'static str> {
        claim::names(self.new_bits)
    }
}

/// One directed route-adjacency difference between A and B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDelta {
    /// Source AS of the directed edge.
    pub from: Asn,
    /// Neighbor AS of the directed edge.
    pub to: Asn,
    /// A's relationship code (`None` = edge absent in A); see
    /// [`itm_types::snap::rel`].
    pub old_kind: Option<u8>,
    /// B's relationship code (`None` = edge absent in B).
    pub new_kind: Option<u8>,
}

impl RouteDelta {
    /// `added`, `removed` or `re-classified`.
    pub fn kind(&self) -> &'static str {
        match (self.old_kind, self.new_kind) {
            (None, Some(_)) => "added",
            (Some(_), None) => "removed",
            _ => "re-classified",
        }
    }
}

/// The full structural difference between two snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapDiff {
    /// Cell deltas, in ⟨service, prefix⟩ order.
    pub cells: Vec<CellDelta>,
    /// Directed route deltas, in ⟨from, to⟩ order.
    pub routes: Vec<RouteDelta>,
}

impl MapDiff {
    /// Diff snapshot `a` against snapshot `b` (A = before, B = after).
    ///
    /// Fails when the snapshots describe different universes (counts,
    /// domain table, or prefix table disagree) — a diff across universes
    /// would attribute renumbering as churn.
    pub fn compute(a: &Snapshot, b: &Snapshot) -> Result<MapDiff, DiffError> {
        let incompatible = |what| Err(DiffError::Incompatible { what });
        if a.n_services() != b.n_services() {
            return incompatible("service counts");
        }
        if a.n_prefixes() != b.n_prefixes() {
            return incompatible("prefix counts");
        }
        if a.n_ases() != b.n_ases() {
            return incompatible("AS counts");
        }
        for sid in 0..a.n_services() {
            if a.domain_of(ServiceId(sid as u32)) != b.domain_of(ServiceId(sid as u32)) {
                return incompatible("domain tables");
            }
        }
        for p in 0..a.n_prefixes() {
            let p = PrefixId(p as u32);
            if a.prefix_net(p) != b.prefix_net(p) || a.prefix_owner(p) != b.prefix_owner(p) {
                return incompatible("prefix tables");
            }
        }

        let mut diff = MapDiff::default();
        for sid in 0..a.n_services() {
            let svc = ServiceId(sid as u32);
            diff.diff_service(a, b, svc);
        }
        for asn in 0..a.n_ases() {
            diff.diff_adjacency(a, b, Asn(asn as u32));
        }
        Ok(diff)
    }

    /// Merge-walk one service's sorted prefix runs in both snapshots.
    fn diff_service(&mut self, a: &Snapshot, b: &Snapshot, svc: ServiceId) {
        let removed = |p: PrefixId, addr: Ipv4Addr| CellDelta {
            service: svc,
            prefix: p,
            old_addr: Some(addr),
            new_addr: None,
            old_bits: a.point(svc, p).map_or(0, |ans| ans.claim_bits),
            new_bits: 0,
        };
        let added = |q: PrefixId, addr: Ipv4Addr| CellDelta {
            service: svc,
            prefix: q,
            old_addr: None,
            new_addr: Some(addr),
            old_bits: 0,
            new_bits: b.point(svc, q).map_or(0, |ans| ans.claim_bits),
        };
        let mut ia = a.cells_of(svc).peekable();
        let mut ib = b.cells_of(svc).peekable();
        loop {
            let delta = match (ia.peek().copied(), ib.peek().copied()) {
                (None, None) => break,
                (Some((p, addr)), None) => {
                    ia.next();
                    removed(p, addr)
                }
                (None, Some((q, addr))) => {
                    ib.next();
                    added(q, addr)
                }
                (Some((p, old)), Some((q, new))) => {
                    if p < q {
                        ia.next();
                        removed(p, old)
                    } else if q < p {
                        ib.next();
                        added(q, new)
                    } else {
                        ia.next();
                        ib.next();
                        let old_bits = a.point(svc, p).map_or(0, |ans| ans.claim_bits);
                        let new_bits = b.point(svc, p).map_or(0, |ans| ans.claim_bits);
                        if old == new && old_bits == new_bits {
                            continue;
                        }
                        CellDelta {
                            service: svc,
                            prefix: p,
                            old_addr: Some(old),
                            new_addr: Some(new),
                            old_bits,
                            new_bits,
                        }
                    }
                }
            };
            self.cells.push(delta);
        }
    }

    /// Merge-walk one AS's sorted neighbor runs in both snapshots.
    fn diff_adjacency(&mut self, a: &Snapshot, b: &Snapshot, from: Asn) {
        let removed = |n: Asn, kind: u8| RouteDelta {
            from,
            to: n,
            old_kind: Some(kind),
            new_kind: None,
        };
        let added = |m: Asn, kind: u8| RouteDelta {
            from,
            to: m,
            old_kind: None,
            new_kind: Some(kind),
        };
        let mut ia = a.neighbors(from).peekable();
        let mut ib = b.neighbors(from).peekable();
        loop {
            let delta = match (ia.peek().copied(), ib.peek().copied()) {
                (None, None) => break,
                (Some((n, kind)), None) => {
                    ia.next();
                    removed(n, kind)
                }
                (None, Some((m, kind))) => {
                    ib.next();
                    added(m, kind)
                }
                (Some((n, old)), Some((m, new))) => {
                    if n < m {
                        ia.next();
                        removed(n, old)
                    } else if m < n {
                        ib.next();
                        added(m, new)
                    } else {
                        ia.next();
                        ib.next();
                        if old == new {
                            continue;
                        }
                        RouteDelta {
                            from,
                            to: n,
                            old_kind: Some(old),
                            new_kind: Some(new),
                        }
                    }
                }
            };
            self.routes.push(delta);
        }
    }

    /// True when the snapshots were structurally identical.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.routes.is_empty()
    }

    /// Count of cell deltas with the given [`CellDelta::kind`].
    pub fn n_cells_of_kind(&self, kind: &str) -> usize {
        self.cells.iter().filter(|d| d.kind() == kind).count()
    }

    /// Reconstruct B's full cell grid from A plus this diff
    /// (verification helper: the round-trip test asserts it equals B's
    /// decoded cells exactly).
    pub fn apply_cells(&self, a: &Snapshot) -> Vec<(ServiceId, PrefixId, Ipv4Addr, u8)> {
        let mut grid: BTreeMap<(u32, u32), (Ipv4Addr, u8)> = BTreeMap::new();
        for sid in 0..a.n_services() {
            let svc = ServiceId(sid as u32);
            for (p, addr) in a.cells_of(svc) {
                let bits = a.point(svc, p).map_or(0, |ans| ans.claim_bits);
                grid.insert((svc.raw(), p.raw()), (addr, bits));
            }
        }
        for d in &self.cells {
            let key = (d.service.raw(), d.prefix.raw());
            match d.new_addr {
                Some(addr) => {
                    grid.insert(key, (addr, d.new_bits));
                }
                None => {
                    grid.remove(&key);
                }
            }
        }
        grid.into_iter()
            .map(|((s, p), (addr, bits))| (ServiceId(s), PrefixId(p), addr, bits))
            .collect()
    }

    /// Reconstruct B's directed adjacency from A plus this diff (the
    /// route half of the round-trip check).
    pub fn apply_routes(&self, a: &Snapshot) -> Vec<(Asn, Asn, u8)> {
        let mut adj: BTreeMap<(u32, u32), u8> = BTreeMap::new();
        for asn in 0..a.n_ases() {
            let from = Asn(asn as u32);
            for (to, kind) in a.neighbors(from) {
                adj.insert((from.raw(), to.raw()), kind);
            }
        }
        for d in &self.routes {
            let key = (d.from.raw(), d.to.raw());
            match d.new_kind {
                Some(kind) => {
                    adj.insert(key, kind);
                }
                None => {
                    adj.remove(&key);
                }
            }
        }
        adj.into_iter()
            .map(|((f, t), kind)| (Asn(f), Asn(t), kind))
            .collect()
    }
}

/// Decode a snapshot's full cell grid in canonical order (the comparison
/// target for [`MapDiff::apply_cells`]).
pub fn decode_cells(s: &Snapshot) -> Vec<(ServiceId, PrefixId, Ipv4Addr, u8)> {
    let mut out = Vec::with_capacity(s.n_cells());
    for sid in 0..s.n_services() {
        let svc = ServiceId(sid as u32);
        for (p, addr) in s.cells_of(svc) {
            let bits = s.point(svc, p).map_or(0, |ans| ans.claim_bits);
            out.push((svc, p, addr, bits));
        }
    }
    out
}

/// Decode a snapshot's full directed adjacency in canonical order (the
/// comparison target for [`MapDiff::apply_routes`]).
pub fn decode_routes(s: &Snapshot) -> Vec<(Asn, Asn, u8)> {
    let mut out = Vec::with_capacity(s.n_route_entries());
    for asn in 0..s.n_ases() {
        let from = Asn(asn as u32);
        for (to, kind) in s.neighbors(from) {
            out.push((from, to, kind));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_types::snap::{claim, rel, section, SnapWriter};

    /// Snapshot A: the `tiny()` universe of the crate tests — 2 services,
    /// 3 prefixes, 4 cells, 2 fronts, a 3-AS triangle.
    fn snap_a() -> Snapshot {
        let mut w = SnapWriter::new();
        w.section_u64(section::META, &[42, 3, 3, 2, 4, 4, 2]);
        w.section_u32(section::DOM_OFF, &[0, 10, 20]);
        w.section_u8(section::DOM_BYTES, b"a.example\0b.example\0");
        w.section_u32(section::DOM_SORTED, &[0, 1]);
        w.section_u32(section::PFX_BASE, &[0x0A000100, 0x0A000000, 0x0A000200]);
        w.section_u32(section::PFX_OWNER, &[1, 0, 2]);
        w.section_u32(section::PFX_SORTED, &[1, 0, 2]);
        w.section_u64(section::CELL_SVC_OFF, &[0, 2, 4]);
        w.section_u32(section::CELL_PREFIX, &[0, 1, 1, 2]);
        w.section_u32(
            section::CELL_ADDR,
            &[0x0A000001, 0x0A000201, 0x0A000001, 0x0A000201],
        );
        w.section_u8(
            section::CELL_BITS,
            &[
                claim::ECS,
                claim::CATALOG_PRIOR,
                claim::ECS | claim::ANYCAST,
                0,
            ],
        );
        w.section_u32(section::CELL_REV, &[0, 2, 1, 3]);
        w.section_u32(section::FRONT_ADDR, &[0x0A000001, 0x0A000201]);
        w.section_u32(section::FRONT_OWNER, &[1, u32::MAX]);
        w.section_u64(section::ROUTE_OFF, &[0, 1, 3, 4]);
        w.section_u32(section::ROUTE_NBR, &[1, 0, 2, 1]);
        w.section_u8(
            section::ROUTE_KIND,
            &[rel::PROVIDER, rel::CUSTOMER, rel::PEER, rel::PEER],
        );
        Snapshot::from_bytes(w.finish()).expect("snap_a is well-formed")
    }

    /// Snapshot B: the same universe one epoch later. Service 0's prefix 1
    /// moved replicas, prefix 2 appeared; service 1's prefix 1 vanished
    /// and prefix 2 gained a claim; AS0–AS2 peered up and AS1–AS2 turned
    /// into a provider relationship.
    fn snap_b() -> Snapshot {
        let mut w = SnapWriter::new();
        w.section_u64(section::META, &[42, 3, 3, 2, 4, 6, 2]);
        w.section_u32(section::DOM_OFF, &[0, 10, 20]);
        w.section_u8(section::DOM_BYTES, b"a.example\0b.example\0");
        w.section_u32(section::DOM_SORTED, &[0, 1]);
        w.section_u32(section::PFX_BASE, &[0x0A000100, 0x0A000000, 0x0A000200]);
        w.section_u32(section::PFX_OWNER, &[1, 0, 2]);
        w.section_u32(section::PFX_SORTED, &[1, 0, 2]);
        w.section_u64(section::CELL_SVC_OFF, &[0, 3, 4]);
        w.section_u32(section::CELL_PREFIX, &[0, 1, 2, 2]);
        w.section_u32(
            section::CELL_ADDR,
            &[0x0A000001, 0x0A000001, 0x0A000201, 0x0A000201],
        );
        w.section_u8(
            section::CELL_BITS,
            &[claim::ECS, claim::ECS, claim::ECS, claim::CATALOG_PRIOR],
        );
        w.section_u32(section::CELL_REV, &[0, 1, 2, 3]);
        w.section_u32(section::FRONT_ADDR, &[0x0A000001, 0x0A000201]);
        w.section_u32(section::FRONT_OWNER, &[1, u32::MAX]);
        w.section_u64(section::ROUTE_OFF, &[0, 2, 4, 6]);
        w.section_u32(section::ROUTE_NBR, &[1, 2, 0, 2, 0, 1]);
        w.section_u8(
            section::ROUTE_KIND,
            &[
                rel::PROVIDER,
                rel::PEER,
                rel::CUSTOMER,
                rel::PROVIDER,
                rel::PEER,
                rel::CUSTOMER,
            ],
        );
        Snapshot::from_bytes(w.finish()).expect("snap_b is well-formed")
    }

    #[test]
    fn self_diff_is_empty() {
        let a = snap_a();
        let d = MapDiff::compute(&a, &a).expect("compatible");
        assert!(d.is_empty());
        assert_eq!(d.apply_cells(&a), decode_cells(&a));
        assert_eq!(d.apply_routes(&a), decode_routes(&a));
    }

    #[test]
    fn diff_reports_every_kind_in_canonical_order() {
        let (a, b) = (snap_a(), snap_b());
        let d = MapDiff::compute(&a, &b).expect("compatible");

        let kinds: Vec<(u32, u32, &str)> = d
            .cells
            .iter()
            .map(|c| (c.service.raw(), c.prefix.raw(), c.kind()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (0, 1, "moved"),
                (0, 2, "added"),
                (1, 1, "removed"),
                (1, 2, "re-evidenced"),
            ]
        );
        assert_eq!(d.n_cells_of_kind("moved"), 1);
        assert_eq!(d.n_cells_of_kind("added"), 1);

        // Provenance travels with each delta.
        let moved = &d.cells[0];
        assert_eq!(moved.old_techniques(), vec!["catalog_prior"]);
        assert_eq!(moved.new_techniques(), vec!["ecs"]);
        let removed = &d.cells[2];
        assert_eq!(removed.old_techniques(), vec!["ecs", "anycast"]);
        assert!(removed.new_techniques().is_empty());

        let routes: Vec<(u32, u32, &str)> = d
            .routes
            .iter()
            .map(|r| (r.from.raw(), r.to.raw(), r.kind()))
            .collect();
        assert_eq!(
            routes,
            vec![
                (0, 2, "added"),
                (1, 2, "re-classified"),
                (2, 0, "added"),
                (2, 1, "re-classified"),
            ]
        );
    }

    #[test]
    fn applying_the_diff_to_a_reconstructs_b() {
        let (a, b) = (snap_a(), snap_b());
        let d = MapDiff::compute(&a, &b).expect("compatible");
        assert_eq!(d.apply_cells(&a), decode_cells(&b));
        assert_eq!(d.apply_routes(&a), decode_routes(&b));
        // And the reverse diff reconstructs A from B.
        let rev = MapDiff::compute(&b, &a).expect("compatible");
        assert_eq!(rev.apply_cells(&b), decode_cells(&a));
        assert_eq!(rev.apply_routes(&b), decode_routes(&a));
    }

    #[test]
    fn different_universes_are_rejected() {
        let a = snap_a();
        // Same shape, different domain table.
        let mut w = SnapWriter::new();
        w.section_u64(section::META, &[42, 3, 3, 2, 4, 4, 2]);
        w.section_u32(section::DOM_OFF, &[0, 10, 20]);
        w.section_u8(section::DOM_BYTES, b"a.example\0c.example\0");
        w.section_u32(section::DOM_SORTED, &[0, 1]);
        w.section_u32(section::PFX_BASE, &[0x0A000100, 0x0A000000, 0x0A000200]);
        w.section_u32(section::PFX_OWNER, &[1, 0, 2]);
        w.section_u32(section::PFX_SORTED, &[1, 0, 2]);
        w.section_u64(section::CELL_SVC_OFF, &[0, 2, 4]);
        w.section_u32(section::CELL_PREFIX, &[0, 1, 1, 2]);
        w.section_u32(
            section::CELL_ADDR,
            &[0x0A000001, 0x0A000201, 0x0A000001, 0x0A000201],
        );
        w.section_u8(section::CELL_BITS, &[0, 0, 0, 0]);
        w.section_u32(section::CELL_REV, &[0, 2, 1, 3]);
        w.section_u32(section::FRONT_ADDR, &[0x0A000001, 0x0A000201]);
        w.section_u32(section::FRONT_OWNER, &[1, u32::MAX]);
        w.section_u64(section::ROUTE_OFF, &[0, 1, 3, 4]);
        w.section_u32(section::ROUTE_NBR, &[1, 0, 2, 1]);
        w.section_u8(
            section::ROUTE_KIND,
            &[rel::PROVIDER, rel::CUSTOMER, rel::PEER, rel::PEER],
        );
        let c = Snapshot::from_bytes(w.finish()).expect("well-formed");
        let err = MapDiff::compute(&a, &c).expect_err("must reject");
        assert_eq!(
            err,
            DiffError::Incompatible {
                what: "domain tables"
            }
        );
        assert!(err.to_string().contains("not comparable"));
    }
}
