//! Snapshot round-trip: every query the serving layer answers off the
//! bytes must agree with the in-memory [`TrafficMap`] the bytes were
//! serialized from, the bytes must be identical at any thread count, and
//! any corruption must be rejected at open.

use itm_core::{snapshot_bytes, MapConfig, ParallelExecutor, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};
use itm_serve::Snapshot;
use itm_types::{Asn, Ipv4Addr, PrefixId, ServiceId};
use proptest::prelude::*;

fn small_world(seed: u64) -> (Substrate, TrafficMap) {
    let s = Substrate::build(SubstrateConfig::small(), seed).unwrap();
    let m = TrafficMap::build(&s, &MapConfig::default()).unwrap();
    (s, m)
}

/// One small snapshot, built once and shared by every proptest case —
/// rebuilding the map per case would dominate the suite's runtime.
fn good_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let (s, m) = small_world(7);
        snapshot_bytes(&s, &m)
    })
}

#[test]
fn every_point_query_agrees_with_the_in_memory_map() {
    let (s, m) = small_world(42);
    let snap = Snapshot::from_bytes(snapshot_bytes(&s, &m)).unwrap();
    let cells = &m.user_mapping.mapping;
    assert_eq!(snap.n_cells(), cells.len());

    // Every in-memory cell answers identically off the bytes.
    for c in cells.iter() {
        let ans = snap
            .point(c.service, c.prefix)
            .unwrap_or_else(|| panic!("cell {:?}×{:?} missing", c.service, c.prefix));
        assert_eq!(ans.addr, c.addr);
    }

    // A sweep of absent cells misses identically too.
    let mut checked = 0;
    for sv in 0..s.catalog.len() as u32 {
        for pf in (0..s.topo.prefixes.len() as u32).step_by(7) {
            let service = ServiceId(sv);
            let prefix = PrefixId(pf);
            let mem = cells.get(service, prefix);
            let served = snap.point(service, prefix).map(|a| a.addr);
            assert_eq!(mem, served, "disagreement at svc{sv} pfx{pf}");
            checked += 1;
        }
    }
    assert!(checked > 1000, "sweep too small to mean anything");
}

#[test]
fn reverse_lookup_agrees_with_a_scan_of_the_in_memory_map() {
    let (s, m) = small_world(42);
    let snap = Snapshot::from_bytes(snapshot_bytes(&s, &m)).unwrap();
    let cells = &m.user_mapping.mapping;

    // Collect the expected reverse image of every 13th cell's address.
    let probe_addrs: Vec<Ipv4Addr> = cells
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 13 == 0)
        .map(|(_, c)| c.addr)
        .collect();
    for addr in probe_addrs {
        let mut expect: Vec<(ServiceId, PrefixId)> = cells
            .iter()
            .filter(|c| c.addr == addr)
            .map(|c| (c.service, c.prefix))
            .collect();
        expect.sort();
        let mut got = snap.reverse(addr);
        got.sort();
        assert_eq!(expect, got, "reverse({addr}) disagrees");
    }
    assert!(snap.reverse(Ipv4Addr(0xFFFF_FFFF)).is_empty());
}

#[test]
fn route_queries_agree_with_the_route_view() {
    let (s, m) = small_world(42);
    let snap = Snapshot::from_bytes(snapshot_bytes(&s, &m)).unwrap();
    assert_eq!(snap.n_ases(), m.route_view.n_ases());
    for a in 0..m.route_view.n_ases() as u32 {
        let mem: Vec<(Asn, u8)> = m
            .route_view
            .neighbors(Asn(a))
            .iter()
            .map(|&(nbr, kind)| {
                let code = match kind {
                    itm_topology::NeighborKind::Customer => itm_types::snap::rel::CUSTOMER,
                    itm_topology::NeighborKind::Provider => itm_types::snap::rel::PROVIDER,
                    itm_topology::NeighborKind::Peer => itm_types::snap::rel::PEER,
                };
                (nbr, code)
            })
            .collect();
        let served: Vec<(Asn, u8)> = snap.neighbors(Asn(a)).collect();
        assert_eq!(mem, served, "adjacency of AS{a} disagrees");
        for (nbr, code) in mem {
            assert_eq!(snap.edge(Asn(a), nbr), Some(code));
        }
    }
}

#[test]
fn domain_and_prefix_tables_agree_with_the_substrate() {
    let (s, m) = small_world(42);
    let snap = Snapshot::from_bytes(snapshot_bytes(&s, &m)).unwrap();
    assert_eq!(snap.n_services(), s.catalog.len());
    for svc in &s.catalog.services {
        assert_eq!(snap.domain_of(svc.id), Some(svc.domain.as_str()));
        assert_eq!(snap.service_named(&svc.domain), Some(svc.id));
    }
    assert_eq!(snap.n_prefixes(), s.topo.prefixes.len());
    for rec in s.topo.prefixes.iter() {
        assert_eq!(snap.prefix_net(rec.id), Some(rec.net));
        assert_eq!(snap.prefix_owner(rec.id), Some(rec.owner));
        assert_eq!(snap.find_prefix(rec.net), Some(rec.id));
        assert_eq!(snap.prefix_of_addr(rec.net.network()), Some(rec.id));
    }
}

#[test]
fn snapshot_bytes_are_identical_across_thread_counts() {
    let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
    let one = {
        let exec = ParallelExecutor::new(1);
        let m = TrafficMap::build_with(&s, &MapConfig::default(), &exec).unwrap();
        snapshot_bytes(&s, &m)
    };
    let three = {
        let exec = ParallelExecutor::new(3);
        let m = TrafficMap::build_with(&s, &MapConfig::default(), &exec).unwrap();
        snapshot_bytes(&s, &m)
    };
    assert_eq!(one, three, "snapshot bytes depend on the thread count");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any byte anywhere in the file makes it unopenable — the
    /// whole-file checksum turns silent corruption into a hard error.
    #[test]
    fn any_corrupted_byte_is_rejected_at_open(pos in any::<u32>(), flip in 1u8..=255) {
        let good = good_bytes();
        let mut bad = good.to_vec();
        let i = pos as usize % bad.len();
        bad[i] ^= flip;
        prop_assert!(
            Snapshot::from_bytes(bad).is_err(),
            "corruption at byte {} (xor {:#04x}) went undetected", i, flip
        );
    }

    /// Truncation at any length is rejected too.
    #[test]
    fn any_truncation_is_rejected_at_open(cut in any::<u32>()) {
        let good = good_bytes();
        let len = cut as usize % good.len();
        prop_assert!(Snapshot::from_bytes(good[..len].to_vec()).is_err());
    }
}
