//! Property-based tests for the core data structures.

use itm_types::rng::{lognormal, pareto, weighted_choice, zipf_index};
use itm_types::stats::{gini, kendall_tau, pearson, spearman, top_k_for_share, Ecdf};
use itm_types::{
    DirtySet, EpochAction, EpochBounds, EpochPlan, FaultInjector, FaultPlan, FaultStats, Ipv4Addr,
    Ipv4Net, SeedDomain, ServiceId, SimDuration, SimTime,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// A valid epoch plan with every field inside its documented range.
fn arb_epoch_plan() -> impl Strategy<Value = EpochPlan> {
    (
        0.0f64..=1.0,
        0u32..50,
        0.0f64..=1.0,
        0u32..20,
        -24.0f64..24.0,
    )
        .prop_map(
            |(resolver_churn, link_flaps, vm_churn, rehome_services, diurnal_shift_hours)| {
                EpochPlan {
                    resolver_churn,
                    link_flaps,
                    vm_churn,
                    rehome_services,
                    diurnal_shift_hours,
                }
            },
        )
}

/// Arbitrary (but non-degenerate) eligibility-list sizes.
fn arb_epoch_bounds() -> impl Strategy<Value = EpochBounds> {
    (1u32..200, 1u32..200, 1u32..40, 1u32..40).prop_map(
        |(n_resolver_sites, n_flappable_links, n_cloud_vms, n_ecs_services)| EpochBounds {
            n_resolver_sites,
            n_flappable_links,
            n_cloud_vms,
            n_ecs_services,
        },
    )
}

proptest! {
    // ---------- prefix arithmetic ----------

    #[test]
    fn addr_display_parse_round_trip(raw in any::<u32>()) {
        let a = Ipv4Addr(raw);
        let s = a.to_string();
        let b: Ipv4Addr = s.parse().unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn net_display_parse_round_trip(raw in any::<u32>(), len in 0u8..=32) {
        let n = Ipv4Net::new(Ipv4Addr(raw), len).unwrap();
        let s = n.to_string();
        let m: Ipv4Net = s.parse().unwrap();
        prop_assert_eq!(n, m);
    }

    #[test]
    fn net_contains_its_own_addresses(raw in any::<u32>(), len in 0u8..=32, i in any::<u32>()) {
        let n = Ipv4Net::new(Ipv4Addr(raw), len).unwrap();
        prop_assert!(n.contains(n.addr(i)));
        prop_assert!(n.contains(n.network()));
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_up_to_equality(
        a in any::<u32>(), la in 0u8..=32,
        b in any::<u32>(), lb in 0u8..=32,
    ) {
        let x = Ipv4Net::new(Ipv4Addr(a), la).unwrap();
        let y = Ipv4Net::new(Ipv4Addr(b), lb).unwrap();
        prop_assert!(x.covers(x));
        if x.covers(y) && y.covers(x) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn supernet_covers_and_split_partitions(raw in any::<u32>(), len in 1u8..=31) {
        let n = Ipv4Net::new(Ipv4Addr(raw), len).unwrap();
        let sup = n.supernet().unwrap();
        prop_assert!(sup.covers(n));
        let (lo, hi) = n.split().unwrap();
        prop_assert!(n.covers(lo) && n.covers(hi));
        prop_assert_eq!(lo.size() as u64 + hi.size() as u64, n.size() as u64);
        // The halves are disjoint.
        prop_assert!(!lo.covers(hi) && !hi.covers(lo));
    }

    #[test]
    fn slash24_enumeration_is_exact(raw in any::<u32>(), len in 8u8..=24) {
        let n = Ipv4Net::new(Ipv4Addr(raw), len).unwrap();
        let subs: Vec<Ipv4Net> = n.slash24s().collect();
        prop_assert_eq!(subs.len() as u64, 1u64 << (24 - len.min(24)));
        for s in &subs {
            prop_assert_eq!(s.len(), 24);
            prop_assert!(n.covers(*s));
        }
        // Consecutive and non-overlapping.
        for w in subs.windows(2) {
            prop_assert_eq!(w[1].network().0 - w[0].network().0, 256);
        }
    }

    // ---------- deterministic seeding ----------

    #[test]
    fn seed_domain_is_pure(master in any::<u64>(), name in "[a-z]{1,12}") {
        let d = SeedDomain::new(master);
        prop_assert_eq!(d.seed(&name), d.seed(&name));
        prop_assert_eq!(d.child(&name).master(), d.child(&name).master());
    }

    #[test]
    fn indexed_rngs_differ_across_indices(master in any::<u64>(), i in 0u64..1000) {
        use rand::RngCore;
        let d = SeedDomain::new(master);
        let a = d.rng_indexed("x", i).next_u64();
        let b = d.rng_indexed("x", i + 1).next_u64();
        prop_assert_ne!(a, b);
    }

    #[test]
    fn shard_domains_never_collide(
        master in any::<u64>(),
        campaigns in proptest::collection::vec("[a-z-]{1,16}", 1..6),
        n_shards in 1u64..64,
    ) {
        // Every (campaign, shard) pair must get its own stream: a collision
        // would make two parallel shards replay identical randomness, and
        // the merged campaign output would silently lose independence.
        use std::collections::HashSet;
        let d = SeedDomain::new(master);
        let mut seen: HashSet<u64> = HashSet::new();
        let mut pairs = 0usize;
        for c in &campaigns {
            for k in 0..n_shards {
                seen.insert(d.shard(c, k).master());
                pairs += 1;
            }
        }
        // Distinct campaign *names* only — duplicate names in the input
        // legitimately produce identical domains, so count unique pairs.
        let unique: HashSet<(&str, u64)> = campaigns
            .iter()
            .flat_map(|c| (0..n_shards).map(move |k| (c.as_str(), k)))
            .collect();
        prop_assert_eq!(seen.len(), unique.len());
        prop_assert!(pairs >= unique.len());
        // And no shard domain aliases its campaign's sequential child.
        for c in &campaigns {
            prop_assert!(!seen.contains(&d.child(c).master()));
        }
    }

    // ---------- fault injection ----------

    #[test]
    fn backoff_is_bounded_monotone_and_pure(
        master in any::<u64>(),
        entity in any::<u64>(),
        base in 1u64..60,
        cap_extra in 0u64..600,
        retries in 1u32..12,
    ) {
        let plan = FaultPlan {
            loss: 0.1,
            timeout: 0.1,
            refusal: 0.1,
            churn: 0.0,
            max_retries: retries,
            backoff_base_secs: base,
            backoff_cap_secs: base + cap_extra,
        };
        let d = SeedDomain::new(master);
        let inj = FaultInjector::new(plan.clone(), &d, "prop");
        let twin = FaultInjector::new(plan.clone(), &SeedDomain::new(master), "prop");
        let mut prev = 0u64;
        let mut total = 0u64;
        for attempt in 0..retries {
            let delay = inj.backoff_secs(entity, attempt);
            // Identical SeedDomains produce the identical schedule.
            prop_assert_eq!(delay, twin.backoff_secs(entity, attempt));
            // Every delay respects the cap and the schedule never
            // shrinks: base·2^k + jitter (jitter < base) is strictly
            // increasing in k until the cap clamps it flat.
            prop_assert!(delay <= plan.backoff_cap_secs);
            prop_assert!(delay >= prev, "backoff shrank: {prev} -> {delay}");
            prev = delay;
            total += delay;
        }
        prop_assert_eq!(inj.total_backoff_secs(entity, retries), total);
        // Off plans wait for nothing.
        let off = FaultInjector::new(FaultPlan::off(), &d, "prop");
        prop_assert_eq!(off.total_backoff_secs(entity, retries), 0);
    }

    #[test]
    fn disjoint_shard_domains_draw_uncorrelated_fates(
        master in any::<u64>(),
        shard_a in 0u64..32,
        offset in 1u64..32,
    ) {
        // Two injectors over disjoint shard domains must not replay each
        // other's randomness: a 50%-loss plan drawn over 64 entities
        // collides on every single fate with probability 2^-64.
        let plan = FaultPlan {
            loss: 0.5,
            timeout: 0.0,
            refusal: 0.0,
            churn: 0.5,
            max_retries: 0,
            backoff_base_secs: 1,
            backoff_cap_secs: 1,
        };
        let d = SeedDomain::new(master);
        let a = FaultInjector::new(plan.clone(), &d.shard("campaign", shard_a), "faults");
        let b = FaultInjector::new(plan.clone(), &d.shard("campaign", shard_a + offset), "faults");
        let fates_of = |inj: &FaultInjector| -> Vec<bool> {
            (0..64u64).map(|e| inj.fate(e, 0, 0).succeeded()).collect()
        };
        prop_assert_ne!(fates_of(&a), fates_of(&b));
        let churn_of = |inj: &FaultInjector| -> Vec<bool> {
            (0..64u64).map(|e| inj.churned(e)).collect()
        };
        prop_assert_ne!(churn_of(&a), churn_of(&b));
        // Same domain, same campaign: byte-identical draws.
        let a_again = FaultInjector::new(plan, &d.shard("campaign", shard_a), "faults");
        prop_assert_eq!(fates_of(&a), fates_of(&a_again));
    }

    #[test]
    fn fault_stats_accounting_is_exact(
        master in any::<u64>(),
        rate in 0.0f64..0.9,
        n in 1u64..500,
    ) {
        let plan = FaultPlan {
            loss: rate / 3.0,
            timeout: rate / 3.0,
            refusal: rate / 3.0,
            churn: 0.0,
            max_retries: 2,
            backoff_base_secs: 1,
            backoff_cap_secs: 8,
        };
        let inj = FaultInjector::new(plan, &SeedDomain::new(master), "prop");
        let mut stats = FaultStats::default();
        for e in 0..n {
            stats.record(inj.fate(e, 0, 0));
        }
        prop_assert_eq!(stats.observed + stats.degraded + stats.lost, n);
        prop_assert_eq!(stats.issued(), n);
        // Retries count degraded probes only (a lost probe's attempts
        // are implied by the plan): each degraded probe retried between
        // once and `max_retries` times.
        prop_assert!(stats.retries >= stats.degraded);
        prop_assert!(stats.retries <= stats.degraded * 2);
        if stats.degraded == 0 && stats.lost == 0 {
            prop_assert!(stats.is_clean());
        }
    }

    // ---------- distributions ----------

    #[test]
    fn zipf_index_in_range(seed in any::<u64>(), n in 1usize..500, s in 0.5f64..2.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(zipf_index(&mut rng, n, s) < n);
        }
    }

    #[test]
    fn pareto_respects_floor(seed in any::<u64>(), xmin in 0.1f64..100.0, alpha in 0.5f64..3.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(pareto(&mut rng, xmin, alpha) >= xmin);
        }
    }

    #[test]
    fn lognormal_is_positive(seed in any::<u64>(), mu in -3.0f64..3.0, sigma in 0.0f64..2.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(lognormal(&mut rng, mu, sigma) > 0.0);
        }
    }

    #[test]
    fn weighted_choice_picks_positive_weight(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match weighted_choice(&mut rng, &weights) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|w| *w <= 0.0)),
        }
    }

    // ---------- statistics ----------

    #[test]
    fn ecdf_is_monotone_and_bounded(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let e = Ecdf::unweighted(values.clone());
        let mut prev = 0.0;
        for &(v, f) in e.points() {
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
            prop_assert!(v.is_finite());
            prev = f;
        }
        prop_assert!((e.points().last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecdf_quantile_is_inverse_of_fraction(
        values in proptest::collection::vec(-100f64..100.0, 2..50),
        q in 0.0f64..1.0,
    ) {
        let e = Ecdf::unweighted(values);
        let x = e.quantile(q).unwrap();
        prop_assert!(e.fraction_at(x) >= q - 1e-9);
    }

    #[test]
    fn correlations_are_bounded(
        pairs in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..40),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Some(r) = spearman(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Some(r) = kendall_tau(&xs, &ys) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn correlation_with_self_is_one(values in proptest::collection::vec(-100f64..100.0, 3..40)) {
        // Need non-constant input.
        prop_assume!(values.windows(2).any(|w| w[0] != w[1]));
        let r = pearson(&values, &values).unwrap();
        prop_assert!((r - 1.0).abs() < 1e-9);
        let s = spearman(&values, &values).unwrap();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gini_bounded(values in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let g = gini(&values);
        prop_assert!((0.0..1.0).contains(&g) || g.abs() < 1e-12);
    }

    #[test]
    fn top_k_monotone_in_fraction(values in proptest::collection::vec(0.01f64..1e3, 1..50)) {
        let k50 = top_k_for_share(&values, 0.5);
        let k90 = top_k_for_share(&values, 0.9);
        prop_assert!(k50 <= k90);
        prop_assert!(k90 <= values.len());
        prop_assert!(k50 >= 1);
    }

    // ---------- epoch plans ----------

    #[test]
    fn epoch_actions_are_pure(
        master in any::<u64>(),
        epoch in 0u32..1000,
        plan in arb_epoch_plan(),
        bounds in arb_epoch_bounds(),
    ) {
        // Every in-range plan validates, and the mutation sequence is a
        // pure function of (plan, seeds, epoch, bounds): two independent
        // generations from the same inputs are identical, element for
        // element — the property the incremental engine's replayed
        // from-scratch rebuilds lean on.
        plan.validate().unwrap();
        let a = plan.actions(&SeedDomain::new(master), epoch, &bounds);
        let b = plan.actions(&SeedDomain::new(master), epoch, &bounds);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn epoch_streams_are_uncorrelated(
        master in any::<u64>(),
        epoch in 0u32..500,
        gap in 1u32..500,
    ) {
        // Distinct epochs draw from distinct indexed streams under the
        // "epoch" seed domain, and distinct master seeds re-key the whole
        // domain: either change must produce a different mutation
        // sequence. The plan is pinned to one with plenty of entropy (64
        // per-entity coin flips plus draws) so a collision would mean the
        // streams genuinely alias, not that the plan was too quiet.
        let plan = EpochPlan {
            resolver_churn: 0.5,
            link_flaps: 8,
            vm_churn: 0.5,
            rehome_services: 4,
            diurnal_shift_hours: 0.0,
        };
        let bounds = EpochBounds {
            n_resolver_sites: 64,
            n_flappable_links: 64,
            n_cloud_vms: 32,
            n_ecs_services: 16,
        };
        let d = SeedDomain::new(master);
        let here = plan.actions(&d, epoch, &bounds);
        prop_assert_ne!(&here, &plan.actions(&d, epoch + gap, &bounds));
        prop_assert_ne!(
            &here,
            &plan.actions(&SeedDomain::new(master.wrapping_add(u64::from(gap))), epoch, &bounds)
        );
    }

    #[test]
    fn epoch_action_indices_respect_bounds(
        master in any::<u64>(),
        epoch in 0u32..200,
        plan in arb_epoch_plan(),
        bounds in arb_epoch_bounds(),
    ) {
        for a in plan.actions(&SeedDomain::new(master), epoch, &bounds) {
            match a {
                EpochAction::ResolverChurn { site } => prop_assert!(site < bounds.n_resolver_sites),
                EpochAction::LinkFlap { link } => prop_assert!(link < bounds.n_flappable_links),
                EpochAction::VmChurn { vm } => prop_assert!(vm < bounds.n_cloud_vms),
                EpochAction::Rehome { service, .. } => prop_assert!(service < bounds.n_ecs_services),
                EpochAction::DiurnalShift { .. } => {}
            }
        }
    }

    #[test]
    fn epoch_dirty_union_covers_every_action(
        master in any::<u64>(),
        epoch in 0u32..200,
        plan in arb_epoch_plan(),
        bounds in arb_epoch_bounds(),
    ) {
        // The epoch's dirty set must be a superset of every individual
        // mutation's invalidations — anything less and the incremental
        // rebuild would retain a campaign whose inputs changed. Rehome
        // actions must additionally surface their resolved service ids.
        let actions = plan.actions(&SeedDomain::new(master), epoch, &bounds);
        let dirty = DirtySet::from_actions(&actions, |i| ServiceId(i + 100));
        for a in &actions {
            for c in a.dirties() {
                prop_assert!(dirty.is_dirty(*c), "{a:?} dirties {c:?} but the union lost it");
            }
            if let EpochAction::Rehome { service, .. } = a {
                prop_assert!(dirty.services.contains(&ServiceId(service + 100)));
            }
        }
        // And the closure is idempotent: normalizing again changes nothing.
        let mut again = dirty.clone();
        again.normalize();
        prop_assert_eq!(again, dirty);
    }

    // ---------- time ----------

    #[test]
    fn sim_time_addition_is_consistent(t in 0u64..1_000_000_000, d in 0u64..1_000_000) {
        let t0 = SimTime(t);
        let t1 = t0 + SimDuration(d);
        prop_assert_eq!((t1 - t0).as_secs(), d);
        prop_assert!(t1.utc_hour() >= 0.0 && t1.utc_hour() < 24.0);
        prop_assert!(t1.local_hour(13.5) >= 0.0 && t1.local_hour(13.5) < 24.0);
    }
}
