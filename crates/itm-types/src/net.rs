//! IPv4 addresses and prefixes.
//!
//! The substrate allocates address space and reasons about prefixes at /24
//! granularity (the finest granularity the paper's Table 1 asks for:
//! "Desired: /24 Prefix"). We use our own compact `u32`-backed types rather
//! than `std::net::Ipv4Addr` because we need prefix arithmetic (containment,
//! supernet/subnet enumeration, /24 iteration) that std does not provide,
//! and because a bare `u32` keeps multi-million-prefix tables cache-friendly.

use crate::error::{ItmError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address, stored as a host-order `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Build an address from dotted-quad octets.
    #[inline]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most-significant first.
    #[inline]
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The /24 network containing this address.
    #[inline]
    pub const fn slash24(self) -> Ipv4Net {
        Ipv4Net {
            base: self.0 & 0xFFFF_FF00,
            len: 24,
        }
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = ItmError;

    fn from_str(s: &str) -> Result<Self> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| ItmError::parse("Ipv4Addr", s))?;
            *slot = part
                .parse::<u8>()
                .map_err(|_| ItmError::parse("Ipv4Addr", s))?;
            // Reject forms like "01.2.3.4" that u8::parse accepts but
            // operational tooling treats as ambiguous (octal heritage).
            if part.len() > 1 && part.starts_with('0') {
                return Err(ItmError::parse("Ipv4Addr", s));
            }
        }
        if parts.next().is_some() {
            return Err(ItmError::parse("Ipv4Addr", s));
        }
        let [a, b, c, d] = octets;
        Ok(Ipv4Addr::new(a, b, c, d))
    }
}

/// An IPv4 network: a base address plus a prefix length.
///
/// Invariant: all host bits below `len` are zero in `base`. Constructors
/// enforce this, so two equal networks always compare equal bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    base: u32,
    len: u8,
}

impl Ipv4Net {
    /// Construct a network, masking off host bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(ItmError::config("prefix_len", "must be <= 32"));
        }
        Ok(Ipv4Net {
            base: addr.0 & Self::mask(len),
            len,
        })
    }

    /// The netmask for a given prefix length.
    #[inline]
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network (lowest) address.
    #[inline]
    pub const fn network(self) -> Ipv4Addr {
        Ipv4Addr(self.base)
    }

    /// The prefix length.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // prefix length, not a container
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this network is the default route `0.0.0.0/0`.
    #[inline]
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered (saturating at `u32::MAX` for /0).
    #[inline]
    pub const fn size(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// Whether `addr` falls inside this network.
    #[inline]
    pub const fn contains(self, addr: Ipv4Addr) -> bool {
        addr.0 & Self::mask(self.len) == self.base
    }

    /// Whether `other` is fully contained in (or equal to) this network.
    #[inline]
    pub const fn covers(self, other: Ipv4Net) -> bool {
        self.len <= other.len && (other.base & Self::mask(self.len)) == self.base
    }

    /// The immediate supernet (one bit shorter), or `None` at /0.
    pub fn supernet(self) -> Option<Ipv4Net> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv4Net {
                base: self.base & Self::mask(len),
                len,
            })
        }
    }

    /// The `i`-th address inside the network (wrapping within the block),
    /// useful for assigning deterministic host addresses.
    #[inline]
    pub const fn addr(self, i: u32) -> Ipv4Addr {
        Ipv4Addr(self.base | (i & !Self::mask(self.len)))
    }

    /// Iterate the /24 subnets of this network. A /24 or longer yields its
    /// own covering /24 exactly once.
    pub fn slash24s(self) -> impl Iterator<Item = Ipv4Net> {
        let (start, count) = if self.len >= 24 {
            (self.base & 0xFFFF_FF00, 1u64)
        } else {
            (self.base, 1u64 << (24 - self.len))
        };
        (0..count).map(move |i| Ipv4Net {
            base: start + ((i as u32) << 8),
            len: 24,
        })
    }

    /// Split into the two halves one bit longer, or `None` at /32.
    pub fn split(self) -> Option<(Ipv4Net, Ipv4Net)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let hi_bit = 1u32 << (32 - len);
        Some((
            Ipv4Net {
                base: self.base,
                len,
            },
            Ipv4Net {
                base: self.base | hi_bit,
                len,
            },
        ))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Net {
    type Err = ItmError;

    fn from_str(s: &str) -> Result<Self> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ItmError::parse("Ipv4Net", s))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| ItmError::parse("Ipv4Net", s))?;
        let len: u8 = len.parse().map_err(|_| ItmError::parse("Ipv4Net", s))?;
        Ipv4Net::new(addr, len).map_err(|_| ItmError::parse("Ipv4Net", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    #[test]
    fn addr_display_and_parse_round_trip() {
        for s in ["0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255"] {
            let a: Ipv4Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "a.b.c.d",
            "01.2.3.4",
            "1..2.3",
        ] {
            assert!(s.parse::<Ipv4Addr>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn net_parse_masks_host_bits() {
        let n = net("10.1.2.3/24");
        assert_eq!(n.to_string(), "10.1.2.0/24");
        assert_eq!(n.len(), 24);
        assert_eq!(n.size(), 256);
    }

    #[test]
    fn net_parse_rejects_bad_lengths() {
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn containment() {
        let n = net("10.1.0.0/16");
        assert!(n.contains("10.1.255.255".parse().unwrap()));
        assert!(!n.contains("10.2.0.0".parse().unwrap()));
        assert!(n.covers(net("10.1.2.0/24")));
        assert!(n.covers(n));
        assert!(!n.covers(net("10.0.0.0/8")));
        assert!(net("0.0.0.0/0").covers(n));
    }

    #[test]
    fn slash24_enumeration() {
        let n = net("10.1.0.0/22");
        let subs: Vec<_> = n.slash24s().collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.1.0.0/24");
        assert_eq!(subs[3].to_string(), "10.1.3.0/24");
        // A /24 yields itself; a /28 yields its covering /24.
        assert_eq!(net("10.9.9.0/24").slash24s().count(), 1);
        let covering: Vec<_> = net("10.9.9.16/28").slash24s().collect();
        assert_eq!(covering, vec![net("10.9.9.0/24")]);
    }

    #[test]
    fn split_and_supernet_are_inverse() {
        let n = net("172.16.0.0/12");
        let (lo, hi) = n.split().unwrap();
        assert_eq!(lo.supernet().unwrap(), n);
        assert_eq!(hi.supernet().unwrap(), n);
        assert!(n.covers(lo) && n.covers(hi));
        assert_ne!(lo, hi);
        assert!(net("1.2.3.4/32").split().is_none());
        assert!(net("0.0.0.0/0").supernet().is_none());
    }

    #[test]
    fn indexed_addr_stays_in_block() {
        let n = net("192.0.2.0/24");
        assert_eq!(n.addr(0).to_string(), "192.0.2.0");
        assert_eq!(n.addr(255).to_string(), "192.0.2.255");
        // wraps within the block rather than escaping it
        assert_eq!(n.addr(256), n.addr(0));
        assert!(n.contains(n.addr(1234)));
    }

    #[test]
    fn slash24_of_addr() {
        let a: Ipv4Addr = "198.51.100.77".parse().unwrap();
        assert_eq!(a.slash24().to_string(), "198.51.100.0/24");
    }

    #[test]
    fn default_route_properties() {
        let d = net("0.0.0.0/0");
        assert!(d.is_default());
        assert_eq!(d.size(), u32::MAX);
        assert!(d.contains("203.0.113.9".parse().unwrap()));
    }
}
