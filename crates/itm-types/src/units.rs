//! Traffic-volume units.
//!
//! The map's central quantity is *relative activity* (§2: "relative levels
//! of activity … suffice and are easier to estimate"), but the substrate's
//! ground truth is denominated in absolute bits per second so that shares,
//! ratios, and diurnal scaling compose correctly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

/// A traffic rate in bits per second.
///
/// A thin `f64` wrapper: rates are estimates, not counters, so floating
/// point is the honest representation. Display renders human units.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bps(pub f64);

impl Bps {
    /// Zero rate.
    pub const ZERO: Bps = Bps(0.0);

    /// Kilobits per second.
    pub fn kbps(v: f64) -> Self {
        Bps(v * 1e3)
    }
    /// Megabits per second.
    pub fn mbps(v: f64) -> Self {
        Bps(v * 1e6)
    }
    /// Gigabits per second.
    pub fn gbps(v: f64) -> Self {
        Bps(v * 1e9)
    }

    /// The raw value in bits per second.
    pub fn raw(self) -> f64 {
        self.0
    }

    /// This rate as a fraction of `total` (0 if `total` is zero).
    pub fn share_of(self, total: Bps) -> f64 {
        if total.0 > 0.0 {
            self.0 / total.0
        } else {
            0.0
        }
    }
}

impl Add for Bps {
    type Output = Bps;
    fn add(self, rhs: Bps) -> Bps {
        Bps(self.0 + rhs.0)
    }
}

impl AddAssign for Bps {
    fn add_assign(&mut self, rhs: Bps) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Bps {
    type Output = Bps;
    fn mul(self, rhs: f64) -> Bps {
        Bps(self.0 * rhs)
    }
}

impl Div<f64> for Bps {
    type Output = Bps;
    fn div(self, rhs: f64) -> Bps {
        Bps(self.0 / rhs)
    }
}

impl Sum for Bps {
    fn sum<I: Iterator<Item = Bps>>(iter: I) -> Bps {
        Bps(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v >= 1e12 {
            write!(f, "{:.2} Tbps", v / 1e12)
        } else if v >= 1e9 {
            write!(f, "{:.2} Gbps", v / 1e9)
        } else if v >= 1e6 {
            write!(f, "{:.2} Mbps", v / 1e6)
        } else if v >= 1e3 {
            write!(f, "{:.2} Kbps", v / 1e3)
        } else {
            write!(f, "{:.2} bps", v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Bps::kbps(1.0).raw(), 1e3);
        assert_eq!(Bps::mbps(2.0).raw(), 2e6);
        assert_eq!(Bps::gbps(0.5).raw(), 5e8);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Bps(500.0).to_string(), "500.00 bps");
        assert_eq!(Bps::kbps(1.5).to_string(), "1.50 Kbps");
        assert_eq!(Bps::mbps(12.0).to_string(), "12.00 Mbps");
        assert_eq!(Bps::gbps(3.25).to_string(), "3.25 Gbps");
        assert_eq!(Bps(2.5e12).to_string(), "2.50 Tbps");
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Bps = [Bps::mbps(1.0), Bps::mbps(3.0)].into_iter().sum();
        assert_eq!(total, Bps::mbps(4.0));
        assert_eq!(Bps::mbps(1.0).share_of(total), 0.25);
        assert_eq!(Bps::mbps(1.0).share_of(Bps::ZERO), 0.0);
        assert_eq!((Bps::mbps(2.0) * 2.0).raw(), 4e6);
        assert_eq!((Bps::mbps(2.0) / 2.0).raw(), 1e6);
        let mut x = Bps::ZERO;
        x += Bps(1.0);
        assert_eq!(x.raw(), 1.0);
    }
}
