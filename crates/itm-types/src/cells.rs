//! Columnar map cells: the paper's `(service, prefix) → front-end` grid
//! stored as sorted segments instead of a pointer-heavy tree.
//!
//! The user-mapping phase dominated the build's tracked peak (97% of
//! ~419 MB on the default size) because every measured cell lived in a
//! `BTreeMap<(ServiceId, PrefixId), Ipv4Addr>` node. A [`CellMap`] packs
//! the same information into 12 bytes per cell, sorted by `(service,
//! prefix)`, with binary-search point lookups and iterator access to a
//! service's cells.
//!
//! The map is *segmented* — a sequence of individually sorted `Vec<Cell>`
//! segments whose concatenation is the full ascending cell sequence — so
//! that merging shard outputs is a zero-copy gather: campaign shards
//! sweep contiguous prefix slices and emit one chunk per (shard,
//! service), and for a fixed service the shard order *is* the prefix
//! order. [`CellMap::merge_shards`] therefore just moves segment handles
//! into service-major position; it never compares, copies, or allocates
//! cell storage, and the merge's transient memory is the size of one
//! `Vec` header table rather than a second copy of the grid. No sort on
//! the merge path, which is exactly what lint rule M003 enforces.

use crate::ids::{PrefixId, ServiceId};
use crate::net::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// One measured cell of the traffic map: `service` reaches clients in
/// `prefix` from the front-end at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// The popular service this cell belongs to.
    pub service: ServiceId,
    /// The client /24 being served.
    pub prefix: PrefixId,
    /// The front-end address answering for this `(service, prefix)` pair.
    pub addr: Ipv4Addr,
}

impl Cell {
    /// The sort key: cells order by `(service, prefix)`.
    #[inline]
    fn key(&self) -> (ServiceId, PrefixId) {
        (self.service, self.prefix)
    }
}

/// A segmented, `(service, prefix)`-sorted collection of map [`Cell`]s.
///
/// Invariants: segments are non-empty, each holds cells of a single
/// service, and the concatenated cell sequence is strictly ascending by
/// `(service, prefix)` — one front-end per cell. `firsts[i]` caches
/// `segs[i][0]`'s key for the segment-level binary search.
///
/// Note: `PartialEq` compares the segmentation, not just the logical
/// cell sequence. Every constructor is deterministic, so equal inputs
/// produce equal representations; compare [`CellMap::iter`] streams to
/// ignore segmentation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellMap {
    segs: Vec<Vec<Cell>>,
    firsts: Vec<(ServiceId, PrefixId)>,
    total: usize,
}

impl CellMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The key of the last cell, if any.
    fn last_key(&self) -> Option<(ServiceId, PrefixId)> {
        self.segs.last().and_then(|s| s.last()).map(Cell::key)
    }

    /// Append a cell; `cell` must sort strictly after the current last cell.
    ///
    /// Shard bodies satisfy this for free: they walk services in ascending
    /// catalogue order and each service's prefix slice in ascending order.
    /// A service change starts a new segment, which keeps segments
    /// single-service and makes shard outputs directly gatherable by
    /// [`CellMap::merge_shards`].
    pub fn push(&mut self, cell: Cell) {
        debug_assert!(
            self.last_key().is_none_or(|l| l < cell.key()),
            "CellMap::push out of order: {:?} after {:?}",
            cell.key(),
            self.last_key()
        );
        match self.segs.last_mut() {
            Some(seg) if seg.last().is_some_and(|l| l.service == cell.service) => {
                seg.push(cell);
            }
            _ => {
                self.firsts.push(cell.key());
                self.segs.push(vec![cell]);
            }
        }
        self.total += 1;
    }

    /// Zero-copy merge of per-shard maps into one.
    ///
    /// `parts` must come from shards sweeping contiguous, ascending
    /// prefix slices, in shard order — then for every service the parts'
    /// segments concatenate in prefix order, and the gather below (walk
    /// services ascending, take each part's matching segments in part
    /// order) reproduces the globally sorted sequence by *moving* segment
    /// handles. No cell is compared, copied, or reallocated, so merging
    /// adds nothing to the tracked peak beyond the handle table.
    pub fn merge_shards(parts: Vec<CellMap>) -> CellMap {
        let mut out = CellMap::new();
        let mut streams: Vec<_> = parts
            .into_iter()
            .map(|p| p.firsts.into_iter().zip(p.segs).peekable())
            .collect();
        loop {
            let mut next_svc: Option<ServiceId> = None;
            for st in &mut streams {
                if let Some(&((svc, _), _)) = st.peek() {
                    next_svc = Some(next_svc.map_or(svc, |m| m.min(svc)));
                }
            }
            let Some(svc) = next_svc else { break };
            for st in &mut streams {
                while matches!(st.peek(), Some(&((s, _), _)) if s == svc) {
                    let Some((first, seg)) = st.next() else { break };
                    debug_assert!(
                        out.last_key().is_none_or(|l| l < first),
                        "merge_shards parts out of shard order at {first:?}"
                    );
                    out.total += seg.len();
                    out.firsts.push(first);
                    out.segs.push(seg);
                }
            }
        }
        out
    }

    /// Merge arbitrary sorted runs into one map (k-way, by key).
    ///
    /// Runs must each be `(service, prefix)`-ascending (debug-asserted);
    /// keys duplicated across runs keep the earliest run's cell. Unlike
    /// [`CellMap::merge_shards`] this copies cells, so prefer the gather
    /// when the inputs are shard outputs.
    pub fn from_sorted_runs(runs: Vec<Vec<Cell>>) -> Self {
        let merged = merge_sorted_runs_by(runs, |a, b| a.key() < b.key());
        let mut out = CellMap::new();
        for cell in merged {
            if out.last_key() == Some(cell.key()) {
                continue;
            }
            out.push(cell);
        }
        out
    }

    /// Position of the first cell with key `>= key`, as (segment, index);
    /// `(segs.len(), 0)` when every cell is smaller.
    fn lower_bound(&self, key: (ServiceId, PrefixId)) -> (usize, usize) {
        let si = self.firsts.partition_point(|f| *f < key);
        if si == 0 {
            return (0, 0);
        }
        // The target may still fall inside the previous segment.
        let s = si - 1;
        let i = self.segs[s].partition_point(|c| c.key() < key);
        if i == self.segs[s].len() {
            (si, 0)
        } else {
            (s, i)
        }
    }

    /// The front-end serving `prefix` for `service`, if measured.
    pub fn get(&self, service: ServiceId, prefix: PrefixId) -> Option<Ipv4Addr> {
        let (s, i) = self.lower_bound((service, prefix));
        let c = self.segs.get(s)?.get(i)?;
        (c.key() == (service, prefix)).then_some(c.addr)
    }

    /// Number of measured cells.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the map has no cells.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterate all cells in `(service, prefix)` order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.segs.iter().flatten()
    }

    /// Iterate `service`'s cells, ascending by prefix id.
    pub fn cells_of(&self, service: ServiceId) -> impl Iterator<Item = &Cell> {
        let (s, i) = self.lower_bound((service, PrefixId(0)));
        self.segs
            .get(s..)
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .flat_map(move |(k, seg)| seg.get(if k == 0 { i } else { 0 }..).unwrap_or(&[]))
            .take_while(move |c| c.service == service)
    }

    /// Splice a freshly re-measured subset into a retained map.
    ///
    /// `self` is the previous epoch's full map, `fresh` a map measured
    /// over only the services in `dirty`. The result carries `fresh`'s
    /// segments for dirty services and `self`'s for everything else — a
    /// segment-handle move in the [`CellMap::merge_shards`] style, so the
    /// incremental epoch path never copies the retained grid. A dirty
    /// service absent from `fresh` simply vanishes (its cells were
    /// invalidated and the re-measurement produced none).
    ///
    /// The spliced map's *segmentation* generally differs from a
    /// from-scratch build's (retained segments keep their old shard
    /// boundaries), but the logical cell sequence — what
    /// [`CellMap::iter`] yields and what snapshots serialize — is
    /// identical, which is the equivalence the epoch engine asserts.
    pub fn splice_services(
        self,
        fresh: CellMap,
        dirty: &std::collections::BTreeSet<ServiceId>,
    ) -> CellMap {
        let mut out = CellMap::new();
        let mut old = self.firsts.into_iter().zip(self.segs).peekable();
        let mut new = fresh.firsts.into_iter().zip(fresh.segs).peekable();
        loop {
            // Retained segments of dirty services are replaced wholesale.
            while matches!(old.peek(), Some(&((s, _), _)) if dirty.contains(&s)) {
                old.next();
            }
            let next_old = old.peek().map(|&((s, _), _)| s);
            let next_new = new.peek().map(|&((s, _), _)| s);
            let svc = match (next_old, next_new) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            let src = if dirty.contains(&svc) {
                &mut new
            } else {
                &mut old
            };
            while matches!(src.peek(), Some(&((s, _), _)) if s == svc) {
                let Some((first, seg)) = src.next() else {
                    break;
                };
                debug_assert!(
                    out.last_key().is_none_or(|l| l < first),
                    "splice_services inputs out of order at {first:?}"
                );
                out.total += seg.len();
                out.firsts.push(first);
                out.segs.push(seg);
            }
            // A fresh segment for a clean service would violate the
            // contract; drop it rather than corrupt the ordering.
            while matches!(new.peek(), Some(&((s, _), _)) if s == svc) {
                debug_assert!(
                    false,
                    "splice_services: fresh cells for clean service {svc:?}"
                );
                new.next();
            }
        }
        out
    }

    /// Consume the map, flattening into the raw sorted cell vector.
    pub fn into_cells(self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.total);
        for seg in self.segs {
            out.extend(seg);
        }
        out
    }
}

/// K-way merge of individually sorted runs under a strict `less` ordering.
///
/// Stable across runs: on equal keys the earlier run's element comes first,
/// so the output is a deterministic function of the run order. Runs are
/// consumed front-to-back with a linear scan over the run heads — the
/// workspace merges at most [`crate::rng::DEFAULT_SHARDS`]-ish runs, where
/// a heap would cost more than it saves.
pub fn merge_sorted_runs_by<T>(runs: Vec<Vec<T>>, mut less: impl FnMut(&T, &T) -> bool) -> Vec<T> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heads: Vec<(T, std::vec::IntoIter<T>)> = runs
        .into_iter()
        .filter_map(|r| {
            let mut it = r.into_iter();
            it.next().map(|h| (h, it))
        })
        .collect();
    let mut out = Vec::with_capacity(total);
    while !heads.is_empty() {
        // Pick the run whose head is smallest; the earliest run wins ties.
        let mut best = 0;
        for i in 1..heads.len() {
            if less(&heads[i].0, &heads[best].0) {
                best = i;
            }
        }
        match heads[best].1.next() {
            Some(next) => out.push(std::mem::replace(&mut heads[best].0, next)),
            None => {
                let (last, _) = heads.remove(best);
                out.push(last);
            }
        }
    }
    out
}

/// K-way merge of sorted runs of an [`Ord`] type.
///
/// The merge-path replacement for `extend`-then-`sort`: shards sort their
/// own output (cheap, parallel, and off the merge path), and the merge is a
/// linear pass.
pub fn merge_sorted_runs<T: Ord>(runs: Vec<Vec<T>>) -> Vec<T> {
    merge_sorted_runs_by(runs, |a, b| a < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(s: u32, p: u32, a: u32) -> Cell {
        Cell {
            service: ServiceId(s),
            prefix: PrefixId(p),
            addr: Ipv4Addr(a),
        }
    }

    #[test]
    fn push_get_and_len() {
        let mut m = CellMap::new();
        assert!(m.is_empty());
        m.push(cell(0, 1, 10));
        m.push(cell(0, 5, 11));
        m.push(cell(2, 0, 12));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(ServiceId(0), PrefixId(5)), Some(Ipv4Addr(11)));
        assert_eq!(m.get(ServiceId(0), PrefixId(2)), None);
        assert_eq!(m.get(ServiceId(1), PrefixId(0)), None);
        assert_eq!(m.get(ServiceId(2), PrefixId(0)), Some(Ipv4Addr(12)));
        assert_eq!(m.get(ServiceId(9), PrefixId(9)), None);
    }

    #[test]
    fn from_sorted_runs_matches_btreemap_semantics() {
        use std::collections::BTreeMap;
        // Interleaved runs, NOT prefix-sliced — the generic merge path.
        let runs = vec![
            vec![cell(0, 0, 1), cell(0, 1, 2), cell(1, 0, 3)],
            vec![cell(0, 4, 4), cell(1, 5, 5)],
            vec![cell(0, 2, 6), cell(2, 9, 7)],
        ];
        let m = CellMap::from_sorted_runs(runs.clone());
        let mut tree: BTreeMap<(ServiceId, PrefixId), Ipv4Addr> = BTreeMap::new();
        for r in &runs {
            for c in r {
                tree.entry((c.service, c.prefix)).or_insert(c.addr);
            }
        }
        let flat: Vec<Cell> = tree
            .iter()
            .map(|(&(service, prefix), &addr)| Cell {
                service,
                prefix,
                addr,
            })
            .collect();
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), flat);
        assert_eq!(m.into_cells(), flat);
    }

    #[test]
    fn merge_shards_gathers_prefix_sliced_parts() {
        // Three shards over prefix slices [0..10), [10..20), [20..30),
        // each seeing services 0 and 2 — the campaign shape.
        let mut parts = Vec::new();
        for (k, base) in [0u32, 10, 20].iter().enumerate() {
            let mut p = CellMap::new();
            p.push(cell(0, base + 1, 100 + k as u32));
            p.push(cell(0, base + 3, 200 + k as u32));
            p.push(cell(2, base + 2, 300 + k as u32));
            parts.push(p);
        }
        let m = CellMap::merge_shards(parts);
        assert_eq!(m.len(), 9);
        let keys: Vec<(u32, u32)> = m
            .iter()
            .map(|c| (c.service.raw(), c.prefix.raw()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "gather must be globally sorted");
        assert_eq!(m.get(ServiceId(2), PrefixId(12)), Some(Ipv4Addr(301)));
        assert_eq!(m.get(ServiceId(1), PrefixId(12)), None);
    }

    #[test]
    fn merge_shards_handles_empty_and_skewed_parts() {
        let mut a = CellMap::new();
        a.push(cell(1, 0, 7));
        let parts = vec![CellMap::new(), a, CellMap::new()];
        let m = CellMap::merge_shards(parts);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(ServiceId(1), PrefixId(0)), Some(Ipv4Addr(7)));
    }

    #[test]
    fn duplicate_keys_keep_the_earliest_run() {
        let runs = vec![vec![cell(0, 0, 1)], vec![cell(0, 0, 2), cell(0, 1, 3)]];
        let m = CellMap::from_sorted_runs(runs);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(ServiceId(0), PrefixId(0)), Some(Ipv4Addr(1)));
    }

    #[test]
    fn cells_of_spans_segments() {
        // Service 1's cells land in two segments (two shards).
        let mut p0 = CellMap::new();
        p0.push(cell(0, 0, 1));
        p0.push(cell(1, 0, 2));
        let mut p1 = CellMap::new();
        p1.push(cell(1, 7, 3));
        p1.push(cell(3, 12, 4));
        let m = CellMap::merge_shards(vec![p0, p1]);
        let ones: Vec<u32> = m.cells_of(ServiceId(1)).map(|c| c.prefix.raw()).collect();
        assert_eq!(ones, vec![0, 7]);
        assert_eq!(m.cells_of(ServiceId(2)).count(), 0);
        assert_eq!(
            m.cells_of(ServiceId(3)).next().map(|c| c.addr),
            Some(Ipv4Addr(4))
        );
        assert_eq!(m.cells_of(ServiceId(9)).count(), 0);
    }

    #[test]
    fn splice_replaces_dirty_services_and_retains_clean() {
        use std::collections::BTreeSet;
        // Previous-epoch map: services 0, 1, 3 across two shards.
        let mut p0 = CellMap::new();
        p0.push(cell(0, 0, 1));
        p0.push(cell(1, 2, 2));
        let mut p1 = CellMap::new();
        p1.push(cell(1, 11, 3));
        p1.push(cell(3, 10, 4));
        let prev = CellMap::merge_shards(vec![p0, p1]);

        // Fresh subset build: service 1 re-measured (one cell moved).
        let mut fresh = CellMap::new();
        fresh.push(cell(1, 2, 20));
        fresh.push(cell(1, 12, 30));
        let dirty: BTreeSet<ServiceId> = [ServiceId(1)].into();

        let spliced = prev.splice_services(fresh, &dirty);
        assert_eq!(spliced.len(), 4);
        assert_eq!(spliced.get(ServiceId(0), PrefixId(0)), Some(Ipv4Addr(1)));
        assert_eq!(spliced.get(ServiceId(1), PrefixId(2)), Some(Ipv4Addr(20)));
        assert_eq!(spliced.get(ServiceId(1), PrefixId(11)), None);
        assert_eq!(spliced.get(ServiceId(1), PrefixId(12)), Some(Ipv4Addr(30)));
        assert_eq!(spliced.get(ServiceId(3), PrefixId(10)), Some(Ipv4Addr(4)));
        let keys: Vec<_> = spliced.iter().map(Cell::key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "splice must stay globally sorted");
    }

    #[test]
    fn splice_handles_vanishing_and_new_services() {
        use std::collections::BTreeSet;
        let mut prev = CellMap::new();
        prev.push(cell(0, 0, 1));
        prev.push(cell(2, 0, 2));
        // Service 2 re-measured to nothing; service 4 newly measured.
        let mut fresh = CellMap::new();
        fresh.push(cell(4, 5, 9));
        let dirty: BTreeSet<ServiceId> = [ServiceId(2), ServiceId(4)].into();
        let spliced = prev.splice_services(fresh, &dirty);
        assert_eq!(spliced.len(), 2);
        assert_eq!(spliced.get(ServiceId(2), PrefixId(0)), None);
        assert_eq!(spliced.get(ServiceId(4), PrefixId(5)), Some(Ipv4Addr(9)));
        // Empty dirty set: splice is the identity on the retained map.
        let mut prev2 = CellMap::new();
        prev2.push(cell(0, 0, 1));
        let id = prev2
            .clone()
            .splice_services(CellMap::new(), &BTreeSet::new());
        assert_eq!(id, prev2);
    }

    #[test]
    fn merge_sorted_runs_is_stable_and_complete() {
        let merged = merge_sorted_runs(vec![vec![1, 4, 7], vec![2, 4, 8], vec![], vec![0, 9]]);
        assert_eq!(merged, vec![0, 1, 2, 4, 4, 7, 8, 9]);
    }

    #[test]
    fn merge_of_empty_and_single_runs() {
        assert_eq!(merge_sorted_runs::<u32>(vec![]), Vec::<u32>::new());
        assert_eq!(merge_sorted_runs(vec![vec![3, 5]]), vec![3, 5]);
    }
}
