//! Domain-name interning: own each string once, key everything by u32.
//!
//! The paper's scale argument (§3, Table 1) is that an Internet-wide map is
//! only tractable if per-cell state is a few bytes. String-keyed maps break
//! that budget twice over: every `BTreeMap<String, _>` node carries a 24-byte
//! `String` header plus a heap block, and every shard/merge boundary clones
//! the key again. A [`DomainTable`] is the workspace's answer — domains are
//! interned exactly once (in catalogue order, so ids are reproducible across
//! runs and thread counts), and campaign code passes [`DomainId`]s.
//!
//! Determinism note: ids are assigned by **insertion order**, not by sorted
//! name, so the table is order-sensitive by design — build it from a
//! deterministic source (the service catalogue) and the ids are stable.
//! Fault injection must keep keying probe fates by [`stable_hash`] of the
//! *name* (via [`DomainTable::name`]), never the id, so that faulted builds
//! stay byte-identical to the pre-interning implementation.
//!
//! [`stable_hash`]: crate::rng::stable_hash

use crate::ids::DomainId;
use serde::{Deserialize, Serialize};

/// An insertion-ordered interner mapping domain names to dense [`DomainId`]s.
///
/// Lookup by name is a binary search over a sorted permutation (no
/// string-keyed map anywhere, so the table itself passes the M002 lint it
/// exists to satisfy); lookup by id is a direct index.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainTable {
    /// Interned names, indexed by `DomainId`.
    names: Vec<String>,
    /// Permutation of `0..names.len()` ordering `names` lexicographically;
    /// the binary-search index for [`DomainTable::id`].
    sorted: Vec<u32>,
}

impl DomainTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a table from names in iteration order.
    ///
    /// Duplicates collapse onto the first occurrence, so ids always stay
    /// dense and `len()` counts distinct names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = Self::new();
        for n in names {
            t.intern(n.as_ref());
        }
        t
    }

    /// Intern `name`, returning the existing id if it is already present.
    pub fn intern(&mut self, name: &str) -> DomainId {
        match self.search(name) {
            Ok(pos) => DomainId(self.sorted[pos]),
            Err(pos) => {
                let id = self.names.len() as u32;
                self.names.push(name.to_string());
                self.sorted.insert(pos, id);
                DomainId(id)
            }
        }
    }

    /// Look up an already-interned name.
    pub fn id(&self, name: &str) -> Option<DomainId> {
        self.search(name).ok().map(|pos| DomainId(self.sorted[pos]))
    }

    /// The name behind `id`, or `""` if the id is out of range.
    ///
    /// The empty-string fallback keeps presentation paths panic-free; an
    /// out-of-range id can only come from mixing tables, which the
    /// campaign code never does (ids flow from the same table they query).
    pub fn name(&self, id: DomainId) -> &str {
        self.names.get(id.index()).map(String::as_str).unwrap_or("")
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in insertion (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (DomainId(i as u32), n.as_str()))
    }

    /// Binary search `sorted` for `name`: `Ok(pos)` into `sorted` on a hit,
    /// `Err(pos)` the insertion point otherwise.
    fn search(&self, name: &str) -> std::result::Result<usize, usize> {
        self.sorted
            .binary_search_by(|&id| self.names[id as usize].as_str().cmp(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_insertion_order() {
        let mut t = DomainTable::new();
        assert_eq!(t.intern("zeta.example"), DomainId(0));
        assert_eq!(t.intern("alpha.example"), DomainId(1));
        assert_eq!(t.intern("mid.example"), DomainId(2));
        // Re-interning returns the original id.
        assert_eq!(t.intern("zeta.example"), DomainId(0));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lookup_round_trips_both_directions() {
        let t = DomainTable::from_names(["b.example", "a.example", "c.example"]);
        for (id, name) in t.iter() {
            assert_eq!(t.id(name), Some(id));
            assert_eq!(t.name(id), name);
        }
        assert_eq!(t.id("missing.example"), None);
        assert_eq!(t.name(DomainId(99)), "");
    }

    #[test]
    fn duplicates_collapse_and_stay_dense() {
        let t = DomainTable::from_names(["a", "b", "a", "c", "b"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.id("c"), Some(DomainId(2)));
    }

    #[test]
    fn table_is_order_sensitive_but_reproducible() {
        let t1 = DomainTable::from_names(["x", "y"]);
        let t2 = DomainTable::from_names(["x", "y"]);
        let t3 = DomainTable::from_names(["y", "x"]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }
}
