//! Typed identifiers for Internet entities.
//!
//! Every entity class in the substrate gets its own newtype over a small
//! integer. This prevents the classic simulator bug of indexing the AS table
//! with a router id, costs nothing at runtime, and gives each id a stable
//! display form that matches operational convention (`AS3356`, `r1234`, …).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw integer value of the id.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }

            /// The raw value as a usize, for indexing dense tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// An Autonomous System Number.
    ///
    /// In the substrate, ASNs are dense (0..n) so they double as indices
    /// into per-AS tables; the display form follows the `ASxxx` convention.
    Asn, u32, "AS"
);

id_newtype!(
    /// Dense index of a routed prefix in an Internet instance's prefix table.
    ///
    /// Prefixes in the substrate are /24s (the granularity the paper's
    /// Table 1 calls for); `PrefixId` is the compact handle, and
    /// [`crate::net::Ipv4Net`] the structural form.
    PrefixId, u32, "pfx"
);

id_newtype!(
    /// A router (one per AS point-of-presence in the substrate).
    RouterId, u32, "r"
);

id_newtype!(
    /// A colocation facility (à la PeeringDB `fac` records).
    FacilityId, u32, "fac"
);

id_newtype!(
    /// An Internet Exchange Point.
    IxpId, u32, "ixp"
);

id_newtype!(
    /// A popular service (content/web property) in the service catalogue.
    ServiceId, u32, "svc"
);

id_newtype!(
    /// A point of presence of a distributed platform (CDN front-end site,
    /// open-resolver site, …).
    PopId, u32, "pop"
);

id_newtype!(
    /// Dense index of an interned domain name in a [`crate::intern::DomainTable`].
    ///
    /// Scan campaigns sweep millions of probes per domain; carrying the
    /// owned `String` through every shard and merge multiplies the name by
    /// the shard count. Interning once up front turns every downstream key
    /// into four bytes, and the table resolves ids back to names only at
    /// the (rare) presentation edges.
    DomainId, u32, "dom"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_operational_prefixes() {
        assert_eq!(Asn(3356).to_string(), "AS3356");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(FacilityId(1).to_string(), "fac1");
        assert_eq!(IxpId(2).to_string(), "ixp2");
        assert_eq!(ServiceId(0).to_string(), "svc0");
        assert_eq!(PopId(9).to_string(), "pop9");
        assert_eq!(PrefixId(12).to_string(), "pfx12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(Asn(1));
        set.insert(Asn(2));
        set.insert(Asn(1));
        assert_eq!(set.len(), 2);
        assert!(Asn(1) < Asn(2));
    }

    #[test]
    fn index_round_trips() {
        let a = Asn::from(77u32);
        assert_eq!(a.index(), 77);
        assert_eq!(a.raw(), 77);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property; this test documents it. A RouterId can
        // never be accidentally used where an Asn is required.
        fn takes_asn(_: Asn) {}
        takes_asn(Asn(1));
        // takes_asn(RouterId(1)); // does not compile
    }
}
