//! Simulated time and diurnal activity.
//!
//! The paper cares about time at two scales: Table 1's *temporal precision*
//! column (hourly/daily/weekly component updates) and §3.1.3's diurnal
//! signal ("the IP ID values of most routers display diurnal patterns").
//! [`SimTime`] is seconds since the simulation epoch; [`DiurnalCurve`]
//! models the canonical day/night activity swing, phase-shifted per
//! longitude so that peaks follow the sun around the globe.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds since the simulation epoch (which is 00:00 UTC of day 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }
    /// A duration of `n` minutes.
    pub const fn mins(n: u64) -> Self {
        SimDuration(n * 60)
    }
    /// A duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3600)
    }
    /// A duration of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * 86_400)
    }
    /// The duration in (fractional) hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }
    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }
}

impl SimTime {
    /// The epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Time at `d` days, `h` hours, `m` minutes after the epoch.
    pub const fn at(d: u64, h: u64, m: u64) -> Self {
        SimTime(d * 86_400 + h * 3600 + m * 60)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// UTC hour-of-day in `[0, 24)`, fractional.
    pub fn utc_hour(self) -> f64 {
        (self.0 % 86_400) as f64 / 3600.0
    }

    /// Day number since epoch.
    pub const fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Local solar hour-of-day for a point with the given UTC offset
    /// in hours (see [`crate::geo::GeoPoint::solar_offset_hours`]).
    pub fn local_hour(self, offset_hours: f64) -> f64 {
        (self.utc_hour() + offset_hours).rem_euclid(24.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let rem = self.0 % 86_400;
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            d,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

/// A smooth diurnal activity curve.
///
/// Activity is modelled as
/// `base + amplitude * max(0, cos(2π (h - peak_hour)/24))^sharpness`,
/// a shape that matches measured eyeball-network curves: a broad evening
/// peak, a deep overnight trough, never negative, mean-normalizable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Floor activity level (overnight trough), >= 0.
    pub base: f64,
    /// Peak height above the floor.
    pub amplitude: f64,
    /// Local hour of the activity peak (typically ~20-21h for eyeballs).
    pub peak_hour: f64,
    /// Peak sharpness; 1.0 = plain cosine half-wave, larger = narrower peak.
    pub sharpness: f64,
}

impl Default for DiurnalCurve {
    fn default() -> Self {
        // Defaults match the shape of published eyeball traffic curves:
        // trough ≈ 25% of peak, peak at 20:30 local, moderately broad.
        DiurnalCurve {
            base: 0.25,
            amplitude: 0.75,
            peak_hour: 20.5,
            sharpness: 1.4,
        }
    }
}

impl DiurnalCurve {
    /// Activity multiplier at a given *local* hour-of-day.
    pub fn at_local_hour(&self, h: f64) -> f64 {
        let phase = (h - self.peak_hour) * std::f64::consts::TAU / 24.0;
        let c = phase.cos().max(0.0);
        self.base + self.amplitude * c.powf(self.sharpness)
    }

    /// Activity multiplier at simulated time `t` for a location with the
    /// given solar UTC offset.
    pub fn at(&self, t: SimTime, solar_offset_hours: f64) -> f64 {
        self.at_local_hour(t.local_hour(solar_offset_hours))
    }

    /// Mean of the curve over a full day (by 1-minute quadrature), used to
    /// normalize so that configured daily volumes are preserved.
    pub fn daily_mean(&self) -> f64 {
        let n = 1440;
        (0..n)
            .map(|i| self.at_local_hour(i as f64 * 24.0 / n as f64))
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_and_display() {
        let t = SimTime::at(1, 2, 30);
        assert_eq!(t.as_secs(), 86_400 + 2 * 3600 + 30 * 60);
        assert_eq!(t.to_string(), "d1+02:30:00");
        let t2 = t + SimDuration::hours(2);
        assert_eq!(t2.utc_hour(), 4.5);
        assert_eq!((t2 - t).as_secs(), 7200);
        assert_eq!(t2.day(), 1);
    }

    #[test]
    fn local_hour_wraps() {
        let t = SimTime::at(0, 23, 0);
        assert_eq!(t.local_hour(2.0), 1.0);
        assert_eq!(t.local_hour(-25.0), 22.0);
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let c = DiurnalCurve::default();
        let peak = c.at_local_hour(c.peak_hour);
        for h in 0..24 {
            assert!(c.at_local_hour(h as f64) <= peak + 1e-12);
        }
        assert!((peak - (c.base + c.amplitude)).abs() < 1e-12);
    }

    #[test]
    fn diurnal_trough_is_base() {
        let c = DiurnalCurve::default();
        // 12h opposite the peak the cosine is clamped to zero.
        let trough = c.at_local_hour((c.peak_hour + 12.0) % 24.0);
        assert!((trough - c.base).abs() < 1e-12);
        assert!(trough > 0.0, "activity never reaches zero");
    }

    #[test]
    fn diurnal_follows_the_sun() {
        let c = DiurnalCurve::default();
        // At the time it is peak hour in the east (+6h), the west (-6h)
        // should be far from peak.
        let t = SimTime::at(0, (c.peak_hour - 6.0) as u64, 30);
        let east = c.at(t, 6.0);
        let west = c.at(t, -6.0);
        assert!(east > west * 1.5, "east {east} west {west}");
    }

    #[test]
    fn daily_mean_between_base_and_peak() {
        let c = DiurnalCurve::default();
        let m = c.daily_mean();
        assert!(m > c.base && m < c.base + c.amplitude);
    }
}
