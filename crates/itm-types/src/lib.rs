//! # itm-types — core vocabulary for the Internet Traffic Map workspace
//!
//! This crate defines the small, dependency-light types shared by every other
//! crate in the workspace: identifiers for Internet entities (ASes, prefixes,
//! routers, facilities, services), IPv4 prefix arithmetic, geographic
//! coordinates and distance, simulated time with diurnal activity curves,
//! deterministic seed derivation, statistical helpers, and the workspace
//! error type.
//!
//! Everything here is plain data: no I/O, no global state, no threads.
//! Determinism is a workspace-wide invariant — all randomness flows from a
//! single master seed through [`rng::SeedDomain`], so two runs with the same
//! seed produce bit-identical Internets, measurements, and reports.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cells;
pub mod epoch;
pub mod error;
pub mod fault;
pub mod geo;
pub mod ids;
pub mod intern;
pub mod net;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod units;

pub use cells::{merge_sorted_runs, merge_sorted_runs_by, Cell, CellMap};
pub use epoch::{Campaign, DirtySet, EpochAction, EpochBounds, EpochPlan};
pub use error::{ItmError, Result};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultStats, ProbeFate};
pub use geo::{Country, GeoPoint};
pub use ids::{Asn, DomainId, FacilityId, IxpId, PopId, PrefixId, RouterId, ServiceId};
pub use intern::DomainTable;
pub use net::{Ipv4Addr, Ipv4Net};
pub use rng::SeedDomain;
pub use time::{DiurnalCurve, SimDuration, SimTime};
pub use units::Bps;
