//! Deterministic epoch plans: substrate churn between map rebuilds.
//!
//! The paper's goal is a *continuously updated* traffic map, so the
//! workspace needs a model of how the world changes between two builds.
//! An [`EpochPlan`] describes per-epoch churn rates (resolver adoption
//! re-draws, routing flaps, cloud-VM churn, diurnal phase drift, service
//! re-homing); [`EpochPlan::actions`] turns the plan into a *deterministic*
//! mutation sequence — a pure function of `(plan, seeds, epoch, bounds)`,
//! never of iteration order — mirroring the [`crate::fault`] regime, so an
//! epoch trajectory is byte-reproducible at any thread count.
//!
//! Each action also declares which measurement campaigns it invalidates;
//! [`DirtySet::from_actions`] unions those declarations and
//! closes them over the inter-campaign data-flow rules (cache/root feed
//! activity fusion, cloud probing feeds route assembly), so an incremental
//! rebuild that recomputes exactly the dirty campaigns is byte-identical
//! to a from-scratch build of the mutated substrate.

use crate::error::{ItmError, Result};
use crate::ids::ServiceId;
use crate::rng::SeedDomain;
use rand::Rng;
use std::collections::BTreeSet;

/// Hard ceiling on per-epoch discrete mutation counts; bounds action-list
/// size and keeps plan JSON typos (e.g. a pasted timestamp) from turning
/// into hour-long epochs.
pub const MAX_EPOCH_MUTATIONS: u32 = 100_000;

/// Per-epoch churn rates and counts.
///
/// Fractions are probabilities in `[0, 1]` applied independently per
/// entity; counts are discrete mutations per epoch. The all-zero plan
/// mutates nothing and performs zero draws, leaving every epoch's map
/// byte-identical to the previous one.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// Per-epoch probability that an eyeball/stub AS's prefixes re-draw
    /// their open-resolver adoption share.
    pub resolver_churn: f64,
    /// Peering links toggled (down↔up) per epoch.
    pub link_flaps: u32,
    /// Per-epoch probability that a cloud vantage AS toggles availability.
    pub vm_churn: f64,
    /// ECS DNS-redirection services whose nearest-PoP tables rotate per
    /// epoch (the operator "re-homes" cities onto different front-ends).
    pub rehome_services: u32,
    /// Hours the diurnal activity peak drifts per epoch (applied mod 24).
    pub diurnal_shift_hours: f64,
}

impl Default for EpochPlan {
    fn default() -> Self {
        EpochPlan::off()
    }
}

impl EpochPlan {
    /// The all-zero plan: no churn, zero draws, every epoch identical.
    pub fn off() -> EpochPlan {
        EpochPlan {
            resolver_churn: 0.0,
            link_flaps: 0,
            vm_churn: 0.0,
            rehome_services: 0,
            diurnal_shift_hours: 0.0,
        }
    }

    /// Light churn: a quiet day on the Internet. Leaves the DNS-cache and
    /// root-log campaigns clean so the incremental path can retain the
    /// expensive user-mapping grid for all but a couple of services.
    pub fn light() -> EpochPlan {
        EpochPlan {
            resolver_churn: 0.0,
            link_flaps: 4,
            vm_churn: 0.25,
            rehome_services: 2,
            diurnal_shift_hours: 0.0,
        }
    }

    /// Heavy churn: everything moves — resolver adoption, routing,
    /// vantage points, service placement, and the diurnal phase.
    pub fn heavy() -> EpochPlan {
        EpochPlan {
            resolver_churn: 0.2,
            link_flaps: 12,
            vm_churn: 0.5,
            rehome_services: 8,
            diurnal_shift_hours: 3.5,
        }
    }

    /// Look up a named profile (`off`, `light`, `heavy`).
    pub fn profile(name: &str) -> Option<EpochPlan> {
        match name {
            "off" => Some(EpochPlan::off()),
            "light" => Some(EpochPlan::light()),
            "heavy" => Some(EpochPlan::heavy()),
            _ => None,
        }
    }

    /// The diurnal shift quantized to integer millihours — the unit
    /// [`EpochAction::DiurnalShift`] actually carries. Shifts below half
    /// a millihour quantize to zero and are true no-ops.
    fn diurnal_millihours(&self) -> i32 {
        (self.diurnal_shift_hours * 1000.0).round() as i32
    }

    /// True when the plan can never mutate anything.
    pub fn is_off(&self) -> bool {
        self.resolver_churn <= 0.0
            && self.link_flaps == 0
            && self.vm_churn <= 0.0
            && self.rehome_services == 0
            && self.diurnal_millihours() == 0
    }

    /// Check every documented constraint, returning the first violation.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("resolver_churn", self.resolver_churn),
            ("vm_churn", self.vm_churn),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ItmError::config(
                    "epochs",
                    format!("rate {name} must be in [0, 1], got {v}"),
                ));
            }
        }
        for (name, v) in [
            ("link_flaps", self.link_flaps),
            ("rehome_services", self.rehome_services),
        ] {
            if v > MAX_EPOCH_MUTATIONS {
                return Err(ItmError::config(
                    "epochs",
                    format!("{name} must be <= {MAX_EPOCH_MUTATIONS}, got {v}"),
                ));
            }
        }
        let d = self.diurnal_shift_hours;
        if !d.is_finite() || !(-24.0..=24.0).contains(&d) {
            return Err(ItmError::config(
                "epochs",
                format!("diurnal_shift_hours must be in [-24, 24], got {d}"),
            ));
        }
        Ok(())
    }

    /// The deterministic mutation sequence for one epoch.
    ///
    /// A pure function of `(plan, seeds, epoch, bounds)`: each epoch draws
    /// from its own indexed stream under the `"epoch"` child domain, so
    /// epoch `k`'s actions are independent of whether epochs `0..k` were
    /// ever generated, and disjoint from every campaign's measurement
    /// streams. Actions carry entity *indices* into the eligibility lists
    /// described by [`EpochBounds`]; the applier resolves them against the
    /// substrate's deterministic eligibility ordering.
    pub fn actions(
        &self,
        seeds: &SeedDomain,
        epoch: u32,
        bounds: &EpochBounds,
    ) -> Vec<EpochAction> {
        let mut out = Vec::new();
        if self.is_off() {
            return out;
        }
        let domain = seeds.child("epoch");
        let mut rng = domain.rng_indexed("actions", epoch as u64);

        if self.resolver_churn > 0.0 {
            for site in 0..bounds.n_resolver_sites {
                if rng.gen_bool(self.resolver_churn) {
                    out.push(EpochAction::ResolverChurn { site });
                }
            }
        }
        if self.link_flaps > 0 {
            for link in distinct_indices(&mut rng, self.link_flaps, bounds.n_flappable_links) {
                out.push(EpochAction::LinkFlap { link });
            }
        }
        if self.vm_churn > 0.0 {
            for vm in 0..bounds.n_cloud_vms {
                if rng.gen_bool(self.vm_churn) {
                    out.push(EpochAction::VmChurn { vm });
                }
            }
        }
        if self.rehome_services > 0 {
            for service in distinct_indices(&mut rng, self.rehome_services, bounds.n_ecs_services) {
                let shift = rng.gen_range(1..=8u32);
                out.push(EpochAction::Rehome { service, shift });
            }
        }
        let millihours = self.diurnal_millihours();
        if millihours != 0 {
            out.push(EpochAction::DiurnalShift { millihours });
        }
        out
    }
}

/// Draw up to `want` distinct indices from `0..n`, in ascending order.
/// A deterministic partial Fisher–Yates over the index range.
fn distinct_indices<R: Rng>(rng: &mut R, want: u32, n: u32) -> Vec<u32> {
    let take = (want as usize).min(n as usize);
    let mut pool: Vec<u32> = (0..n).collect();
    for i in 0..take {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    let mut picked: Vec<u32> = pool[..take].to_vec();
    picked.sort_unstable();
    picked
}

/// Sizes of the per-action eligibility lists an [`EpochPlan`] draws over.
///
/// Computed from the substrate by the epoch driver; kept here (plain
/// counts, no substrate types) so action generation is testable in
/// isolation and the draw layout is independent of entity details.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochBounds {
    /// Eligible resolver-churn sites (eyeball/stub ASes, ascending ASN).
    pub n_resolver_sites: u32,
    /// Flappable links (peering links, topology link-table order).
    pub n_flappable_links: u32,
    /// Cloud vantage ASes (ascending ASN).
    pub n_cloud_vms: u32,
    /// Re-homeable services (ECS DNS-redirection, catalogue order).
    pub n_ecs_services: u32,
}

/// One substrate mutation, with entity indices into the eligibility
/// lists sized by [`EpochBounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpochAction {
    /// Prefixes of eligible AS `site` re-draw open-resolver adoption.
    ResolverChurn {
        /// Index into the resolver-site eligibility list.
        site: u32,
    },
    /// Peering link `link` toggles down↔up.
    LinkFlap {
        /// Index into the flappable-link eligibility list.
        link: u32,
    },
    /// Cloud vantage AS `vm` toggles available↔down.
    VmChurn {
        /// Index into the cloud-VM eligibility list.
        vm: u32,
    },
    /// Service `service` rotates its nearest-PoP table by `shift`.
    Rehome {
        /// Index into the re-homeable-service eligibility list.
        service: u32,
        /// Rotation applied to the per-city nearest-endpoint table.
        shift: u32,
    },
    /// The diurnal activity peak drifts by `millihours / 1000` hours.
    DiurnalShift {
        /// Signed drift in thousandths of an hour (kept integral so
        /// action sequences are `Eq`-comparable in tests).
        millihours: i32,
    },
}

impl EpochAction {
    /// The campaigns this single mutation invalidates (before closure).
    pub fn dirties(&self) -> &'static [Campaign] {
        match self {
            // Adoption shares steer cache hit rates and root-log volume,
            // but never the ECS answer path (the open resolver forwards
            // the client prefix regardless of who adopted it).
            EpochAction::ResolverChurn { .. } => &[Campaign::CacheProbe, Campaign::RootCrawl],
            // A flapped link changes the ground-truth view: anycast
            // catchments, collector visibility, and cloud traceroutes
            // all walk it.
            EpochAction::LinkFlap { .. } => {
                &[Campaign::Routes, Campaign::CloudProbe, Campaign::Anycast]
            }
            EpochAction::VmChurn { .. } => &[Campaign::CloudProbe],
            EpochAction::Rehome { .. } => &[Campaign::UserMapping],
            // The diurnal phase modulates cache hit probability; root-log
            // collection is volume-integrated and phase-free.
            EpochAction::DiurnalShift { .. } => &[Campaign::CacheProbe],
        }
    }
}

/// A measurement campaign (or derived product) the incremental rebuild
/// can retain or recompute independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Campaign {
    /// Open-resolver cache probing (§3.1.1).
    CacheProbe,
    /// Root-log crawl (§3.1.2).
    RootCrawl,
    /// The fused activity estimate (derived from cache + root).
    Activity,
    /// Address-space TLS scan.
    TlsScan,
    /// SNI-directed certificate scan.
    SniScan,
    /// ECS user→host mapping (§3.2) — the dominant build phase.
    UserMapping,
    /// Anycast catchment computation.
    Anycast,
    /// Cloud-vantage traceroute probing.
    CloudProbe,
    /// Public-collector view + route assembly.
    Routes,
}

impl Campaign {
    /// Stable lower-case name for reports and bench rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            Campaign::CacheProbe => "cache_probe",
            Campaign::RootCrawl => "root_crawl",
            Campaign::Activity => "activity",
            Campaign::TlsScan => "tls_scan",
            Campaign::SniScan => "sni_scan",
            Campaign::UserMapping => "user_mapping",
            Campaign::Anycast => "anycast",
            Campaign::CloudProbe => "cloud_probe",
            Campaign::Routes => "routes",
        }
    }
}

/// The set of campaigns (and, for user mapping, individual services) an
/// epoch's mutations invalidate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Campaigns that must be recomputed.
    pub campaigns: BTreeSet<Campaign>,
    /// Services whose user-mapping cells must be re-measured (indices
    /// resolved to [`ServiceId`]s by the driver). Meaningful only when
    /// [`Campaign::UserMapping`] is dirty.
    pub services: BTreeSet<ServiceId>,
}

impl DirtySet {
    /// An empty set: retain everything.
    pub fn clean() -> DirtySet {
        DirtySet::default()
    }

    /// Union the per-action invalidations of a mutation sequence, then
    /// close over the inter-campaign data flow. `resolve_service` maps a
    /// re-home action's eligibility index to its catalogue [`ServiceId`].
    pub fn from_actions(
        actions: &[EpochAction],
        mut resolve_service: impl FnMut(u32) -> ServiceId,
    ) -> DirtySet {
        let mut out = DirtySet::default();
        for a in actions {
            out.campaigns.extend(a.dirties().iter().copied());
            if let EpochAction::Rehome { service, .. } = a {
                out.services.insert(resolve_service(*service));
            }
        }
        out.normalize();
        out
    }

    /// Apply the closure rules the build pipeline's data flow imposes:
    /// activity fuses cache + root, route assembly consumes the cloud
    /// probe, cloud probing walks the flapped view, and the SNI scan
    /// resolves against the TLS scan's host table.
    pub fn normalize(&mut self) {
        let has = |s: &BTreeSet<Campaign>, c| s.contains(&c);
        if has(&self.campaigns, Campaign::CacheProbe) || has(&self.campaigns, Campaign::RootCrawl) {
            self.campaigns.insert(Campaign::Activity);
        }
        if has(&self.campaigns, Campaign::CloudProbe) {
            self.campaigns.insert(Campaign::Routes);
        }
        if has(&self.campaigns, Campaign::Routes) {
            self.campaigns.insert(Campaign::CloudProbe);
        }
        if has(&self.campaigns, Campaign::TlsScan) {
            self.campaigns.insert(Campaign::SniScan);
        }
    }

    /// Whether `c` must be recomputed this epoch.
    pub fn is_dirty(&self, c: Campaign) -> bool {
        self.campaigns.contains(&c)
    }

    /// True when nothing needs recomputation.
    pub fn is_clean(&self) -> bool {
        self.campaigns.is_empty()
    }

    /// Stable names of the dirty campaigns, for metrics rows.
    pub fn names(&self) -> Vec<&'static str> {
        self.campaigns.iter().map(Campaign::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> EpochBounds {
        EpochBounds {
            n_resolver_sites: 40,
            n_flappable_links: 60,
            n_cloud_vms: 10,
            n_ecs_services: 12,
        }
    }

    #[test]
    fn off_plan_generates_nothing() {
        let p = EpochPlan::off();
        assert!(p.is_off());
        assert!(p.actions(&SeedDomain::new(1), 0, &bounds()).is_empty());
    }

    #[test]
    fn profiles_validate_and_are_distinct() {
        for name in ["off", "light", "heavy"] {
            let p = EpochPlan::profile(name).expect("known profile");
            p.validate().expect("profile is valid");
        }
        assert!(EpochPlan::profile("medium").is_none());
        assert!(!EpochPlan::light().is_off());
        assert!(EpochPlan::heavy().link_flaps > EpochPlan::light().link_flaps);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = EpochPlan::heavy();
        p.resolver_churn = 1.5;
        assert!(p.validate().is_err());
        let mut p = EpochPlan::heavy();
        p.vm_churn = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = EpochPlan::heavy();
        p.link_flaps = MAX_EPOCH_MUTATIONS + 1;
        assert!(p.validate().is_err());
        let mut p = EpochPlan::heavy();
        p.diurnal_shift_hours = 25.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn actions_are_deterministic_per_epoch() {
        let p = EpochPlan::heavy();
        let d = SeedDomain::new(7);
        let a = p.actions(&d, 3, &bounds());
        let b = p.actions(&d, 3, &bounds());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Different epochs draw from different indexed streams.
        let c = p.actions(&d, 4, &bounds());
        assert_ne!(a, c);
    }

    #[test]
    fn action_indices_stay_in_bounds() {
        let p = EpochPlan::heavy();
        let b = bounds();
        for epoch in 0..20 {
            for a in p.actions(&SeedDomain::new(11), epoch, &b) {
                match a {
                    EpochAction::ResolverChurn { site } => assert!(site < b.n_resolver_sites),
                    EpochAction::LinkFlap { link } => assert!(link < b.n_flappable_links),
                    EpochAction::VmChurn { vm } => assert!(vm < b.n_cloud_vms),
                    EpochAction::Rehome { service, shift } => {
                        assert!(service < b.n_ecs_services);
                        assert!((1..=8).contains(&shift));
                    }
                    EpochAction::DiurnalShift { millihours } => assert_eq!(millihours, 3500),
                }
            }
        }
    }

    #[test]
    fn distinct_indices_are_distinct_sorted_and_clamped() {
        let mut rng = SeedDomain::new(5).rng("t");
        let v = distinct_indices(&mut rng, 10, 6);
        assert_eq!(v.len(), 6);
        for w in v.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(distinct_indices(&mut rng, 3, 0).is_empty());
    }

    #[test]
    fn dirty_closure_rules_hold() {
        let actions = [EpochAction::DiurnalShift { millihours: 500 }];
        let d = DirtySet::from_actions(&actions, ServiceId);
        assert!(d.is_dirty(Campaign::CacheProbe));
        assert!(d.is_dirty(Campaign::Activity), "cache feeds activity");
        assert!(!d.is_dirty(Campaign::UserMapping));

        let actions = [EpochAction::VmChurn { vm: 1 }];
        let d = DirtySet::from_actions(&actions, ServiceId);
        assert!(d.is_dirty(Campaign::Routes), "cloud links feed routes");

        let actions = [EpochAction::Rehome {
            service: 3,
            shift: 1,
        }];
        let d = DirtySet::from_actions(&actions, |i| ServiceId(i * 2));
        assert!(d.is_dirty(Campaign::UserMapping));
        assert_eq!(
            d.services.iter().copied().collect::<Vec<_>>(),
            [ServiceId(6)]
        );
        assert!(!d.is_dirty(Campaign::CacheProbe));
    }

    #[test]
    fn clean_set_is_clean() {
        let d = DirtySet::clean();
        assert!(d.is_clean());
        assert!(d.names().is_empty());
        let d = DirtySet::from_actions(&[], ServiceId);
        assert!(d.is_clean());
    }
}
