//! Geography: coordinates, great-circle distance, countries, and cities.
//!
//! The paper's map components are geographic — Figure 1b shades countries by
//! user coverage and dots server locations; §3.2 asks for city/facility
//! granularity server locations; §2.1/§3.2.3 measure anycast optimality in
//! kilometres. This module provides just enough geography to support those
//! analyses: WGS84-ish points, haversine distance, an ISO-like country
//! registry with longitude bands (which drive the diurnal clock), and a
//! deterministic world-city generator used by the topology builder.

use crate::rng::SeedDomain;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Construct a point, clamping latitude and wrapping longitude into range.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon == -180.0 {
            lon = 180.0;
        }
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Local solar offset from UTC in hours, derived purely from longitude.
    ///
    /// The substrate does not model political time zones; solar time is the
    /// right notion for diurnal traffic anyway (peaks follow the sun).
    pub fn solar_offset_hours(self) -> f64 {
        self.lon / 15.0
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.lat, self.lon)
    }
}

/// A country in the synthetic world.
///
/// Countries partition user populations for Figure 1b-style rollups and give
/// Fig. 2 its "French ISPs" case-study structure. The registry is synthetic
/// but carries realistic skew: a few giant countries, a long tail of small
/// ones, spread across longitude bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Country(pub u16);

impl Country {
    /// Display code, e.g. `C07`.
    pub fn code(self) -> String {
        format!("C{:02}", self.0)
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Static description of one country in the world model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryInfo {
    /// The country id.
    pub country: Country,
    /// Centroid used to place cities.
    pub centroid: GeoPoint,
    /// Rough geographic radius (km) within which its cities scatter.
    pub radius_km: f64,
    /// Relative population weight (sums to ~1 across the world).
    pub population_weight: f64,
    /// Fraction of users whose ISPs adopt the open resolver
    /// (Google-Public-DNS analogue). Varies by country, per §3.1.3's
    /// observation that "Google Public DNS adoption … varies by country".
    pub open_resolver_adoption: f64,
}

/// The synthetic world: a deterministic set of countries and cities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// All countries, indexed by `Country.0`.
    pub countries: Vec<CountryInfo>,
    /// All cities.
    pub cities: Vec<City>,
}

/// A city: the geographic anchor for routers, facilities, and user prefixes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// Dense city index.
    pub id: u32,
    /// Location.
    pub location: GeoPoint,
    /// Owning country.
    pub country: Country,
    /// Relative size weight within its country.
    pub size_weight: f64,
}

/// Configuration for [`World::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of countries to generate (>= 1).
    pub n_countries: usize,
    /// Number of cities to scatter across countries (>= n_countries).
    pub n_cities: usize,
    /// Zipf-ish skew of country population weights (1.0 ≈ realistic).
    pub population_skew: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_countries: 24,
            n_cities: 180,
            population_skew: 1.0,
        }
    }
}

impl World {
    /// Deterministically generate a world from a seed domain.
    ///
    /// Countries get centroids spread around the populated latitudes,
    /// population weights follow a Zipf law with exponent
    /// `population_skew`, and cities scatter around their country centroid
    /// with intra-country size weights that are themselves Zipf (a primate
    /// city plus a tail, as in real national city-size distributions).
    pub fn generate(cfg: &WorldConfig, seeds: &SeedDomain) -> World {
        assert!(cfg.n_countries >= 1, "need at least one country");
        assert!(
            cfg.n_cities >= cfg.n_countries,
            "need at least one city per country"
        );
        let mut rng = seeds.rng("world");

        // Country centroids: spread longitudes uniformly, latitudes in the
        // inhabited band, with jitter so runs differ across seeds.
        let mut countries = Vec::with_capacity(cfg.n_countries);
        let mut weight_sum = 0.0;
        for i in 0..cfg.n_countries {
            let lon = -180.0 + 360.0 * (i as f64 + rng.gen::<f64>() * 0.8) / cfg.n_countries as f64;
            let lat = rng.gen_range(-40.0..60.0);
            let weight = 1.0 / ((i + 1) as f64).powf(cfg.population_skew);
            weight_sum += weight;
            countries.push(CountryInfo {
                country: Country(i as u16),
                centroid: GeoPoint::new(lat, lon),
                radius_km: rng.gen_range(200.0..1200.0),
                population_weight: weight,
                open_resolver_adoption: rng.gen_range(0.10..0.65),
            });
        }
        for c in &mut countries {
            c.population_weight /= weight_sum;
        }

        // Cities: every country gets at least one; the rest are assigned
        // proportionally to population weight.
        let mut cities = Vec::with_capacity(cfg.n_cities);
        let mut assignments: Vec<usize> = (0..cfg.n_countries).collect();
        while assignments.len() < cfg.n_cities {
            let r: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = cfg.n_countries - 1;
            for c in &countries {
                acc += c.population_weight;
                if r < acc {
                    chosen = c.country.0 as usize;
                    break;
                }
            }
            assignments.push(chosen);
        }
        let mut per_country_rank = vec![0usize; cfg.n_countries];
        for (id, &ci) in assignments.iter().enumerate() {
            let c = &countries[ci];
            let rank = per_country_rank[ci];
            per_country_rank[ci] += 1;
            // Scatter around the centroid; convert km offsets to degrees.
            let dist = c.radius_km * rng.gen::<f64>().sqrt();
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let dlat = dist * theta.sin() / 111.0;
            let coslat = c.centroid.lat.to_radians().cos().max(0.2);
            let dlon = dist * theta.cos() / (111.0 * coslat);
            cities.push(City {
                id: id as u32,
                location: GeoPoint::new(c.centroid.lat + dlat, c.centroid.lon + dlon),
                country: c.country,
                size_weight: 1.0 / (rank as f64 + 1.0),
            });
        }

        World { countries, cities }
    }

    /// Look up a country's static info.
    pub fn country(&self, c: Country) -> &CountryInfo {
        &self.countries[c.0 as usize]
    }

    /// Cities belonging to a country, in id order.
    pub fn cities_of(&self, c: Country) -> impl Iterator<Item = &City> {
        self.cities.iter().filter(move |city| city.country == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        // London <-> New York is ~5570 km.
        let london = GeoPoint::new(51.5074, -0.1278);
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let d = london.distance_km(nyc);
        assert!((d - 5570.0).abs() < 30.0, "got {d}");
        // Antipodal points are half the circumference.
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((a.distance_km(b) - half).abs() < 1.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let p = GeoPoint::new(35.0, 139.0);
        let q = GeoPoint::new(-33.9, 151.2);
        assert!((p.distance_km(q) - q.distance_km(p)).abs() < 1e-9);
        assert_eq!(p.distance_km(p), 0.0);
    }

    #[test]
    fn new_clamps_and_wraps() {
        let p = GeoPoint::new(99.0, 190.0);
        assert_eq!(p.lat, 90.0);
        assert!((p.lon - -170.0).abs() < 1e-9);
        let q = GeoPoint::new(0.0, -180.0);
        assert_eq!(q.lon, 180.0);
    }

    #[test]
    fn solar_offset_tracks_longitude() {
        assert_eq!(GeoPoint::new(0.0, 0.0).solar_offset_hours(), 0.0);
        assert_eq!(GeoPoint::new(0.0, 90.0).solar_offset_hours(), 6.0);
        assert_eq!(GeoPoint::new(0.0, -75.0).solar_offset_hours(), -5.0);
    }

    #[test]
    fn world_generation_is_deterministic() {
        let cfg = WorldConfig::default();
        let w1 = World::generate(&cfg, &SeedDomain::new(7));
        let w2 = World::generate(&cfg, &SeedDomain::new(7));
        assert_eq!(w1.cities.len(), w2.cities.len());
        for (a, b) in w1.cities.iter().zip(&w2.cities) {
            assert_eq!(a.location.lat, b.location.lat);
            assert_eq!(a.country, b.country);
        }
        let w3 = World::generate(&cfg, &SeedDomain::new(8));
        let same = w1
            .cities
            .iter()
            .zip(&w3.cities)
            .all(|(a, b)| a.location.lat == b.location.lat);
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn world_population_weights_normalized_and_skewed() {
        let w = World::generate(&WorldConfig::default(), &SeedDomain::new(1));
        let sum: f64 = w.countries.iter().map(|c| c.population_weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Zipf: first country strictly dominates the last.
        assert!(
            w.countries.first().unwrap().population_weight
                > 3.0 * w.countries.last().unwrap().population_weight
        );
    }

    #[test]
    fn every_country_has_a_city() {
        let w = World::generate(&WorldConfig::default(), &SeedDomain::new(3));
        for c in &w.countries {
            assert!(
                w.cities_of(c.country).next().is_some(),
                "{} has no city",
                c.country
            );
        }
    }

    #[test]
    fn cities_stay_reasonably_near_their_centroid() {
        let w = World::generate(&WorldConfig::default(), &SeedDomain::new(5));
        for city in &w.cities {
            let c = w.country(city.country);
            // Allow slack for the km→degree conversion distortion at
            // extreme latitudes; cities must still be country-scale close.
            assert!(
                city.location.distance_km(c.centroid) < c.radius_km * 3.0 + 50.0,
                "city {} too far from centroid of {}",
                city.id,
                city.country
            );
        }
    }
}
