//! Statistical helpers used across the evaluation harness.
//!
//! The paper's headline methodological point is the difference between
//! *unweighted* and *traffic-weighted* CDFs (§1, §2.1); [`Ecdf`] supports
//! both. Figure 2 needs least-squares fits and rank correlations
//! ([`linear_fit`], [`spearman`], [`kendall_tau`]); coverage scoring uses
//! [`gini`] to report skew.

use serde::{Deserialize, Serialize};

/// An empirical CDF over weighted samples.
///
/// Construct with [`Ecdf::unweighted`] (every sample weight 1 — the practice
/// the paper wants "banished to the dustbins of SIGCOMM history") or
/// [`Ecdf::weighted`] (the traffic-map way).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    /// (value, cumulative fraction) points, sorted by value, cumulative
    /// fraction reaching 1.0 at the last point.
    points: Vec<(f64, f64)>,
}

impl Ecdf {
    /// Build an ECDF giving every sample equal weight.
    pub fn unweighted(values: impl IntoIterator<Item = f64>) -> Ecdf {
        Self::weighted(values.into_iter().map(|v| (v, 1.0)))
    }

    /// Build an ECDF over `(value, weight)` samples. Non-positive and
    /// non-finite weights are dropped.
    pub fn weighted(samples: impl IntoIterator<Item = (f64, f64)>) -> Ecdf {
        let mut s: Vec<(f64, f64)> = samples
            .into_iter()
            .filter(|(v, w)| v.is_finite() && w.is_finite() && *w > 0.0)
            .collect();
        s.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = s.iter().map(|(_, w)| w).sum();
        let mut points = Vec::with_capacity(s.len());
        let mut acc = 0.0;
        for (v, w) in s {
            acc += w;
            // Merge duplicate values so the CDF is a function.
            match points.last_mut() {
                Some((lv, lf)) if *lv == v => *lf = acc / total,
                _ => points.push((v, acc / total)),
            }
        }
        Ecdf { points }
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self.points.binary_search_by(|(v, _)| v.total_cmp(&x)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The `q`-quantile (`q` in \[0, 1\]); `None` on an empty ECDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = self
            .points
            .iter()
            .position(|&(_, f)| f >= q - 1e-12)
            .unwrap_or(self.points.len() - 1);
        Some(self.points[idx].0)
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The underlying (value, cumulative-fraction) points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Ordinary least-squares fit `y = slope * x + intercept`.
///
/// Returns `(slope, intercept, r2)`, or `None` with fewer than two distinct
/// x values.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    // itm-lint: allow(F001): exact zero-guard before division, not a tolerance check
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // itm-lint: allow(F001): exact zero-guard before division, not a tolerance check
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some((slope, intercept, r2))
}

/// Pearson product-moment correlation, `None` if either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    // itm-lint: allow(F001): exact zero-guard before division, not a tolerance check
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Average ranks, assigning tied values the mean of their rank range.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut r = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            r[idx[k]] = mean_rank;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation (Pearson over average ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    pearson(&ranks(xs), &ranks(ys))
}

/// Kendall's tau-a rank correlation (concordant minus discordant pairs,
/// over all pairs; ties count as neither).
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mut conc = 0i64;
    let mut disc = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let s = dx * dy;
            if s > 0.0 {
                conc += 1;
            } else if s < 0.0 {
                disc += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((conc - disc) as f64 / pairs)
}

/// Gini coefficient of a set of non-negative values (0 = perfectly equal,
/// → 1 = maximally concentrated). Used to report traffic-share skew.
pub fn gini(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().cloned().filter(|x| *x >= 0.0).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len() as f64;
    let sum: f64 = v.iter().sum();
    // itm-lint: allow(F001): exact zero-guard before division, not a tolerance check
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Smallest number of top items (by value, descending) whose sum reaches
/// `fraction` of the total. The paper's consolidation claims are of this
/// form ("a handful of providers carry 90% of traffic").
pub fn top_k_for_share(values: &[f64], fraction: f64) -> usize {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut acc = 0.0;
    for (i, x) in v.iter().enumerate() {
        acc += x;
        if acc >= fraction * total {
            return i + 1;
        }
    }
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_unweighted_basics() {
        let e = Ecdf::unweighted([3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.fraction_at(0.5), 0.0);
        assert_eq!(e.fraction_at(1.0), 0.25);
        assert_eq!(e.fraction_at(2.0), 0.75);
        assert_eq!(e.fraction_at(10.0), 1.0);
        assert_eq!(e.median(), Some(2.0));
    }

    #[test]
    fn ecdf_weighting_changes_the_story() {
        // The paper's core point: 3 paths of length 4 and 1 path of
        // length 1, but the short path carries 97% of traffic.
        let lengths_weights = [(4.0, 1.0), (4.0, 1.0), (4.0, 1.0), (1.0, 97.0)];
        let unweighted = Ecdf::unweighted(lengths_weights.iter().map(|(v, _)| *v));
        let weighted = Ecdf::weighted(lengths_weights);
        assert_eq!(unweighted.fraction_at(1.0), 0.25);
        assert_eq!(weighted.fraction_at(1.0), 0.97);
    }

    #[test]
    fn ecdf_handles_empty_and_bad_weights() {
        let e = Ecdf::weighted([(1.0, 0.0), (2.0, -1.0), (f64::NAN, 1.0)]);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.fraction_at(5.0), 0.0);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::unweighted((1..=100).map(|i| i as f64));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        assert_eq!(e.quantile(0.9), Some(90.0));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let (m, b, r2) = linear_fit(&xs, &ys).unwrap();
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b - 7.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn correlations_on_monotone_data() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 8.0, 16.0, 32.0]; // monotone but nonlinear
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let p = pearson(&xs, &ys).unwrap();
        assert!(p > 0.8 && p < 1.0);
        let rev: Vec<f64> = ys.iter().rev().cloned().collect();
        assert!((spearman(&xs, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlations_handle_degenerate_input() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[], &[]).is_none());
        assert!(kendall_tau(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "{concentrated}");
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn top_k_share() {
        let v = [50.0, 30.0, 10.0, 5.0, 5.0];
        assert_eq!(top_k_for_share(&v, 0.5), 1);
        assert_eq!(top_k_for_share(&v, 0.8), 2);
        assert_eq!(top_k_for_share(&v, 0.9), 3);
        assert_eq!(top_k_for_share(&v, 1.0), 5);
        assert_eq!(top_k_for_share(&[], 0.5), 0);
    }
}
