//! The map snapshot wire format: sectioned, checksummed, mmap-friendly.
//!
//! A snapshot is the serving-layer artifact of the paper's end goal — "a
//! continuously updated map of the Internet" that others can *query*, not
//! a one-shot batch output. The format is a single binary file laid out so
//! a reader can answer point/reverse/route lookups with offset arithmetic
//! and binary search directly over the file bytes, without deserializing
//! anything into owned structures:
//!
//! * every integer is **little-endian** and fixed-width;
//! * every section starts on an **8-byte boundary** (zero-padded), so the
//!   file can be memory-mapped and each section viewed as a typed column;
//! * columns are **sorted** (cells by `(service, prefix)`, front-ends by
//!   address, adjacency by neighbor ASN), so lookups are binary searches;
//! * a **whole-file checksum** (FNV-1a 64 with the checksum field zeroed)
//!   makes any single corrupted byte a hard open-time error.
//!
//! Layout (see DESIGN.md §14 for the full specification):
//!
//! ```text
//! offset  0  magic    [u8; 8]  = "ITMSNAP\0"
//! offset  8  version  u32      = 1
//! offset 12  n_sections u32
//! offset 16  checksum u64      (FNV-1a 64 over the file, bytes 16..24 zeroed)
//! offset 24  file_len u64
//! offset 32  directory: n_sections × 32-byte entries
//!            { id u32, reserved u32 = 0, offset u64, len u64, count u64 }
//! then       section payloads, each 8-byte aligned, zero-padded between
//! ```
//!
//! `len` is the payload byte length *excluding* padding; `count` is the
//! element count (`len / elem_size` for fixed-width columns). Versioning
//! rule: any layout or semantic change bumps [`VERSION`]; readers reject
//! files whose version they do not understand, never guess.
//!
//! This module owns only the *encoding*: constants, the writer that
//! assembles header + directory + payloads, the directory parser, and the
//! checksum. What goes *into* the sections is the snapshot writer's
//! business (`itm-core`); how they are queried is the reader's
//! (`itm-serve`). Keeping the encoding here lets the serving crate depend
//! on nothing but `itm-types`.

use std::fmt;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"ITMSNAP\0";

/// Current snapshot schema version. Bump on any layout or semantic change.
pub const VERSION: u32 = 1;

/// Byte size of one directory entry.
pub const DIR_ENTRY_SIZE: usize = 32;

/// Byte size of the fixed header preceding the directory.
pub const HEADER_SIZE: usize = 32;

/// Section ids. Ids are stable across versions; new sections take new ids.
pub mod section {
    /// `u64 × 7`: seed, n_ases, n_prefixes, n_services, n_cells,
    /// n_route_entries, n_fronts.
    pub const META: u32 = 1;
    /// `u32[n_services + 1]`: byte offsets into [`DOM_BYTES`] delimiting
    /// each service's domain name (entry `s` to `s + 1`).
    pub const DOM_OFF: u32 = 2;
    /// UTF-8 concatenation of all domain names, in service-id order.
    pub const DOM_BYTES: u32 = 3;
    /// `u32[n_services]`: permutation of service ids ordering domains
    /// lexicographically (the binary-search index for name lookup).
    pub const DOM_SORTED: u32 = 4;
    /// `u32[n_prefixes]`: base address of each /24, in prefix-id order.
    pub const PFX_BASE: u32 = 5;
    /// `u32[n_prefixes]`: owner ASN of each prefix, in prefix-id order.
    pub const PFX_OWNER: u32 = 6;
    /// `u32[n_prefixes]`: permutation of prefix ids ordering bases
    /// ascending (the binary-search index for net → id lookup).
    pub const PFX_SORTED: u32 = 7;
    /// `u64[n_services + 1]`: cell-index offsets delimiting each
    /// service's run in the cell columns (entry `s` to `s + 1`).
    pub const CELL_SVC_OFF: u32 = 8;
    /// `u32[n_cells]`: the prefix id of each mapping cell, grouped by
    /// service (via [`CELL_SVC_OFF`]) and ascending within a service.
    pub const CELL_PREFIX: u32 = 9;
    /// `u32[n_cells]`: the serving front-end address of each cell.
    pub const CELL_ADDR: u32 = 10;
    /// `u8[n_cells]`: the per-cell technique claim bitmap (see
    /// [`claim`]), aligned with the cell columns.
    pub const CELL_BITS: u32 = 11;
    /// `u32[n_cells]`: permutation of global cell indices ordered by
    /// `(serving address, cell index)` — the reverse-lookup index.
    pub const CELL_REV: u32 = 12;
    /// `u32[n_fronts]`: every distinct serving address the map knows
    /// (mapping cells ∪ SNI/ECS footprints), strictly ascending.
    pub const FRONT_ADDR: u32 = 13;
    /// `u32[n_fronts]`: host ASN per front address; `u32::MAX` when the
    /// address resolves to no routed prefix.
    pub const FRONT_OWNER: u32 = 14;
    /// `u64[n_ases + 1]`: adjacency offsets delimiting each AS's run in
    /// the route columns (entry `a` to `a + 1`).
    pub const ROUTE_OFF: u32 = 15;
    /// `u32[n_route_entries]`: neighbor ASN per directed adjacency entry,
    /// ascending within each AS's run.
    pub const ROUTE_NBR: u32 = 16;
    /// `u8[n_route_entries]`: relationship code per adjacency entry (see
    /// [`rel`]), aligned with [`ROUTE_NBR`].
    pub const ROUTE_KIND: u32 = 17;
}

/// Number of `u64` fields in the [`section::META`] payload.
pub const META_FIELDS: usize = 7;

/// On-disk relationship codes for route adjacency entries.
///
/// These encode `NeighborKind` without making the format depend on the
/// topology crate; the writer maps the enum to codes, readers map back.
pub mod rel {
    /// The neighbor is our customer (it pays us).
    pub const CUSTOMER: u8 = 0;
    /// The neighbor is our provider (we pay it).
    pub const PROVIDER: u8 = 1;
    /// Settlement-free peer.
    pub const PEER: u8 = 2;

    /// Human-readable name of a relationship code.
    pub fn name(code: u8) -> Option<&'static str> {
        match code {
            CUSTOMER => Some("customer"),
            PROVIDER => Some("provider"),
            PEER => Some("peer"),
            _ => None,
        }
    }
}

/// On-disk per-cell claim bits: which techniques back a mapping cell.
///
/// These duplicate `itm_core::audit::bits` *by value* — they are the wire
/// format, frozen under [`VERSION`], while the audit constants are free to
/// evolve with the audit. A round-trip test pins the two in sync.
pub mod claim {
    /// Cache probing found users in the cell's prefix.
    pub const CACHE_PROBE: u8 = 1 << 0;
    /// The root crawl saw queries from the cell's AS.
    pub const ROOT_CRAWL: u8 = 1 << 1;
    /// The ECS campaign measured the cell directly.
    pub const ECS: u8 = 1 << 2;
    /// A catchment assigns the cell's AS to a serving site.
    pub const ANYCAST: u8 = 1 << 3;
    /// An SNI-confirmed front-end exists for the cell's service.
    pub const TLS_NEAREST: u8 = 1 << 4;
    /// The catalogue prior always speaks.
    pub const CATALOG_PRIOR: u8 = 1 << 5;

    /// Technique names for the bits set in `bits`, in bit order.
    pub fn names(bits: u8) -> Vec<&'static str> {
        const TABLE: [(u8, &str); 6] = [
            (CACHE_PROBE, "cache_probe"),
            (ROOT_CRAWL, "root_crawl"),
            (ECS, "ecs"),
            (ANYCAST, "anycast"),
            (TLS_NEAREST, "tls_nearest"),
            (CATALOG_PRIOR, "catalog_prior"),
        ];
        TABLE
            .iter()
            .filter(|(b, _)| bits & b != 0)
            .map(|&(_, n)| n)
            .collect()
    }
}

/// Whole-file checksum: FNV-1a 64 over `bytes` with the checksum field
/// (bytes 16..24) treated as zero, so the stored value can live inside
/// the region it covers.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, b) in bytes.iter().enumerate() {
        let v = if (16..24).contains(&i) { 0 } else { *b };
        h ^= v as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One parsed directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (see [`section`]).
    pub id: u32,
    /// Byte offset of the payload from the start of the file.
    pub offset: u64,
    /// Payload byte length, excluding alignment padding.
    pub len: u64,
    /// Element count (`len / elem_size` for fixed-width columns).
    pub count: u64,
}

/// Errors from parsing or validating a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The file is shorter than the fixed header.
    TooShort {
        /// Actual byte length.
        len: usize,
    },
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// The schema version is not one this reader understands.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The header's `file_len` disagrees with the actual byte count.
    LengthMismatch {
        /// Length recorded in the header.
        header: u64,
        /// Actual byte length.
        actual: usize,
    },
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed over the file bytes.
        computed: u64,
    },
    /// A directory entry is malformed (out of bounds, misaligned,
    /// duplicated, or its length is inconsistent with its count).
    BadSection {
        /// The offending section id.
        id: u32,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A required section is absent from the directory.
    MissingSection {
        /// The absent section id.
        id: u32,
    },
    /// Section contents failed semantic validation (non-monotone offset
    /// array, invalid UTF-8 in the domain table, …).
    Malformed {
        /// What failed to validate.
        what: &'static str,
    },
    /// An I/O error while reading the snapshot file (carried as text so
    /// this type stays plain data).
    Io {
        /// The rendered I/O error.
        detail: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::TooShort { len } => {
                write!(f, "snapshot too short: {len} bytes < {HEADER_SIZE} header")
            }
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (reader speaks {VERSION})"
                )
            }
            SnapError::LengthMismatch { header, actual } => {
                write!(
                    f,
                    "snapshot length mismatch: header says {header}, file is {actual}"
                )
            }
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x} \
                 (file corrupted or truncated)"
            ),
            SnapError::BadSection { id, reason } => {
                write!(f, "snapshot section {id} is malformed: {reason}")
            }
            SnapError::MissingSection { id } => {
                write!(f, "snapshot is missing required section {id}")
            }
            SnapError::Malformed { what } => write!(f, "snapshot failed validation: {what}"),
            SnapError::Io { detail } => write!(f, "snapshot I/O error: {detail}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Read a little-endian `u32` at `off`, if in bounds.
#[inline]
pub fn read_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let s = bytes.get(off..off.checked_add(4)?)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Read a little-endian `u64` at `off`, if in bounds.
#[inline]
pub fn read_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let s = bytes.get(off..off.checked_add(8)?)?;
    Some(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

/// Assembles a snapshot: collect typed sections, then [`SnapWriter::finish`]
/// lays out header + directory + 8-byte-aligned payloads and stamps the
/// checksum. Writing sections in a fixed order makes the output a pure
/// function of the section contents — byte-identical across runs, thread
/// counts, and machines.
#[derive(Debug, Default)]
pub struct SnapWriter {
    sections: Vec<(u32, u64, Vec<u8>)>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a raw byte section (`count` = byte length).
    pub fn section_u8(&mut self, id: u32, data: &[u8]) {
        self.sections.push((id, data.len() as u64, data.to_vec()));
    }

    /// Add a `u32` column section (`count` = element count).
    pub fn section_u32(&mut self, id: u32, data: &[u32]) {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push((id, data.len() as u64, bytes));
    }

    /// Add a `u64` column section (`count` = element count).
    pub fn section_u64(&mut self, id: u32, data: &[u64]) {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push((id, data.len() as u64, bytes));
    }

    /// Lay out the file and stamp `file_len` and the checksum.
    pub fn finish(self) -> Vec<u8> {
        let n = self.sections.len();
        let dir_end = HEADER_SIZE + n * DIR_ENTRY_SIZE;
        // Payload offsets, 8-byte aligned.
        let mut offsets = Vec::with_capacity(n);
        let mut cursor = (dir_end + 7) & !7;
        for (_, _, bytes) in &self.sections {
            offsets.push(cursor);
            cursor = (cursor + bytes.len() + 7) & !7;
        }
        let file_len = cursor;

        let mut out = vec![0u8; file_len];
        out[..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&(n as u32).to_le_bytes());
        // bytes 16..24 (checksum) stay zero until the end.
        out[24..32].copy_from_slice(&(file_len as u64).to_le_bytes());
        for (k, (id, count, bytes)) in self.sections.iter().enumerate() {
            let e = HEADER_SIZE + k * DIR_ENTRY_SIZE;
            out[e..e + 4].copy_from_slice(&id.to_le_bytes());
            // e+4..e+8: reserved, zero.
            out[e + 8..e + 16].copy_from_slice(&(offsets[k] as u64).to_le_bytes());
            out[e + 16..e + 24].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
            out[e + 24..e + 32].copy_from_slice(&count.to_le_bytes());
            out[offsets[k]..offsets[k] + bytes.len()].copy_from_slice(bytes);
        }
        let sum = checksum(&out);
        out[16..24].copy_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Parse and validate the header and directory of a snapshot.
///
/// Checks, in order: length, magic, version, `file_len`, checksum, then
/// each directory entry (in bounds, 8-byte aligned, no duplicate ids).
/// A checksum mismatch is a hard error — a corrupted snapshot must never
/// answer queries.
pub fn parse_dir(bytes: &[u8]) -> Result<Vec<SectionEntry>, SnapError> {
    if bytes.len() < HEADER_SIZE {
        return Err(SnapError::TooShort { len: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = read_u32(bytes, 8).unwrap_or(0);
    if version != VERSION {
        return Err(SnapError::BadVersion { found: version });
    }
    let file_len = read_u64(bytes, 24).unwrap_or(0);
    if file_len != bytes.len() as u64 {
        return Err(SnapError::LengthMismatch {
            header: file_len,
            actual: bytes.len(),
        });
    }
    let stored = read_u64(bytes, 16).unwrap_or(0);
    let computed = checksum(bytes);
    if stored != computed {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    let n = read_u32(bytes, 12).unwrap_or(0) as usize;
    let dir_end = HEADER_SIZE.saturating_add(n.saturating_mul(DIR_ENTRY_SIZE));
    if dir_end > bytes.len() {
        return Err(SnapError::Malformed {
            what: "directory extends past end of file",
        });
    }
    let mut entries = Vec::with_capacity(n);
    let mut seen: Vec<u32> = Vec::with_capacity(n);
    for k in 0..n {
        let e = HEADER_SIZE + k * DIR_ENTRY_SIZE;
        let id = read_u32(bytes, e).unwrap_or(0);
        let offset = read_u64(bytes, e + 8).unwrap_or(0);
        let len = read_u64(bytes, e + 16).unwrap_or(0);
        let count = read_u64(bytes, e + 24).unwrap_or(0);
        if seen.contains(&id) {
            return Err(SnapError::BadSection {
                id,
                reason: "duplicate section id",
            });
        }
        seen.push(id);
        if !offset.is_multiple_of(8) {
            return Err(SnapError::BadSection {
                id,
                reason: "payload offset not 8-byte aligned",
            });
        }
        let end = offset.saturating_add(len);
        if offset < dir_end as u64 || end > bytes.len() as u64 {
            return Err(SnapError::BadSection {
                id,
                reason: "payload out of bounds",
            });
        }
        entries.push(SectionEntry {
            id,
            offset,
            len,
            count,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.section_u64(section::META, &[7, 1, 2, 3, 4, 5, 6]);
        w.section_u32(section::PFX_BASE, &[10, 20, 30]);
        w.section_u8(section::CELL_BITS, &[1, 2, 3, 4, 5]);
        w.finish()
    }

    #[test]
    fn round_trip_header_and_directory() {
        let bytes = tiny();
        assert_eq!(bytes.len() % 8, 0);
        let dir = parse_dir(&bytes).unwrap();
        assert_eq!(dir.len(), 3);
        assert_eq!(dir[0].id, section::META);
        assert_eq!(dir[0].count, META_FIELDS as u64);
        assert_eq!(dir[0].len, (META_FIELDS * 8) as u64);
        assert_eq!(dir[1].count, 3);
        assert_eq!(dir[2].count, 5);
        // Payloads decode back.
        assert_eq!(read_u64(&bytes, dir[0].offset as usize), Some(7));
        assert_eq!(read_u32(&bytes, dir[1].offset as usize + 4), Some(20));
        assert_eq!(bytes[dir[2].offset as usize + 4], 5);
        // Every payload is 8-byte aligned.
        for e in &dir {
            assert_eq!(e.offset % 8, 0);
        }
    }

    #[test]
    fn writer_is_deterministic() {
        assert_eq!(tiny(), tiny());
    }

    #[test]
    fn any_single_byte_corruption_is_rejected() {
        let good = tiny();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            assert!(
                parse_dir(&bad).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let good = tiny();
        for cut in [0, 8, HEADER_SIZE - 1, HEADER_SIZE, good.len() - 1] {
            assert!(parse_dir(&good[..cut]).is_err(), "truncation to {cut}");
        }
    }

    #[test]
    fn foreign_version_is_rejected_even_with_valid_checksum() {
        let mut bytes = tiny();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let sum = checksum(&bytes);
        bytes[16..24].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(parse_dir(&bytes), Err(SnapError::BadVersion { found: 99 }));
    }

    #[test]
    fn checksum_ignores_its_own_field() {
        let mut a = tiny();
        let sum = checksum(&a);
        a[16..24].copy_from_slice(&[0xFF; 8]);
        assert_eq!(checksum(&a), sum);
    }

    #[test]
    fn claim_names_and_rel_names() {
        assert_eq!(claim::names(0), Vec::<&str>::new());
        assert_eq!(
            claim::names(claim::ECS | claim::CATALOG_PRIOR),
            vec!["ecs", "catalog_prior"]
        );
        assert_eq!(rel::name(rel::PEER), Some("peer"));
        assert_eq!(rel::name(9), None);
    }

    #[test]
    fn empty_file_and_bad_magic() {
        assert!(matches!(parse_dir(&[]), Err(SnapError::TooShort { .. })));
        let mut bytes = tiny();
        bytes[0] = b'X';
        assert!(parse_dir(&bytes).is_err());
    }
}
