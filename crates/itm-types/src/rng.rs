//! Deterministic randomness plumbing and distribution sampling.
//!
//! Reproducibility is a first-class requirement: the paper's entire argument
//! is about replicable measurement, so the reproduction must itself be
//! bit-reproducible. A [`SeedDomain`] derives independent named sub-seeds
//! from one master seed via the SplitMix64 mix function. Because sub-seeds
//! are keyed by *name*, adding a new consumer of randomness in one subsystem
//! never perturbs the streams seen by others — the classic "one extra
//! `gen()` call reshuffles the whole world" failure mode is designed out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives independent, named RNG streams from a master seed.
#[derive(Debug, Clone)]
pub struct SeedDomain {
    master: u64,
}

/// Default shard count for sharded measurement campaigns.
///
/// The shard count is a property of the *campaign*, never of the machine:
/// a campaign always splits into the same shards regardless of how many
/// worker threads execute them, so its merged output is byte-identical at
/// any `--threads N`. 32 comfortably out-divides the core counts we run
/// on while keeping per-shard state (one `BTreeMap` apiece) cheap.
pub const DEFAULT_SHARDS: usize = 32;

/// Domain-separation tag mixed into [`SeedDomain::shard`] derivations so a
/// shard domain can never alias a [`SeedDomain::child`] or
/// [`SeedDomain::rng_indexed`] stream of the same name.
const SHARD_TAG: u64 = 0x7368_6172_645F_7631; // "shard_v1"

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn
/// (master, name-hash, index) tuples into statistically independent seeds.
/// Public because several crates derive deterministic per-entity draws
/// from hashed keys with it.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the name bytes; stable across platforms and Rust versions
/// (unlike `std::hash`, whose output is unspecified across releases).
#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable 64-bit hash of a string, suitable for keying deterministic
/// per-entity draws by name (e.g. fault fates keyed by probed domain).
/// FNV-1a finalised with [`mix64`]; stable across platforms and releases.
#[inline]
pub fn stable_hash(name: &str) -> u64 {
    mix64(fnv1a(name))
}

impl SeedDomain {
    /// Create a domain from a master seed.
    pub fn new(master: u64) -> Self {
        SeedDomain { master }
    }

    /// The master seed this domain was created from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the raw 64-bit sub-seed for `name`.
    pub fn seed(&self, name: &str) -> u64 {
        mix64(self.master ^ mix64(fnv1a(name)))
    }

    /// A deterministic RNG for the stream `name`.
    pub fn rng(&self, name: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(name))
    }

    /// A deterministic RNG for the `i`-th element of stream `name`,
    /// letting per-entity draws stay independent of iteration order.
    pub fn rng_indexed(&self, name: &str, i: u64) -> StdRng {
        StdRng::seed_from_u64(mix64(self.seed(name) ^ mix64(i)))
    }

    /// A child domain, namespacing a whole subsystem.
    pub fn child(&self, name: &str) -> SeedDomain {
        SeedDomain {
            master: self.seed(name),
        }
    }

    /// The seed domain of one shard of a sharded campaign.
    ///
    /// Each shard of a parallel campaign draws from its own domain, keyed
    /// by `(campaign, shard_id)`, so the values a shard consumes depend
    /// only on which shard it is — never on which worker thread runs it or
    /// in what order shards complete. Derivation is domain-separated from
    /// [`SeedDomain::child`] and [`SeedDomain::rng_indexed`], so a shard
    /// domain cannot collide with a same-named sequential stream.
    pub fn shard(&self, campaign: &str, shard_id: u64) -> SeedDomain {
        SeedDomain {
            master: mix64(self.seed(campaign) ^ mix64(shard_id) ^ SHARD_TAG),
        }
    }
}

/// Half-open index range `[start, end)` covered by `shard` when `len`
/// items are split into `n_shards` contiguous, near-equal chunks.
///
/// The split depends only on `(len, n_shards)` — never on thread count or
/// scheduling — so sharded campaigns partition their work identically on
/// every run. Concatenating the ranges for `0..n_shards` exactly tiles
/// `0..len`.
pub fn shard_bounds(len: usize, shard: usize, n_shards: usize) -> (usize, usize) {
    let n = n_shards.max(1);
    let lo = shard.min(n);
    let hi = (shard + 1).min(n);
    (len * lo / n, len * hi / n)
}

/// Sample from a bounded Zipf distribution over ranks `1..=n`.
///
/// Returns a 0-based index. `exponent` near 1.0 matches the skew of service
/// popularity and flow sizes reported in traffic studies.
pub fn zipf_index<R: Rng>(rng: &mut R, n: usize, exponent: f64) -> usize {
    debug_assert!(n >= 1);
    // Inverse-CDF on the harmonic partial sums would need a table; for the
    // sizes we use (n ≤ a few thousand draws per call site are rare) a
    // rejection-free cumulative walk with cached normalizer is fine. To stay
    // allocation-free we use the standard approximate inverse:
    //   F(k) ≈ H_k / H_n with H_k ≈ (k^(1-s) - 1)/(1-s)  (s != 1)
    let s = exponent;
    let u: f64 = rng.gen_range(0.0..1.0);
    if (s - 1.0).abs() < 1e-9 {
        // H_k ≈ ln(k+1); invert ln-scaled uniform.
        let hn = ((n + 1) as f64).ln();
        let k = (u * hn).exp() - 1.0;
        (k.floor() as usize).min(n - 1)
    } else {
        let hn = ((n as f64 + 1.0).powf(1.0 - s) - 1.0) / (1.0 - s);
        let k = (u * hn * (1.0 - s) + 1.0).powf(1.0 / (1.0 - s)) - 1.0;
        (k.floor() as usize).min(n - 1)
    }
}

/// Zipf *weights* for ranks `1..=n` (normalized to sum to 1).
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// Sample a log-normal variate with the given parameters of the underlying
/// normal (mu, sigma). Uses Box–Muller on two uniforms for independence
/// from rand's distribution internals (keeps outputs stable if rand's own
/// samplers change between releases).
pub fn lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// Sample a Pareto (power-law) variate with scale `x_min` and shape `alpha`.
///
/// Heavy tails with `alpha` in (1, 2] reproduce the extreme skew of
/// per-prefix user counts and per-service traffic volumes.
pub fn pareto<R: Rng>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Choose an index proportionally to `weights` (need not be normalized).
/// Returns `None` for empty or all-zero weights.
pub fn weighted_choice<R: Rng>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut r = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if r < *w {
            return Some(i);
        }
        r -= w;
    }
    // Floating-point slop: return the last positive-weight index.
    weights.iter().rposition(|w| *w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let d = SeedDomain::new(42);
        let a: Vec<u32> = d
            .rng("topology")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = d
            .rng("topology")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_different_streams() {
        let d = SeedDomain::new(42);
        assert_ne!(d.seed("topology"), d.seed("traffic"));
        assert_ne!(d.seed("a"), d.seed("b"));
    }

    #[test]
    fn different_masters_different_streams() {
        assert_ne!(SeedDomain::new(1).seed("x"), SeedDomain::new(2).seed("x"));
    }

    #[test]
    fn child_domains_namespace() {
        let d = SeedDomain::new(9);
        let c1 = d.child("dns");
        let c2 = d.child("tls");
        assert_ne!(c1.seed("scan"), c2.seed("scan"));
        // Child derivation is stable.
        assert_eq!(d.child("dns").seed("scan"), c1.seed("scan"));
    }

    #[test]
    fn indexed_rngs_are_independent_of_order() {
        let d = SeedDomain::new(3);
        let v5: u64 = d.rng_indexed("as", 5).gen();
        let _ = d.rng_indexed("as", 4); // consuming 4 first must not matter
        assert_eq!(v5, d.rng_indexed("as", 5).gen::<u64>());
        assert_ne!(v5, d.rng_indexed("as", 6).gen::<u64>());
    }

    #[test]
    fn shard_bounds_tile_the_range() {
        for len in [0usize, 1, 7, 31, 32, 33, 1000] {
            for n in [1usize, 2, 8, 32] {
                let mut covered = 0;
                for k in 0..n {
                    let (lo, hi) = shard_bounds(len, k, n);
                    assert_eq!(lo, covered, "gap at shard {k} (len {len}, n {n})");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn shard_domains_are_stable_and_distinct() {
        let d = SeedDomain::new(7);
        // Stable: same (campaign, shard) pair, same domain.
        assert_eq!(
            d.shard("tls-scan", 3).seed("sweep"),
            d.shard("tls-scan", 3).seed("sweep")
        );
        // Distinct across shard ids and campaigns.
        assert_ne!(
            d.shard("tls-scan", 3).master(),
            d.shard("tls-scan", 4).master()
        );
        assert_ne!(
            d.shard("tls-scan", 3).master(),
            d.shard("sni-scan", 3).master()
        );
        // Domain-separated from child and indexed derivations.
        assert_ne!(d.shard("x", 0).master(), d.child("x").master());
        let indexed: u64 = d.rng_indexed("x", 0).gen();
        assert_ne!(d.shard("x", 0).rng("x").gen::<u64>(), indexed);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SeedDomain::new(1).rng("zipf");
        let n = 100;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            let i = zipf_index(&mut rng, n, 1.0);
            assert!(i < n);
            counts[i] += 1;
        }
        // Rank 1 should dominate rank 10 by roughly 10x under s=1.
        assert!(counts[0] > 4 * counts[9], "{} vs {}", counts[0], counts[9]);
        assert!(counts[0] > 50 * counts[90].max(1) / 2);
    }

    #[test]
    fn zipf_weights_normalized_and_monotone() {
        let w = zipf_weights(50, 1.1);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn lognormal_median_close_to_exp_mu() {
        let mut rng = SeedDomain::new(2).rng("ln");
        let mut v: Vec<f64> = (0..9999).map(|_| lognormal(&mut rng, 2.0, 0.7)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let expect = 2.0f64.exp();
        assert!((median / expect - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn pareto_respects_scale_and_is_heavy_tailed() {
        let mut rng = SeedDomain::new(4).rng("pareto");
        let xs: Vec<f64> = (0..10_000).map(|_| pareto(&mut rng, 1.0, 1.2)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 100.0, "tail too light: max {max}");
    }

    #[test]
    fn weighted_choice_matches_weights() {
        let mut rng = SeedDomain::new(5).rng("wc");
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[weighted_choice(&mut rng, &w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
        assert_eq!(weighted_choice(&mut rng, &[]), None);
        assert_eq!(weighted_choice(&mut rng, &[0.0, 0.0]), None);
    }
}
