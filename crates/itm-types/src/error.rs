//! Workspace error type.
//!
//! The simulator is deterministic and mostly infallible; errors arise from
//! malformed user input (prefix parsing, out-of-range configuration) and
//! from queries against entities that do not exist in a given Internet
//! instance. A single small enum keeps error handling uniform across crates
//! without pulling in an error-handling dependency.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = ItmError> = std::result::Result<T, E>;

/// Errors produced by the itm workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItmError {
    /// A textual representation (prefix, address, id) failed to parse.
    Parse {
        /// What kind of entity was being parsed (e.g. `"Ipv4Net"`).
        what: &'static str,
        /// The offending input, truncated for display.
        input: String,
    },
    /// A configuration value was outside its documented range.
    InvalidConfig {
        /// The configuration field at fault.
        field: &'static str,
        /// Human-readable description of the constraint violated.
        reason: String,
    },
    /// A lookup referenced an entity absent from this Internet instance.
    NotFound {
        /// The entity kind (e.g. `"Asn"`).
        what: &'static str,
        /// Display form of the missing key.
        key: String,
    },
    /// An operation required state that has not been produced yet
    /// (e.g. querying routes before running route computation).
    NotReady {
        /// Description of the missing precondition.
        need: &'static str,
    },
    /// An underlying error surfaced while running a named measurement
    /// campaign; the campaign name makes degraded-run failures
    /// attributable to the technique that hit them.
    InCampaign {
        /// The campaign or build stage that was running.
        campaign: &'static str,
        /// The underlying error.
        cause: Box<ItmError>,
    },
}

impl ItmError {
    /// Construct a [`ItmError::Parse`] error, truncating long inputs.
    pub fn parse(what: &'static str, input: &str) -> Self {
        let mut input = input.to_owned();
        if input.len() > 64 {
            input.truncate(64);
            input.push('…');
        }
        ItmError::Parse { what, input }
    }

    /// Construct a [`ItmError::NotFound`] error.
    pub fn not_found(what: &'static str, key: impl fmt::Display) -> Self {
        ItmError::NotFound {
            what,
            key: key.to_string(),
        }
    }

    /// Construct an [`ItmError::InvalidConfig`] error.
    pub fn config(field: &'static str, reason: impl fmt::Display) -> Self {
        ItmError::InvalidConfig {
            field,
            reason: reason.to_string(),
        }
    }

    /// Wrap an error with the campaign that hit it.
    pub fn in_campaign(campaign: &'static str, cause: ItmError) -> Self {
        ItmError::InCampaign {
            campaign,
            cause: Box::new(cause),
        }
    }
}

impl fmt::Display for ItmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItmError::Parse { what, input } => {
                write!(f, "failed to parse {what} from {input:?}")
            }
            ItmError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for {field}: {reason}")
            }
            ItmError::NotFound { what, key } => write!(f, "{what} {key} not found"),
            ItmError::NotReady { need } => write!(f, "operation not ready: {need}"),
            ItmError::InCampaign { campaign, cause } => {
                write!(f, "campaign {campaign}: {cause}")
            }
        }
    }
}

impl std::error::Error for ItmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let e = ItmError::parse("Ipv4Net", "999.0.0.0/8");
        assert_eq!(
            e.to_string(),
            "failed to parse Ipv4Net from \"999.0.0.0/8\""
        );
        let e = ItmError::not_found("Asn", "AS65000");
        assert_eq!(e.to_string(), "Asn AS65000 not found");
        let e = ItmError::config("n_ases", "must be >= 10");
        assert!(e.to_string().contains("n_ases"));
        let e = ItmError::NotReady {
            need: "routes computed",
        };
        assert!(e.to_string().contains("routes computed"));
    }

    #[test]
    fn in_campaign_attributes_the_cause() {
        // Regression: errors bubbling out of a map build must name the
        // campaign that hit them, so degraded runs are attributable.
        let inner = ItmError::NotReady {
            need: "topology with at least one city",
        };
        let e = ItmError::in_campaign("cache_probe", inner.clone());
        assert_eq!(
            e.to_string(),
            "campaign cache_probe: operation not ready: topology with at least one city"
        );
        match &e {
            ItmError::InCampaign { campaign, cause } => {
                assert_eq!(*campaign, "cache_probe");
                assert_eq!(**cause, inner);
            }
            _ => panic!("wrong variant"),
        }
        // Nesting keeps the full chain in the display form.
        let nested = ItmError::in_campaign("map.build", e);
        assert!(nested
            .to_string()
            .starts_with("campaign map.build: campaign cache_probe:"));
    }

    #[test]
    fn parse_error_truncates_long_input() {
        let long = "x".repeat(500);
        let e = ItmError::parse("Ipv4Net", &long);
        match e {
            ItmError::Parse { input, .. } => {
                assert!(input.chars().count() <= 65);
                assert!(input.ends_with('…'));
            }
            _ => panic!("wrong variant"),
        }
    }
}
