//! Deterministic fault injection for measurement campaigns.
//!
//! Real measurement infrastructure is flaky: cache probes time out, open
//! resolvers refuse queries, vantage points churn mid-campaign. A
//! [`FaultPlan`] describes per-campaign loss/timeout/refusal/churn rates;
//! a [`FaultInjector`] turns the plan into *deterministic* per-probe
//! outcomes. Every draw is a pure function of `(seed, entity keys)` — never
//! of emission order or thread scheduling — so a faulted run is
//! byte-reproducible at any `--threads N`, and the all-zero plan performs
//! no draws at all, leaving fault-free output bit-identical to a build
//! without the fault layer.
//!
//! Retries follow a bounded, monotone virtual-time backoff schedule
//! (`min(cap, base·2^k + jitter)` with seeded jitter in `[0, base)`). When
//! retries exhaust, the probe is recorded as [`ProbeFate::Lost`] and the
//! campaign records the gap instead of erroring; [`FaultStats`] maintains
//! the accounting invariant `observed + degraded + lost = issued`.

use crate::error::{ItmError, Result};
use crate::rng::{mix64, SeedDomain};

/// Domain-separation tag for churn draws so a vantage point's churn draw
/// can never alias a probe-fate draw keyed by the same entity id.
const CHURN_TAG: u64 = 0x6368_7572_6e5f_7631; // "churn_v1"

/// Domain-separation tag for backoff jitter draws.
const JITTER_TAG: u64 = 0x6a69_7474_6572_5f31; // "jitter_1"

/// Per-attempt key stride mixed into retry draws so attempt `k` and
/// attempt `k+1` of one probe see independent fault draws.
const ATTEMPT_TAG: u64 = 0x6174_7465_6d70_745f; // "attempt_"

/// Hard ceiling on [`FaultPlan::max_retries`]; keeps backoff arithmetic in
/// shift range and bounds worst-case virtual campaign duration.
pub const MAX_RETRIES_CEILING: u32 = 16;

/// How a single probe attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The probe (or its answer) was silently dropped.
    Loss,
    /// The probe timed out waiting for an answer.
    Timeout,
    /// The target actively refused the query.
    Refusal,
}

impl FaultKind {
    /// Stable lower-case name for traces and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Loss => "loss",
            FaultKind::Timeout => "timeout",
            FaultKind::Refusal => "refusal",
        }
    }
}

/// Final outcome of one probe after bounded retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFate {
    /// Succeeded on the first attempt.
    Observed,
    /// Succeeded after one or more retries.
    Degraded {
        /// Number of failed attempts before the success.
        retries: u32,
    },
    /// All attempts failed; the campaign records a gap, not an error.
    Lost,
}

impl ProbeFate {
    /// Whether the probe ultimately produced an observation.
    pub fn succeeded(&self) -> bool {
        !matches!(self, ProbeFate::Lost)
    }

    /// Combine the fates of two hops of one logical query (e.g. the
    /// resolver hop and the authoritative hop): lost anywhere is lost,
    /// otherwise retries add.
    pub fn combine(self, other: ProbeFate) -> ProbeFate {
        match (self, other) {
            (ProbeFate::Lost, _) | (_, ProbeFate::Lost) => ProbeFate::Lost,
            (ProbeFate::Observed, ProbeFate::Observed) => ProbeFate::Observed,
            (a, b) => ProbeFate::Degraded {
                retries: a.retries() + b.retries(),
            },
        }
    }

    /// Retries spent before the final outcome (0 for observed and lost —
    /// a lost probe's attempts are accounted through the plan, not here).
    pub fn retries(&self) -> u32 {
        match self {
            ProbeFate::Degraded { retries } => *retries,
            _ => 0,
        }
    }
}

/// Per-technique fault accounting.
///
/// Invariant: `observed + degraded + lost` equals the number of probes
/// issued by the technique; [`FaultStats::record`] maintains it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Probes that succeeded on the first attempt.
    pub observed: u64,
    /// Probes that succeeded only after retrying.
    pub degraded: u64,
    /// Probes whose retries exhausted; recorded as gaps.
    pub lost: u64,
    /// Total retry attempts across all probes.
    pub retries: u64,
}

impl FaultStats {
    /// Account for one probe's fate.
    pub fn record(&mut self, fate: ProbeFate) {
        match fate {
            ProbeFate::Observed => self.observed += 1,
            ProbeFate::Degraded { retries } => {
                self.degraded += 1;
                self.retries += retries as u64;
            }
            ProbeFate::Lost => self.lost += 1,
        }
    }

    /// Fold another shard's accounting into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.observed += other.observed;
        self.degraded += other.degraded;
        self.lost += other.lost;
        self.retries += other.retries;
    }

    /// Total probes accounted for (`observed + degraded + lost`).
    pub fn issued(&self) -> u64 {
        self.observed + self.degraded + self.lost
    }

    /// True when no probe was ever faulted or retried.
    pub fn is_clean(&self) -> bool {
        self.degraded == 0 && self.lost == 0 && self.retries == 0
    }
}

/// Per-campaign fault rates and retry policy.
///
/// Rates are probabilities in `[0, 1]`; `loss + timeout + refusal` is the
/// per-attempt failure probability and must not exceed 1. `churn` applies
/// to long-lived entities (vantage points, resolvers) rather than single
/// probes. Backoff delays are virtual seconds — they advance accounting,
/// not wall clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-attempt probability a probe is silently dropped.
    pub loss: f64,
    /// Per-attempt probability a probe times out.
    pub timeout: f64,
    /// Per-attempt probability the target refuses the query.
    pub refusal: f64,
    /// Probability a long-lived vantage point churns away mid-campaign.
    pub churn: f64,
    /// Maximum retry attempts after the initial one (≤ 16).
    pub max_retries: u32,
    /// Base backoff delay in virtual seconds (attempt `k` waits
    /// `min(cap, base·2^k + jitter)` with jitter in `[0, base)`).
    pub backoff_base_secs: u64,
    /// Ceiling on any single backoff delay, in virtual seconds.
    pub backoff_cap_secs: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::off()
    }
}

impl FaultPlan {
    /// The all-zero plan: no faults, no retries, zero draws performed.
    pub fn off() -> FaultPlan {
        FaultPlan {
            loss: 0.0,
            timeout: 0.0,
            refusal: 0.0,
            churn: 0.0,
            max_retries: 0,
            backoff_base_secs: 0,
            backoff_cap_secs: 0,
        }
    }

    /// Mild degradation: the background flakiness any real campaign sees.
    pub fn light() -> FaultPlan {
        FaultPlan {
            loss: 0.02,
            timeout: 0.01,
            refusal: 0.005,
            churn: 0.02,
            max_retries: 2,
            backoff_base_secs: 1,
            backoff_cap_secs: 30,
        }
    }

    /// Heavy degradation: a bad week on the measurement platform.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            loss: 0.15,
            timeout: 0.08,
            refusal: 0.05,
            churn: 0.15,
            max_retries: 3,
            backoff_base_secs: 2,
            backoff_cap_secs: 120,
        }
    }

    /// Look up a named profile (`off`, `light`, `heavy`).
    pub fn profile(name: &str) -> Option<FaultPlan> {
        match name {
            "off" => Some(FaultPlan::off()),
            "light" => Some(FaultPlan::light()),
            "heavy" => Some(FaultPlan::heavy()),
            _ => None,
        }
    }

    /// Per-attempt failure probability (`loss + timeout + refusal`).
    pub fn failure_rate(&self) -> f64 {
        self.loss + self.timeout + self.refusal
    }

    /// True when the plan can never fault a probe; injectors short-circuit
    /// on this so the off plan performs zero draws.
    pub fn is_off(&self) -> bool {
        self.failure_rate() <= 0.0 && self.churn <= 0.0
    }

    /// Check every documented constraint, returning the first violation.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("loss", self.loss),
            ("timeout", self.timeout),
            ("refusal", self.refusal),
            ("churn", self.churn),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ItmError::config(
                    "faults",
                    format!("rate {name} must be in [0, 1], got {v}"),
                ));
            }
        }
        if self.failure_rate() > 1.0 {
            return Err(ItmError::config(
                "faults",
                format!(
                    "loss + timeout + refusal must not exceed 1, got {}",
                    self.failure_rate()
                ),
            ));
        }
        if self.max_retries > MAX_RETRIES_CEILING {
            return Err(ItmError::config(
                "faults",
                format!(
                    "max_retries must be <= {MAX_RETRIES_CEILING}, got {}",
                    self.max_retries
                ),
            ));
        }
        if self.backoff_cap_secs < self.backoff_base_secs {
            return Err(ItmError::config(
                "faults",
                format!(
                    "backoff_cap_secs ({}) must be >= backoff_base_secs ({})",
                    self.backoff_cap_secs, self.backoff_base_secs
                ),
            ));
        }
        Ok(())
    }
}

/// Turns a [`FaultPlan`] into deterministic per-probe outcomes.
///
/// Draws are keyed by stable entity identifiers (prefix ids, service ids,
/// round numbers, addresses) supplied by the caller — never by iteration
/// or emission order — so two shards, two runs, or two thread counts that
/// probe the same entity see the same fate.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    /// Build an injector for `campaign`, deriving its seed from the
    /// `"faults"` child domain so fault draws can never perturb any
    /// pre-existing RNG stream.
    pub fn new(plan: FaultPlan, seeds: &SeedDomain, campaign: &str) -> FaultInjector {
        FaultInjector {
            seed: seeds.child("faults").seed(campaign),
            plan,
        }
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when this injector can never fault anything.
    pub fn is_off(&self) -> bool {
        self.plan.is_off()
    }

    /// Uniform draw in `[0, 1)` keyed by three entity identifiers.
    fn draw(&self, a: u64, b: u64, c: u64) -> f64 {
        let k = mix64(self.seed ^ mix64(a) ^ mix64(b.rotate_left(17)) ^ mix64(c.rotate_left(34)));
        (k >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The fault (if any) striking attempt `attempt` of the probe keyed by
    /// `(a, b, c)`. Classification thresholds stack loss, then timeout,
    /// then refusal, so a single uniform draw decides both *whether* and
    /// *how* the attempt fails.
    pub fn attempt_fault(&self, a: u64, b: u64, c: u64, attempt: u32) -> Option<FaultKind> {
        if self.plan.failure_rate() <= 0.0 {
            return None;
        }
        let key = mix64(c ^ ATTEMPT_TAG.wrapping_mul(attempt as u64 + 1));
        let u = self.draw(a, b, key);
        if u < self.plan.loss {
            Some(FaultKind::Loss)
        } else if u < self.plan.loss + self.plan.timeout {
            Some(FaultKind::Timeout)
        } else if u < self.plan.failure_rate() {
            Some(FaultKind::Refusal)
        } else {
            None
        }
    }

    /// Run the bounded-retry loop for the probe keyed by `(a, b, c)`.
    ///
    /// The off plan short-circuits to [`ProbeFate::Observed`] without
    /// performing a single draw, which is what keeps `--faults off`
    /// byte-identical to a build with no fault layer at all.
    pub fn fate(&self, a: u64, b: u64, c: u64) -> ProbeFate {
        if self.plan.failure_rate() <= 0.0 {
            return ProbeFate::Observed;
        }
        for attempt in 0..=self.plan.max_retries {
            if self.attempt_fault(a, b, c, attempt).is_none() {
                return if attempt == 0 {
                    ProbeFate::Observed
                } else {
                    ProbeFate::Degraded { retries: attempt }
                };
            }
        }
        ProbeFate::Lost
    }

    /// The fault that struck the *first* attempt of a probe, for trace
    /// detail on degraded and lost probes. `None` means the first attempt
    /// succeeded.
    pub fn first_fault(&self, a: u64, b: u64, c: u64) -> Option<FaultKind> {
        self.attempt_fault(a, b, c, 0)
    }

    /// Like [`FaultInjector::fate`] but only refusals strike — the model
    /// for authoritative servers, which either answer or refuse (loss and
    /// timeouts live on the resolver hop). Shares the plan's retry policy.
    pub fn refusal_fate(&self, a: u64, b: u64, c: u64) -> ProbeFate {
        if self.plan.refusal <= 0.0 {
            return ProbeFate::Observed;
        }
        for attempt in 0..=self.plan.max_retries {
            if self.attempt_fault(a, b, c, attempt) != Some(FaultKind::Refusal) {
                return if attempt == 0 {
                    ProbeFate::Observed
                } else {
                    ProbeFate::Degraded { retries: attempt }
                };
            }
        }
        ProbeFate::Lost
    }

    /// Whether a long-lived entity (vantage point, resolver) churns away
    /// for the whole campaign. One draw per entity, domain-separated from
    /// probe fates.
    pub fn churned(&self, entity: u64) -> bool {
        if self.plan.churn <= 0.0 {
            return false;
        }
        self.draw(entity, CHURN_TAG, 0) < self.plan.churn
    }

    /// Virtual-time backoff delay (seconds) before retry `attempt` of the
    /// probe keyed by `entity`: `min(cap, base·2^attempt + jitter)` with
    /// seeded jitter in `[0, base)`. The schedule is bounded by the cap
    /// and monotone nondecreasing in `attempt` (strictly increasing below
    /// the cap, since `base·2^(k+1) > base·2^k + base > base·2^k + j_k`).
    pub fn backoff_secs(&self, entity: u64, attempt: u32) -> u64 {
        let base = self.plan.backoff_base_secs;
        if base == 0 {
            return 0;
        }
        let exp = base
            .checked_shl(attempt.min(MAX_RETRIES_CEILING))
            .unwrap_or(u64::MAX);
        let jitter = mix64(self.seed ^ mix64(entity ^ JITTER_TAG) ^ mix64(attempt as u64)) % base;
        exp.saturating_add(jitter).min(self.plan.backoff_cap_secs)
    }

    /// Total virtual seconds spent backing off across `retries` retries of
    /// the probe keyed by `entity`.
    pub fn total_backoff_secs(&self, entity: u64, retries: u32) -> u64 {
        (0..retries.min(MAX_RETRIES_CEILING))
            .map(|k| self.backoff_secs(entity, k))
            .fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, &SeedDomain::new(42), "test")
    }

    #[test]
    fn off_plan_never_faults() {
        let inj = injector(FaultPlan::off());
        assert!(inj.is_off());
        for k in 0..1000u64 {
            assert_eq!(inj.fate(k, k ^ 7, k ^ 13), ProbeFate::Observed);
            assert!(!inj.churned(k));
        }
    }

    #[test]
    fn profiles_validate_and_are_distinct() {
        for name in ["off", "light", "heavy"] {
            let plan = FaultPlan::profile(name).expect("known profile");
            plan.validate().expect("profile is valid");
        }
        assert!(FaultPlan::profile("medium").is_none());
        assert!(FaultPlan::light().failure_rate() < FaultPlan::heavy().failure_rate());
        assert!(FaultPlan::off().is_off());
        assert!(!FaultPlan::light().is_off());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = FaultPlan::light();
        p.loss = 1.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::light();
        p.loss = 0.6;
        p.timeout = 0.6;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::light();
        p.max_retries = 99;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::light();
        p.backoff_cap_secs = 0;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::light();
        p.churn = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn fates_are_deterministic_and_entity_keyed() {
        let a = injector(FaultPlan::heavy());
        let b = injector(FaultPlan::heavy());
        for k in 0..500u64 {
            assert_eq!(a.fate(k, 3, 9), b.fate(k, 3, 9));
            assert_eq!(a.churned(k), b.churned(k));
        }
        // Different campaigns draw from different streams.
        let other = FaultInjector::new(FaultPlan::heavy(), &SeedDomain::new(42), "other");
        let diverges = (0..500u64).any(|k| a.fate(k, 3, 9) != other.fate(k, 3, 9));
        assert!(diverges, "campaign streams should be independent");
    }

    #[test]
    fn heavy_plan_loses_and_degrades_some_probes() {
        let inj = injector(FaultPlan::heavy());
        let mut stats = FaultStats::default();
        for k in 0..5000u64 {
            stats.record(inj.fate(k, 1, 2));
        }
        assert_eq!(stats.issued(), 5000);
        assert!(stats.observed > 0);
        assert!(stats.degraded > 0);
        assert!(stats.lost > 0);
        // Failure rate ~0.28: lost needs 4 consecutive failures (~0.6%).
        assert!(stats.lost < 500, "lost {} of 5000", stats.lost);
    }

    #[test]
    fn combine_is_lost_dominant_and_adds_retries() {
        use ProbeFate::*;
        assert_eq!(Observed.combine(Observed), Observed);
        assert_eq!(Observed.combine(Lost), Lost);
        assert_eq!(Lost.combine(Degraded { retries: 2 }), Lost);
        assert_eq!(
            Degraded { retries: 1 }.combine(Degraded { retries: 2 }),
            Degraded { retries: 3 }
        );
        assert_eq!(
            Observed.combine(Degraded { retries: 2 }),
            Degraded { retries: 2 }
        );
    }

    #[test]
    fn refusal_fate_only_counts_refusals() {
        // A plan with zero refusal never faults the authoritative hop,
        // whatever its loss rate.
        let mut plan = FaultPlan::heavy();
        plan.refusal = 0.0;
        let inj = injector(plan);
        for k in 0..500u64 {
            assert_eq!(inj.refusal_fate(k, 1, 2), ProbeFate::Observed);
        }
        // A refusal-heavy plan loses some and degrades some.
        let mut plan = FaultPlan::heavy();
        plan.refusal = 0.4;
        let inj = injector(plan);
        let mut stats = FaultStats::default();
        for k in 0..2000u64 {
            stats.record(inj.refusal_fate(k, 1, 2));
        }
        assert!(stats.degraded > 0);
        assert!(stats.lost > 0);
        assert!(stats.observed > stats.lost);
    }

    #[test]
    fn stats_merge_preserves_totals() {
        let inj = injector(FaultPlan::heavy());
        let mut whole = FaultStats::default();
        let mut left = FaultStats::default();
        let mut right = FaultStats::default();
        for k in 0..2000u64 {
            let fate = inj.fate(k, 0, 0);
            whole.record(fate);
            if k < 1000 {
                left.record(fate)
            } else {
                right.record(fate)
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert!(!whole.is_clean());
        assert!(FaultStats::default().is_clean());
    }

    #[test]
    fn backoff_is_bounded_monotone_and_capped() {
        let inj = injector(FaultPlan::heavy());
        for entity in 0..200u64 {
            let mut prev = 0u64;
            for k in 0..=MAX_RETRIES_CEILING {
                let d = inj.backoff_secs(entity, k);
                assert!(d <= inj.plan().backoff_cap_secs);
                assert!(d >= prev, "entity {entity} attempt {k}: {d} < {prev}");
                prev = d;
            }
            assert_eq!(inj.backoff_secs(entity, MAX_RETRIES_CEILING), 120);
        }
        // Zero base: all delays zero.
        let mut plan = FaultPlan::heavy();
        plan.backoff_base_secs = 0;
        plan.backoff_cap_secs = 0;
        let z = injector(plan);
        assert_eq!(z.backoff_secs(7, 3), 0);
        assert_eq!(z.total_backoff_secs(7, 8), 0);
    }

    #[test]
    fn total_backoff_sums_the_schedule() {
        let inj = injector(FaultPlan::light());
        let by_hand: u64 = (0..3).map(|k| inj.backoff_secs(11, k)).sum();
        assert_eq!(inj.total_backoff_secs(11, 3), by_hand);
        assert_eq!(inj.total_backoff_secs(11, 0), 0);
    }
}
