//! An X.509-lite certificate model.
//!
//! Only the fields the measurement techniques read are modelled: the
//! subject, the SAN list (which domains the cert is valid for), the
//! issuer (which organization's CA signed it), and a serial acting as a
//! fingerprint. Validity periods and chains are out of scope — the paper's
//! techniques never inspect them.

use serde::{Deserialize, Serialize};

/// A leaf certificate as a scanner sees it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Certificate {
    /// Subject common name.
    pub subject: String,
    /// Subject alternative names: every domain the cert is valid for.
    pub san: Vec<String>,
    /// Issuing organization (hypergiants run their own CAs; that issuer
    /// string is the strongest ownership signal \[25\]).
    pub issuer: String,
    /// Serial number; stands in for the certificate fingerprint.
    pub serial: u64,
}

impl Certificate {
    /// Whether the certificate is valid for `domain` (exact SAN match; the
    /// substrate does not generate wildcards).
    pub fn covers(&self, domain: &str) -> bool {
        self.san.iter().any(|d| d == domain)
    }

    /// Issuer organization for a hypergiant's private CA.
    pub fn hypergiant_issuer(asn_raw: u32) -> String {
        format!("HG{asn_raw} Trust Services")
    }

    /// Issuer for generic/public CAs used by cloud tenants.
    pub fn public_issuer() -> String {
        "Let's Simulate CA".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn san_matching() {
        let c = Certificate {
            subject: "svc0.example".into(),
            san: vec!["svc0.example".into(), "svc3.example".into()],
            issuer: Certificate::hypergiant_issuer(7),
            serial: 42,
        };
        assert!(c.covers("svc0.example"));
        assert!(c.covers("svc3.example"));
        assert!(!c.covers("svc1.example"));
    }

    #[test]
    fn issuers_are_distinct_per_hypergiant() {
        assert_ne!(
            Certificate::hypergiant_issuer(1),
            Certificate::hypergiant_issuer(2)
        );
        assert_ne!(
            Certificate::hypergiant_issuer(1),
            Certificate::public_issuer()
        );
    }
}
