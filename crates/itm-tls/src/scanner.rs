//! Internet-wide TLS and SNI scanning.
//!
//! The scanner does what zgrab-style campaigns do: sweep the routed
//! address plan attempting handshakes, recording any certificate
//! presented. It has no ground-truth hit list — it tries a set of host
//! offsets inside every routed /24 (serving hosts cluster at conventional
//! offsets in the substrate, as real infra clusters in practice), and a
//! coverage knob models hosts lost to filtering and transient failures.

use crate::certs::Certificate;
use crate::hosts::TlsHostRegistry;
use itm_topology::Topology;
use itm_types::rng::{shard_bounds, stable_hash, SeedDomain, DEFAULT_SHARDS};
use itm_types::{
    merge_sorted_runs_by, DomainId, DomainTable, FaultInjector, FaultPlan, FaultStats, Ipv4Addr,
    ProbeFate,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bytes-equivalent cost of one TLS handshake attempt (client hello +
/// server response; the order of magnitude real zgrab campaigns budget).
const HANDSHAKE_BYTES: u64 = 3_000;

/// Scan parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Host offsets probed inside each routed /24.
    pub offsets: Vec<u32>,
    /// Probability a listening host actually answers the scanner
    /// (firewalls, rate limits, flaps).
    pub response_rate: f64,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            // Offsets cover the substrate's serving conventions (10 for
            // front-ends, 100.. for VIPs, 8/9 for resolver egress) plus a
            // few that hit nothing — the scanner does not know which.
            offsets: vec![1, 8, 9, 10, 53, 100, 101, 102, 240],
            response_rate: 0.97,
        }
    }
}

/// One scan hit: an address that completed a handshake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanObservation {
    /// The responding address.
    pub addr: Ipv4Addr,
    /// The presented certificate.
    pub cert: Certificate,
}

/// Results of a full (no-SNI) TLS sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlsScan {
    /// All hits, in address order.
    pub observations: Vec<ScanObservation>,
    /// How many addresses were attempted.
    pub attempted: usize,
    /// Fault accounting (`observed + degraded + lost == attempted`).
    pub fault_stats: FaultStats,
}

impl TlsScan {
    /// Run the sweep over every routed /24 of the topology.
    pub fn run(
        topo: &Topology,
        registry: &TlsHostRegistry,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
    ) -> TlsScan {
        Self::run_with(topo, registry, cfg, seeds, |n, job| {
            (0..n).map(job).collect()
        })
    }

    /// How many shards the sweep splits into (a property of the prefix
    /// table, never of the machine running it).
    pub fn shard_count(topo: &Topology) -> usize {
        topo.prefixes.len().clamp(1, DEFAULT_SHARDS)
    }

    /// Run the sweep with a caller-supplied shard runner (fault-free).
    pub fn run_with<R>(
        topo: &Topology,
        registry: &TlsHostRegistry,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
        run_shards: R,
    ) -> TlsScan
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> TlsScanShard + Sync)) -> Vec<TlsScanShard>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), seeds, "tls-scan");
        Self::run_with_faults(topo, registry, cfg, seeds, &faults, run_shards)
    }

    /// Run the sweep with a caller-supplied shard runner under fault
    /// injection.
    ///
    /// Each shard sweeps a contiguous prefix slice with its own RNG
    /// stream derived via [`SeedDomain::shard`], so the response-rate
    /// coin flips never depend on how many threads execute the shards.
    /// Probe fates are keyed by `(address, offset)`, so a faulted sweep
    /// is equally thread-count independent; lost handshakes are recorded
    /// in the fault accounting instead of erroring.
    pub fn run_with_faults<R>(
        topo: &Topology,
        registry: &TlsHostRegistry,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
        faults: &FaultInjector,
        run_shards: R,
    ) -> TlsScan
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> TlsScanShard + Sync)) -> Vec<TlsScanShard>,
    {
        let _span = itm_obs::span("tls_scan.run");
        let _campaign = itm_obs::trace::campaign(
            itm_obs::trace::Technique::TlsScan,
            "internet-wide TLS sweep",
        );
        let n_shards = Self::shard_count(topo);
        let parts = run_shards(n_shards, &|shard| {
            Self::sweep_shard(topo, registry, cfg, seeds, faults, shard, n_shards)
        });
        let mut runs = Vec::with_capacity(parts.len());
        let mut attempted = 0;
        let mut fault_stats = FaultStats::default();
        for part in parts {
            runs.push(part.observations);
            attempted += part.attempted;
            fault_stats.merge(&part.stats);
        }
        // Shards hand back address-sorted runs, so the merge is a linear
        // k-way pass — no sort on the merge path.
        let mut observations = merge_sorted_runs_by(runs, |a, b| a.addr < b.addr);
        observations.dedup_by_key(|o| o.addr);
        if itm_obs::trace::enabled() {
            for o in &observations {
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::TlsScan,
                    itm_obs::trace::EventKind::CertMatched,
                    itm_obs::trace::Subjects::none().addr(o.addr.0),
                    &o.cert.subject,
                );
            }
        }
        itm_obs::counter!("probe.connects", "technique" => "tls_scan").add(attempted as u64);
        itm_obs::counter!("probe.hosts", "technique" => "tls_scan").add(observations.len() as u64);
        itm_obs::counter!("probe.bytes", "technique" => "tls_scan")
            .add(attempted as u64 * HANDSHAKE_BYTES);
        TlsScan {
            observations,
            attempted,
            fault_stats,
        }
    }

    /// Sweep one shard's slice of the prefix table.
    fn sweep_shard(
        topo: &Topology,
        registry: &TlsHostRegistry,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
        faults: &FaultInjector,
        shard: usize,
        n_shards: usize,
    ) -> TlsScanShard {
        let (lo, hi) = shard_bounds(topo.prefixes.len(), shard, n_shards);
        let mut rng = seeds.shard("tls-scan", shard as u64).rng("sweep");
        let mut part = TlsScanShard {
            observations: Vec::new(),
            attempted: 0,
            stats: FaultStats::default(),
        };
        let faults_on = !faults.is_off();
        for r in topo.prefixes.iter().skip(lo).take(hi - lo) {
            for &off in &cfg.offsets {
                part.attempted += 1;
                let addr = r.net.addr(off);
                if faults_on {
                    let fate = faults.fate(addr.0 as u64, off as u64, 0);
                    part.stats.record(fate);
                    if !fate.succeeded() {
                        if itm_obs::trace::enabled() {
                            itm_obs::trace::emit(
                                itm_obs::trace::Technique::TlsScan,
                                itm_obs::trace::EventKind::ProbeFailed,
                                itm_obs::trace::Subjects::none()
                                    .prefix(r.id.raw())
                                    .addr(addr.0),
                                "handshake lost, retries exhausted",
                            );
                        }
                        continue;
                    }
                    if itm_obs::trace::enabled() {
                        if let ProbeFate::Degraded { retries } = fate {
                            itm_obs::trace::emit(
                                itm_obs::trace::Technique::TlsScan,
                                itm_obs::trace::EventKind::ProbeRetried,
                                itm_obs::trace::Subjects::none()
                                    .prefix(r.id.raw())
                                    .addr(addr.0),
                                &format!(
                                    "retries={retries} backoff={}s",
                                    faults.total_backoff_secs(addr.0 as u64, retries)
                                ),
                            );
                        }
                    }
                } else {
                    part.stats.record(ProbeFate::Observed);
                }
                if let Some(cert) = registry.handshake(addr, None) {
                    if rng.gen_bool(cfg.response_rate.clamp(0.0, 1.0)) {
                        part.observations.push(ScanObservation {
                            addr,
                            // itm-lint: allow(M001): one owned certificate per observed hit (bounded by the registry, ~hosts not ~probes); sharing would thread lifetimes through every consumer
                            cert: cert.clone(),
                        });
                    }
                }
            }
        }
        // Keep each shard's run address-sorted so the merge never sorts.
        // Offsets ascend within a /24, but prefix *networks* are not
        // guaranteed address-ordered across the table slice.
        part.observations.sort_by_key(|o| o.addr);
        part
    }

    /// Hits presenting a certificate from a given issuer.
    pub fn by_issuer<'a>(&'a self, issuer: &'a str) -> impl Iterator<Item = &'a ScanObservation> {
        self.observations
            .iter()
            .filter(move |o| o.cert.issuer == issuer)
    }
}

/// One shard's partial sweep output (disjoint prefix slice).
#[derive(Debug, Clone)]
pub struct TlsScanShard {
    observations: Vec<ScanObservation>,
    attempted: usize,
    stats: FaultStats,
}

/// Results of an SNI scan: for each target domain, the addresses that
/// presented a valid certificate for it.
///
/// Domains are carried as [`DomainId`]s interned in the caller's
/// [`DomainTable`]; the scan never owns a domain string, so the per-domain
/// key cost is four bytes regardless of name length or shard count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SniScan {
    /// Interned domain id -> responding addresses (sorted).
    pub footprint: BTreeMap<DomainId, Vec<Ipv4Addr>>,
    /// How many (address, domain) handshakes were attempted.
    pub attempted: usize,
    /// Fault accounting (`observed + degraded + lost == attempted`).
    pub fault_stats: FaultStats,
}

impl SniScan {
    /// Handshake every candidate address with each domain as SNI.
    ///
    /// `candidates` is typically the hit list from a prior [`TlsScan`]
    /// (scanning the full plan times every domain would be prohibitively
    /// loud, exactly as in practice).
    pub fn run(
        registry: &TlsHostRegistry,
        candidates: &[Ipv4Addr],
        domains: &DomainTable,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
    ) -> SniScan {
        Self::run_with(registry, candidates, domains, cfg, seeds, |n, job| {
            (0..n).map(job).collect()
        })
    }

    /// How many shards the scan splits into (a property of the domain
    /// table, never of the machine running it).
    pub fn shard_count(domains: &DomainTable) -> usize {
        domains.len().clamp(1, DEFAULT_SHARDS)
    }

    /// Run the scan with a caller-supplied shard runner (fault-free).
    pub fn run_with<R>(
        registry: &TlsHostRegistry,
        candidates: &[Ipv4Addr],
        domains: &DomainTable,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
        run_shards: R,
    ) -> SniScan
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> SniScanShard + Sync)) -> Vec<SniScanShard>,
    {
        let faults = FaultInjector::new(FaultPlan::off(), seeds, "sni-scan");
        Self::run_with_faults(
            registry, candidates, domains, cfg, seeds, &faults, run_shards,
        )
    }

    /// Run the scan with a caller-supplied shard runner under fault
    /// injection. Shards cover disjoint domain-id slices, each with its
    /// own [`SeedDomain::shard`] RNG stream; the footprint merge is a
    /// union of disjoint keys. Fates are keyed by `(address,
    /// stable_hash(domain name))` — the *name*, not the id, so faulted
    /// scans are byte-identical across interning-table layouts.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_faults<R>(
        registry: &TlsHostRegistry,
        candidates: &[Ipv4Addr],
        domains: &DomainTable,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
        faults: &FaultInjector,
        run_shards: R,
    ) -> SniScan
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> SniScanShard + Sync)) -> Vec<SniScanShard>,
    {
        let _span = itm_obs::span("sni_scan.run");
        let _campaign =
            itm_obs::trace::campaign(itm_obs::trace::Technique::SniScan, "SNI-directed TLS scan");
        let n_shards = Self::shard_count(domains);
        let parts = run_shards(n_shards, &|shard| {
            Self::scan_shard(
                registry, candidates, domains, cfg, seeds, faults, shard, n_shards,
            )
        });
        let mut footprint: BTreeMap<DomainId, Vec<Ipv4Addr>> = BTreeMap::new();
        let mut attempted = 0;
        let mut fault_stats = FaultStats::default();
        for part in parts {
            footprint.extend(part.footprint);
            attempted += part.attempted;
            fault_stats.merge(&part.stats);
        }
        itm_obs::counter!("probe.connects", "technique" => "sni_scan").add(attempted as u64);
        itm_obs::counter!("probe.bytes", "technique" => "sni_scan")
            .add(attempted as u64 * HANDSHAKE_BYTES);
        SniScan {
            footprint,
            attempted,
            fault_stats,
        }
    }

    /// Scan one shard's slice of the domain table against all candidates.
    #[allow(clippy::too_many_arguments)]
    fn scan_shard(
        registry: &TlsHostRegistry,
        candidates: &[Ipv4Addr],
        domains: &DomainTable,
        cfg: &ScanConfig,
        seeds: &SeedDomain,
        faults: &FaultInjector,
        shard: usize,
        n_shards: usize,
    ) -> SniScanShard {
        let (lo, hi) = shard_bounds(domains.len(), shard, n_shards);
        let mut rng = seeds.shard("sni-scan", shard as u64).rng("sweep");
        let mut part = SniScanShard {
            footprint: BTreeMap::new(),
            attempted: 0,
            stats: FaultStats::default(),
        };
        let faults_on = !faults.is_off();
        for raw in lo..hi {
            let id = DomainId(raw as u32);
            let domain = domains.name(id);
            let domain_key = stable_hash(domain);
            let mut hits = Vec::new();
            for &addr in candidates {
                part.attempted += 1;
                if faults_on {
                    let fate = faults.fate(addr.0 as u64, domain_key, 1);
                    part.stats.record(fate);
                    if !fate.succeeded() {
                        if itm_obs::trace::enabled() {
                            itm_obs::trace::emit(
                                itm_obs::trace::Technique::SniScan,
                                itm_obs::trace::EventKind::ProbeFailed,
                                itm_obs::trace::Subjects::none().addr(addr.0),
                                &format!("{domain}: handshake lost, retries exhausted"),
                            );
                        }
                        continue;
                    }
                } else {
                    part.stats.record(ProbeFate::Observed);
                }
                if let Some(cert) = registry.handshake(addr, Some(domain)) {
                    if cert.covers(domain) && rng.gen_bool(cfg.response_rate.clamp(0.0, 1.0)) {
                        hits.push(addr);
                    }
                }
            }
            hits.sort_unstable();
            if itm_obs::trace::enabled() {
                for &addr in &hits {
                    itm_obs::trace::emit(
                        itm_obs::trace::Technique::SniScan,
                        itm_obs::trace::EventKind::SniMatched,
                        itm_obs::trace::Subjects::none().addr(addr.0),
                        domain,
                    );
                }
            }
            part.footprint.insert(id, hits);
        }
        part
    }

    /// Addresses serving an interned domain.
    pub fn addresses_of_id(&self, id: DomainId) -> &[Ipv4Addr] {
        self.footprint.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Addresses serving a domain, resolved by name through the same
    /// table the scan ran against. Unknown names have empty footprints.
    pub fn addresses_of(&self, domains: &DomainTable, domain: &str) -> &[Ipv4Addr] {
        domains
            .id(domain)
            .map(|id| self.addresses_of_id(id))
            .unwrap_or(&[])
    }
}

/// One shard's partial scan output (disjoint domain-id slice).
#[derive(Debug, Clone)]
pub struct SniScanShard {
    footprint: BTreeMap<DomainId, Vec<Ipv4Addr>>,
    attempted: usize,
    stats: FaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_dns::FrontendDirectory;
    use itm_topology::{generate, TopologyConfig};
    use itm_traffic::{ServiceCatalog, ServiceCatalogConfig, ServiceOwner};

    struct Fixture {
        topo: Topology,
        catalog: ServiceCatalog,
        registry: TlsHostRegistry,
    }

    fn fixture() -> Fixture {
        let topo = generate(&TopologyConfig::small(), 67).unwrap();
        let catalog =
            ServiceCatalog::generate(&ServiceCatalogConfig::small(), &topo, &SeedDomain::new(67));
        let frontends = FrontendDirectory::build(&topo, &catalog);
        let registry = TlsHostRegistry::build(&topo, &catalog, &frontends);
        Fixture {
            topo,
            catalog,
            registry,
        }
    }

    #[test]
    fn full_sweep_finds_most_hypergiant_infra() {
        let f = fixture();
        let scan = TlsScan::run(
            &f.topo,
            &f.registry,
            &ScanConfig::default(),
            &SeedDomain::new(1),
        );
        assert!(scan.attempted > 0);
        assert!(!scan.observations.is_empty());
        // With response_rate 0.97 and covering offsets, we should see at
        // least 90% of registered TLS hosts.
        let total = f.registry.len();
        let frac = scan.observations.len() as f64 / total as f64;
        assert!(frac > 0.85, "saw {frac:.2} of hosts");
    }

    #[test]
    fn deterministic_scan() {
        let f = fixture();
        let a = TlsScan::run(
            &f.topo,
            &f.registry,
            &ScanConfig::default(),
            &SeedDomain::new(2),
        );
        let b = TlsScan::run(
            &f.topo,
            &f.registry,
            &ScanConfig::default(),
            &SeedDomain::new(2),
        );
        assert_eq!(a.observations.len(), b.observations.len());
        for (x, y) in a.observations.iter().zip(&b.observations) {
            assert_eq!(x.addr, y.addr);
        }
    }

    #[test]
    fn zero_response_rate_sees_nothing() {
        let f = fixture();
        let cfg = ScanConfig {
            response_rate: 0.0,
            ..Default::default()
        };
        let scan = TlsScan::run(&f.topo, &f.registry, &cfg, &SeedDomain::new(3));
        assert!(scan.observations.is_empty());
    }

    #[test]
    fn sni_scan_recovers_cloud_tenants() {
        let f = fixture();
        let scan = TlsScan::run(
            &f.topo,
            &f.registry,
            &ScanConfig::default(),
            &SeedDomain::new(4),
        );
        let candidates: Vec<Ipv4Addr> = scan.observations.iter().map(|o| o.addr).collect();
        let domains =
            itm_types::DomainTable::from_names(f.catalog.services.iter().map(|s| &s.domain));
        let sni = SniScan::run(
            &f.registry,
            &candidates,
            &domains,
            &ScanConfig::default(),
            &SeedDomain::new(4),
        );
        // Every cloud tenant should have a non-empty footprint.
        for s in &f.catalog.services {
            if matches!(s.owner, ServiceOwner::CloudTenant { .. }) {
                assert!(
                    !sni.addresses_of(&domains, &s.domain).is_empty(),
                    "{} footprint empty",
                    s.domain
                );
            }
        }
        assert!(sni.attempted >= candidates.len());
        assert!(sni.addresses_of(&domains, "unknown.example").is_empty());
    }
}
