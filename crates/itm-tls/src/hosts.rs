//! Ground-truth TLS behaviour of serving addresses.
//!
//! Built from the frontend directory: every endpoint address gets a host
//! profile describing how it answers a TLS handshake.
//!
//! * **Hypergiant infrastructure** (on-net PoPs *and* off-net caches):
//!   presents the hypergiant's infrastructure certificate — SAN covering
//!   all its properties, issued by its private CA — to any handshake,
//!   SNI or not. This uniformity is precisely why TLS scans can map
//!   hypergiant footprints including caches hiding inside eyeball
//!   networks \[25\].
//! * **Cloud front-ends**: multi-tenant; present a tenant's certificate
//!   only when the handshake carries that tenant's SNI, else a default
//!   cloud certificate. This is why plain scans miss cloud-hosted services
//!   and §3.2.2 proposes *SNI* scans.

use crate::certs::Certificate;
use itm_dns::FrontendDirectory;
use itm_topology::Topology;
use itm_traffic::{ServiceCatalog, ServiceOwner};
use itm_types::{Asn, Ipv4Addr, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How one serving address behaves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostProfile {
    /// Hypergiant on-net or off-net server.
    HypergiantInfra {
        /// The operating hypergiant.
        hg: Asn,
        /// `Some(host)` if this is an off-net cache inside `host`.
        offnet_host: Option<Asn>,
    },
    /// A cloud load-balancer fronting tenant services.
    CloudFrontend {
        /// The cloud AS.
        cloud: Asn,
        /// Tenants reachable at this address (SNI-selected).
        tenants: Vec<ServiceId>,
    },
}

/// All TLS-speaking addresses of the Internet, with their behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlsHostRegistry {
    hosts: BTreeMap<u32, HostProfile>,
    /// Cached per-hypergiant infra certificates.
    hg_certs: BTreeMap<Asn, Certificate>,
    /// Cached per-tenant certificates.
    tenant_certs: BTreeMap<ServiceId, Certificate>,
    /// Default cloud certs.
    cloud_certs: BTreeMap<Asn, Certificate>,
}

impl TlsHostRegistry {
    /// Build the registry from the frontend directory.
    pub fn build(
        topo: &Topology,
        catalog: &ServiceCatalog,
        frontends: &FrontendDirectory,
    ) -> TlsHostRegistry {
        let mut hosts: BTreeMap<u32, HostProfile> = BTreeMap::new();
        let mut hg_certs = BTreeMap::new();
        let mut tenant_certs = BTreeMap::new();
        let mut cloud_certs = BTreeMap::new();

        for s in &catalog.services {
            match s.owner {
                ServiceOwner::Hypergiant(hg) => {
                    // Infra cert: SAN accumulates every property of hg.
                    let cert = hg_certs.entry(hg).or_insert_with(|| Certificate {
                        subject: format!("*.hg{}.example", hg.raw()),
                        san: Vec::new(),
                        issuer: Certificate::hypergiant_issuer(hg.raw()),
                        serial: 0x1000_0000 + hg.raw() as u64,
                    });
                    cert.san.push(s.domain.clone());
                    for e in frontends.endpoints(s.id) {
                        hosts
                            .entry(e.addr.0)
                            .or_insert(HostProfile::HypergiantInfra {
                                hg,
                                offnet_host: e.offnet_host,
                            });
                    }
                    if let Some(vip) = frontends.vip(s.id) {
                        hosts.entry(vip.0).or_insert(HostProfile::HypergiantInfra {
                            hg,
                            offnet_host: None,
                        });
                    }
                }
                ServiceOwner::CloudTenant { cloud } => {
                    cloud_certs.entry(cloud).or_insert_with(|| Certificate {
                        subject: format!("default.cloud{}.example", cloud.raw()),
                        san: vec![format!("default.cloud{}.example", cloud.raw())],
                        issuer: Certificate::public_issuer(),
                        serial: 0x2000_0000 + cloud.raw() as u64,
                    });
                    tenant_certs.insert(
                        s.id,
                        Certificate {
                            subject: s.domain.clone(),
                            san: vec![s.domain.clone()],
                            issuer: Certificate::public_issuer(),
                            serial: 0x3000_0000 + s.id.raw() as u64,
                        },
                    );
                    for e in frontends.endpoints(s.id) {
                        match hosts.entry(e.addr.0).or_insert(HostProfile::CloudFrontend {
                            cloud,
                            tenants: Vec::new(),
                        }) {
                            HostProfile::CloudFrontend { tenants, .. } => {
                                if !tenants.contains(&s.id) {
                                    tenants.push(s.id);
                                }
                            }
                            // Address already claimed by hypergiant infra
                            // (shared hosting space edge case): leave it.
                            HostProfile::HypergiantInfra { .. } => {}
                        }
                    }
                    if let Some(vip) = frontends.vip(s.id) {
                        match hosts.entry(vip.0).or_insert(HostProfile::CloudFrontend {
                            cloud,
                            tenants: Vec::new(),
                        }) {
                            HostProfile::CloudFrontend { tenants, .. } => {
                                if !tenants.contains(&s.id) {
                                    tenants.push(s.id);
                                }
                            }
                            HostProfile::HypergiantInfra { .. } => {}
                        }
                    }
                }
            }
        }
        let _ = topo;
        TlsHostRegistry {
            hosts,
            hg_certs,
            tenant_certs,
            cloud_certs,
        }
    }

    /// Number of TLS-speaking addresses.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The profile at an address, if TLS answers there.
    pub fn profile(&self, addr: Ipv4Addr) -> Option<&HostProfile> {
        self.hosts.get(&addr.0)
    }

    /// Perform a handshake: what certificate does `addr` present for an
    /// optional SNI? `None` = nothing listens there.
    pub fn handshake(&self, addr: Ipv4Addr, sni: Option<&str>) -> Option<&Certificate> {
        match self.hosts.get(&addr.0)? {
            HostProfile::HypergiantInfra { hg, .. } => self.hg_certs.get(hg),
            HostProfile::CloudFrontend { cloud, tenants } => {
                if let Some(name) = sni {
                    for t in tenants {
                        let cert = self.tenant_certs.get(t)?;
                        if cert.covers(name) {
                            return Some(cert);
                        }
                    }
                }
                self.cloud_certs.get(cloud)
            }
        }
    }

    /// The hypergiant whose private CA issued `cert`, if any — the
    /// fingerprint-matching step of \[25\].
    pub fn issuer_hypergiant(&self, cert: &Certificate) -> Option<Asn> {
        self.hg_certs
            .iter()
            .find(|(_, c)| c.issuer == cert.issuer)
            .map(|(hg, _)| *hg)
    }

    /// All registered addresses (scan hit-list ground truth; scanners do
    /// not get this — they sweep the address plan).
    pub fn addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hosts.keys().map(|&a| Ipv4Addr(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_dns::FrontendDirectory;
    use itm_topology::{generate, TopologyConfig};
    use itm_traffic::ServiceCatalogConfig;
    use itm_types::SeedDomain;

    fn setup() -> (Topology, ServiceCatalog, FrontendDirectory, TlsHostRegistry) {
        let t = generate(&TopologyConfig::small(), 61).unwrap();
        let c = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &t, &SeedDomain::new(61));
        let f = FrontendDirectory::build(&t, &c);
        let reg = TlsHostRegistry::build(&t, &c, &f);
        (t, c, f, reg)
    }

    #[test]
    fn every_endpoint_speaks_tls() {
        let (_, c, f, reg) = setup();
        for s in &c.services {
            for e in f.endpoints(s.id) {
                assert!(reg.profile(e.addr).is_some(), "{} silent", e.addr);
            }
        }
    }

    #[test]
    fn hypergiant_cert_regardless_of_sni() {
        let (_, c, f, reg) = setup();
        let s = c
            .services
            .iter()
            .find(|s| matches!(s.owner, ServiceOwner::Hypergiant(_)))
            .unwrap();
        let e = f.endpoints(s.id)[0];
        let no_sni = reg.handshake(e.addr, None).unwrap();
        let with_sni = reg.handshake(e.addr, Some(&s.domain)).unwrap();
        assert_eq!(no_sni, with_sni);
        assert!(no_sni.covers(&s.domain));
        let ServiceOwner::Hypergiant(hg) = s.owner else {
            unreachable!()
        };
        assert_eq!(reg.issuer_hypergiant(no_sni), Some(hg));
    }

    #[test]
    fn cloud_requires_sni_for_tenant_cert() {
        let (_, c, f, reg) = setup();
        let Some(s) = c
            .services
            .iter()
            .find(|s| matches!(s.owner, ServiceOwner::CloudTenant { .. }))
        else {
            return; // tiny catalogues may lack cloud tenants
        };
        let e = f
            .endpoints(s.id)
            .iter()
            .find(|e| matches!(reg.profile(e.addr), Some(HostProfile::CloudFrontend { .. })))
            .copied();
        let Some(e) = e else { return };
        let default = reg.handshake(e.addr, None).unwrap();
        assert!(!default.covers(&s.domain), "tenant cert leaked without SNI");
        let tenant = reg.handshake(e.addr, Some(&s.domain)).unwrap();
        assert!(tenant.covers(&s.domain));
        assert!(reg.issuer_hypergiant(tenant).is_none());
    }

    #[test]
    fn silent_addresses_return_none() {
        let (_, _, _, reg) = setup();
        assert!(reg
            .handshake("203.0.113.1".parse().unwrap(), None)
            .is_none());
    }

    #[test]
    fn offnet_addresses_present_hypergiant_infra() {
        let (t, _, _, reg) = setup();
        let mut checked = 0;
        for d in t.offnets.iter() {
            let addr = t.prefixes.get(d.prefix).net.addr(10);
            match reg.profile(addr) {
                Some(HostProfile::HypergiantInfra { hg, offnet_host }) => {
                    assert_eq!(*hg, d.hypergiant);
                    assert_eq!(*offnet_host, Some(d.host));
                    checked += 1;
                }
                other => panic!("off-net {addr} has profile {other:?}"),
            }
        }
        assert!(checked > 0);
    }
}
