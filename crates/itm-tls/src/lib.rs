//! # itm-tls — certificates, Internet-wide scans, and off-net detection
//!
//! §3.2.2, approach 1: "TLS certificates validate the owner of a resource.
//! With the recent dramatic increase in web encryption, we used TLS scans
//! to identify the global serving infrastructure of large content
//! providers and CDNs" \[25\]. Approach 2 proposes SNI scans to find "which
//! CDN or cloud IP addresses have the services' TLS certificates".
//!
//! This crate provides:
//!
//! * [`certs`]: an X.509-lite certificate model — subject, SAN list,
//!   issuer, serial — enough structure for fingerprint matching.
//! * [`hosts`]: the ground-truth TLS behaviour of every serving address:
//!   hypergiant infrastructure (on-net and off-net) presents the
//!   hypergiant's infrastructure certificate regardless of SNI; cloud
//!   front-ends present tenant certificates only for the right SNI.
//! * [`scanner`]: the scanning engine — a full-address-plan TLS sweep and
//!   a domain-targeted SNI sweep, with a coverage knob (real scans miss
//!   hosts behind filters).
//! * [`offnet_detect`]: the \[25\]-style classifier that turns scan output
//!   into per-hypergiant off-net footprints (Figure 1b's dots).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod certs;
pub mod hosts;
pub mod offnet_detect;
pub mod scanner;

pub use certs::Certificate;
pub use hosts::{HostProfile, TlsHostRegistry};
pub use offnet_detect::{detect_offnets, OffnetFinding};
pub use scanner::{ScanConfig, ScanObservation, SniScan, TlsScan};
