//! Off-net detection from scan output — the \[25\] classifier.
//!
//! "Seven years in the life of hypergiants' off-nets" identifies off-net
//! caches by finding addresses that present a hypergiant's certificates
//! while sitting inside *another* organization's address space. The same
//! two-stage logic runs here:
//!
//! 1. **Ownership match**: an observation whose certificate was issued by
//!    a hypergiant's private CA is hypergiant infrastructure.
//! 2. **Location split**: if the address's routed prefix belongs to the
//!    hypergiant itself it is on-net; if it belongs to someone else, it is
//!    an off-net inside that AS.

use crate::scanner::TlsScan;
use crate::TlsHostRegistry;
use itm_topology::Topology;
use itm_types::{Asn, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One detected off-net deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffnetFinding {
    /// The hypergiant operating the server.
    pub hypergiant: Asn,
    /// The AS hosting it.
    pub host: Asn,
    /// The observed server address.
    pub addr: Ipv4Addr,
    /// City of the hosting prefix (from the public-ish geolocation of the
    /// prefix; the substrate's prefix table stands in for that).
    pub city: u32,
}

/// Classify a TLS sweep into on-net and off-net hypergiant infrastructure.
///
/// Returns `(onnet, offnet)` findings. The scan itself carries no
/// ownership labels — classification uses only the certificate issuer and
/// the routed-prefix origin, both of which real campaigns have.
pub fn detect_offnets(
    topo: &Topology,
    registry: &TlsHostRegistry,
    scan: &TlsScan,
) -> (Vec<OffnetFinding>, Vec<OffnetFinding>) {
    let mut onnet = Vec::new();
    let mut offnet = Vec::new();
    for obs in &scan.observations {
        let Some(hg) = registry.issuer_hypergiant(&obs.cert) else {
            continue; // public-CA cert: not hypergiant infrastructure
        };
        let Some(rec) = topo.prefixes.lookup(obs.addr) else {
            continue; // unrouted responder (cannot happen in-substrate)
        };
        let finding = OffnetFinding {
            hypergiant: hg,
            host: rec.owner,
            addr: obs.addr,
            city: rec.city,
        };
        if rec.owner == hg {
            onnet.push(finding);
        } else {
            if itm_obs::trace::enabled() {
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::TlsScan,
                    itm_obs::trace::EventKind::OffnetDetected,
                    itm_obs::trace::Subjects::none()
                        .asn(rec.owner.raw())
                        .addr(obs.addr.0)
                        .prefix(rec.id.raw()),
                    &format!("hypergiant {hg}"),
                );
            }
            offnet.push(finding);
        }
    }
    (onnet, offnet)
}

/// Per-hypergiant count of distinct host ASes with detected off-nets —
/// the headline number of \[25\] ("caches in thousands of networks").
pub fn offnet_host_counts(findings: &[OffnetFinding]) -> BTreeMap<Asn, usize> {
    let mut hosts: BTreeMap<Asn, std::collections::BTreeSet<Asn>> = BTreeMap::new();
    for f in findings {
        hosts.entry(f.hypergiant).or_default().insert(f.host);
    }
    hosts.into_iter().map(|(hg, set)| (hg, set.len())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{ScanConfig, TlsScan};
    use itm_dns::FrontendDirectory;
    use itm_topology::{generate, TopologyConfig};
    use itm_traffic::{ServiceCatalog, ServiceCatalogConfig};
    use itm_types::SeedDomain;

    fn run() -> (Topology, Vec<OffnetFinding>, Vec<OffnetFinding>) {
        let topo = generate(&TopologyConfig::small(), 71).unwrap();
        let catalog =
            ServiceCatalog::generate(&ServiceCatalogConfig::small(), &topo, &SeedDomain::new(71));
        let frontends = FrontendDirectory::build(&topo, &catalog);
        let registry = TlsHostRegistry::build(&topo, &catalog, &frontends);
        let scan = TlsScan::run(
            &topo,
            &registry,
            &ScanConfig {
                response_rate: 1.0,
                ..Default::default()
            },
            &SeedDomain::new(71),
        );
        let (on, off) = detect_offnets(&topo, &registry, &scan);
        (topo, on, off)
    }

    #[test]
    fn detections_match_ground_truth() {
        let (topo, _, off) = run();
        // Every off-net finding corresponds to a real deployment.
        for f in &off {
            assert!(
                topo.offnets.find(f.hypergiant, f.host).is_some(),
                "phantom off-net {f:?}"
            );
        }
        // And detection covers the deployments of hypergiants that appear
        // in the scan (response_rate = 1, so all servers answered).
        let detected: std::collections::HashSet<(Asn, Asn)> =
            off.iter().map(|f| (f.hypergiant, f.host)).collect();
        let mut missed = 0;
        let mut total = 0;
        for d in topo.offnets.iter() {
            // Only deployments whose hypergiant actually serves catalogue
            // services have TLS hosts.
            if detected.iter().any(|(hg, _)| *hg == d.hypergiant) {
                total += 1;
                if !detected.contains(&(d.hypergiant, d.host)) {
                    missed += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            (missed as f64) < total as f64 * 0.05,
            "missed {missed}/{total}"
        );
    }

    #[test]
    fn onnet_findings_are_in_hypergiant_space() {
        let (topo, on, _) = run();
        assert!(!on.is_empty());
        for f in &on {
            assert_eq!(f.host, f.hypergiant);
            let rec = topo.prefixes.lookup(f.addr).unwrap();
            assert_eq!(rec.owner, f.hypergiant);
        }
    }

    #[test]
    fn host_counts_aggregate() {
        let (_, _, off) = run();
        let counts = offnet_host_counts(&off);
        assert!(!counts.is_empty());
        let sum: usize = counts.values().sum();
        let distinct: std::collections::HashSet<(Asn, Asn)> =
            off.iter().map(|f| (f.hypergiant, f.host)).collect();
        assert_eq!(sum, distinct.len());
    }
}
