//! Criterion benchmarks for the computational kernels every experiment
//! leans on: topology generation, BGP route computation, cache probing,
//! redirection selection, and traffic-matrix queries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itm_measure::{Substrate, SubstrateConfig};
use itm_routing::{GraphView, RoutingTree};
use itm_topology::{generate, TopologyConfig};
use itm_types::{Asn, SimTime};

// Install the tracking wrapper so the obs/ group can price its overhead;
// tracking starts disabled, so every other benchmark sees the system
// allocator plus one relaxed load.
#[global_allocator]
static ALLOC: itm_obs::alloc::TrackingAlloc = itm_obs::alloc::TrackingAlloc::new();

fn bench_topology_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    g.sample_size(10);
    g.bench_function("generate_small", |b| {
        b.iter(|| generate(&TopologyConfig::small(), 42).unwrap())
    });
    g.bench_function("generate_default", |b| {
        b.iter(|| generate(&TopologyConfig::default(), 42).unwrap())
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::default(), 42).unwrap();
    let view = GraphView::full(&topo);
    let hg = topo.hypergiants()[0];
    let mut g = c.benchmark_group("routing");
    g.bench_function("tree_default_topology", |b| {
        b.iter(|| RoutingTree::compute(&view, hg))
    });
    let tree = RoutingTree::compute(&view, hg);
    g.bench_function("path_extraction_1k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..1000u32 {
                if let Some(p) = tree.path(Asn(i % topo.n_ases() as u32)) {
                    total += p.len();
                }
            }
            total
        })
    });
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.bench_function("build_small", |b| {
        b.iter(|| Substrate::build(SubstrateConfig::small(), 42).unwrap())
    });
    g.finish();
}

fn bench_dns_probing(c: &mut Criterion) {
    let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
    let resolver = s.open_resolver().expect("open resolver");
    let nets: Vec<_> = s.topo.prefixes.iter().map(|r| r.net).collect();
    let mut g = c.benchmark_group("dns");
    g.bench_function("cache_probe_1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let mut hits = 0;
            for _ in 0..1000 {
                let net = nets[i % nets.len()];
                i += 1;
                if matches!(
                    resolver.probe(net, "svc0.example", SimTime(3600)),
                    itm_dns::ProbeResult::Hit(_)
                ) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.bench_function("frontend_select_1k", |b| {
        let svc = s.catalog.services[0].id;
        b.iter_batched(
            || (),
            |_| {
                let mut acc = 0u32;
                for i in 0..1000usize {
                    let a = &s.topo.ases[i % s.topo.n_ases()];
                    let e = s.frontends.select(&s.topo, svc, a.asn, a.cities[0]);
                    acc = acc.wrapping_add(e.addr.0);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Instrumentation overhead on the hottest instrumented kernel: the
/// open-resolver cache lookup (`dns.cache.*` counters fire per probe).
/// The two functions run the identical workload; the only difference is
/// the global registry's enabled flag. Budget: <2% delta.
fn bench_obs_overhead(c: &mut Criterion) {
    let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
    let resolver = s.open_resolver().expect("open resolver");
    let nets: Vec<_> = s.topo.prefixes.iter().map(|r| r.net).collect();
    let probe_1k = |start: &mut usize| {
        let mut hits = 0usize;
        for _ in 0..1000 {
            let net = nets[*start % nets.len()];
            *start += 1;
            if matches!(
                resolver.probe(net, "svc0.example", SimTime(3600)),
                itm_dns::ProbeResult::Hit(_)
            ) {
                hits += 1;
            }
        }
        hits
    };
    let mut g = c.benchmark_group("obs");
    g.bench_function("cache_lookup_1k_metrics_off", |b| {
        itm_obs::set_enabled(false);
        let mut i = 0usize;
        b.iter(|| probe_1k(&mut i))
    });
    g.bench_function("cache_lookup_1k_metrics_on", |b| {
        itm_obs::set_enabled(true);
        itm_obs::reset();
        let mut i = 0usize;
        b.iter(|| probe_1k(&mut i))
    });
    itm_obs::set_enabled(false);
    // Same workload against the trace ring: disabled must cost one
    // relaxed load per probe; enabled pays the sharded ring append
    // (steady-state: the ring is full and evicting).
    g.bench_function("cache_lookup_1k_trace_off", |b| {
        itm_obs::trace::set_enabled(false);
        let mut i = 0usize;
        b.iter(|| probe_1k(&mut i))
    });
    g.bench_function("cache_lookup_1k_trace_on", |b| {
        itm_obs::trace::set_seed(42);
        itm_obs::trace::reset();
        itm_obs::trace::set_enabled(true);
        let mut i = 0usize;
        b.iter(|| probe_1k(&mut i))
    });
    itm_obs::trace::set_enabled(false);
    itm_obs::trace::reset();
    // Same workload against the tracking allocator (installed above as
    // the global allocator): disabled is one relaxed load per heap call;
    // enabled adds the atomic byte/count accounting on every allocation
    // the probes make. Budget, like the registry's: <2% delta.
    g.bench_function("cache_lookup_1k_alloc_off", |b| {
        itm_obs::alloc::set_enabled(false);
        let mut i = 0usize;
        b.iter(|| probe_1k(&mut i))
    });
    g.bench_function("cache_lookup_1k_alloc_on", |b| {
        itm_obs::alloc::set_enabled(true);
        itm_obs::alloc::reset();
        let mut i = 0usize;
        b.iter(|| probe_1k(&mut i))
    });
    itm_obs::alloc::set_enabled(false);
    g.finish();
}

fn bench_traffic(c: &mut Criterion) {
    let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
    let prefixes: Vec<_> = s.users.user_prefixes(&s.topo).collect();
    let mut g = c.benchmark_group("traffic");
    g.bench_function("demand_cells_10k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000usize {
                let p = prefixes[i % prefixes.len()];
                let svc = s.catalog.services[i % s.catalog.len()].id;
                acc += s
                    .traffic
                    .demand(&s.topo, &s.users, &s.catalog, p, svc)
                    .raw();
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_topology_generation,
    bench_routing,
    bench_substrate,
    bench_dns_probing,
    bench_obs_overhead,
    bench_traffic
);
criterion_main!(benches);
