//! Criterion benchmarks, one group per experiment family: how long does
//! regenerating each paper artifact take on the small substrate?

use criterion::{criterion_group, criterion_main, Criterion};
use itm_bench::experiments;
use itm_core::{MapConfig, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};

fn substrate() -> Substrate {
    Substrate::build(SubstrateConfig::small(), 42).unwrap()
}

fn bench_map_pipeline(c: &mut Criterion) {
    let s = substrate();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("traffic_map_build", |b| {
        b.iter(|| TrafficMap::build(&s, &MapConfig::default()).expect("map build"))
    });
    g.finish();
}

fn bench_table_figures(c: &mut Criterion) {
    let s = substrate();
    let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| experiments::table1(&s, &map)));
    g.bench_function("fig1a", |b| b.iter(|| experiments::fig1a(&s, &map)));
    g.bench_function("fig1b", |b| b.iter(|| experiments::fig1b(&s, &map)));
    g.bench_function("fig2", |b| b.iter(|| experiments::fig2(&s, &map)));
    g.bench_function("coverage", |b| {
        b.iter(|| experiments::coverage_claims(&s, &map))
    });
    g.bench_function("ecs", |b| b.iter(|| experiments::ecs(&s, &map)));
    g.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let s = substrate();
    let mut g = c.benchmark_group("analyses");
    g.sample_size(10);
    g.bench_function("pathlen", |b| b.iter(|| experiments::pathlen(&s)));
    g.bench_function("anycast", |b| b.iter(|| experiments::anycast(&s)));
    g.bench_function("pathpred", |b| b.iter(|| experiments::pathpred(&s)));
    g.bench_function("recommend", |b| b.iter(|| experiments::recommend(&s)));
    g.bench_function("ipid", |b| b.iter(|| experiments::ipid(&s)));
    g.bench_function("visibility", |b| b.iter(|| experiments::visibility(&s)));
    g.bench_function("consolidation", |b| {
        b.iter(|| experiments::consolidation(&s))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_map_pipeline,
    bench_table_figures,
    bench_analyses
);
criterion_main!(benches);
