//! Parallel map-build scaling: the same `TrafficMap::build_with` at 1, 2,
//! and 8 worker threads. Output is byte-identical at every point (pinned
//! by `tests/parallel_determinism.rs`); this group measures only the
//! wall-clock side of the sharded executor.

use criterion::{criterion_group, criterion_main, Criterion};
use itm_core::{MapConfig, ParallelExecutor, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};

fn bench_parallel_map_build(c: &mut Criterion) {
    let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
    let cfg = MapConfig::default();
    let mut g = c.benchmark_group("par");
    g.sample_size(10);
    for threads in [1usize, 2, 8] {
        let exec = ParallelExecutor::new(threads);
        g.bench_function(&format!("map_build_{threads}"), |b| {
            b.iter(|| TrafficMap::build_with(&s, &cfg, &exec).expect("map build"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_map_build);
criterion_main!(benches);
