//! End-to-end contract of `repro --audit`: the quality report is
//! byte-identical at any `--threads`, composes with `--faults`, and —
//! crucially — leaves every other artifact byte-identical whether the
//! flag is on or off.

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audit-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn run_map(out_dir: &std::path::Path, extra: &[&str]) {
    let mut args = vec![
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "42",
        "--out",
        out_dir.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = repro(&args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn audit_report_is_byte_identical_across_thread_counts() {
    let d1 = scratch().join("threads-1");
    let d8 = scratch().join("threads-8");
    run_map(&d1, &["--audit", "--threads", "1"]);
    run_map(&d8, &["--audit", "--threads", "8"]);
    let a = std::fs::read(d1.join("map_quality.json")).unwrap();
    let b = std::fs::read(d8.join("map_quality.json")).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "map_quality.json differs across thread counts");

    // The report is schema-versioned and carries every plane.
    let v: serde_json::Value =
        serde_json::from_str(&String::from_utf8(a.clone()).unwrap()).unwrap();
    assert_eq!(v.get("schema_version").and_then(|s| s.as_u64()), Some(1));
    let techniques = match v.get("techniques") {
        Some(serde_json::Value::Object(m)) => m,
        other => panic!("techniques is not an object: {other:?}"),
    };
    for name in [
        "ecs",
        "anycast",
        "tls_nearest",
        "catalog_prior",
        "fused",
        "cache_probe",
        "root_crawl",
        "cloud_probe",
    ] {
        let t = techniques
            .get(name)
            .unwrap_or_else(|| panic!("no technique {name}"));
        let f = |k: &str| t.get(k).and_then(|x| x.as_u64()).unwrap_or(u64::MAX);
        assert_eq!(
            f("asserted") + f("contradicted") + f("silent"),
            f("cells"),
            "accounting broken for {name}"
        );
    }
    // A clean audit carries no faults section.
    assert!(v.get("faults").is_none());
}

#[test]
fn audit_leaves_other_artifacts_byte_identical() {
    let plain = scratch().join("plain");
    let audited = scratch().join("audited");
    run_map(&plain, &[]);
    run_map(&audited, &["--audit"]);
    assert!(!plain.join("map_quality.json").exists());
    assert!(audited.join("map_quality.json").exists());
    // summary.txt embeds wall-clock timing, so only the deterministic
    // artifacts are compared byte-for-byte.
    for artifact in ["map_summary.json", "map.csv"] {
        let a = std::fs::read(plain.join(artifact)).unwrap();
        let b = std::fs::read(audited.join(artifact)).unwrap();
        assert_eq!(a, b, "--audit changed {artifact}");
    }
}

#[test]
fn audit_composes_with_faults_and_custom_out() {
    let dir = scratch().join("faulted");
    let custom = scratch().join("custom-quality.json");
    let spec = format!("out={}", custom.to_str().unwrap());
    run_map(&dir, &["--audit", &spec, "--faults", "light"]);
    assert!(!dir.join("map_quality.json").exists(), "out= was ignored");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&custom).unwrap()).unwrap();
    // The fault ledger rides along, same shape as in the map summary.
    let faults = match v.get("faults") {
        Some(serde_json::Value::Object(m)) => m,
        other => panic!("faulted audit lacks faults section: {other:?}"),
    };
    for name in ["cache_probe", "ecs_mapping", "cloud_probe"] {
        assert!(faults.get(name).is_some(), "no fault row for {name}");
    }
    // The scored rates stay valid under faults.
    let recall = v
        .get("techniques")
        .and_then(|t| t.get("ecs"))
        .and_then(|t| t.get("recall"))
        .and_then(|r| r.as_f64())
        .expect("ecs recall");
    assert!((0.0..=1.0).contains(&recall), "recall {recall}");
}
