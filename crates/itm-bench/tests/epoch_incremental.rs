//! Differential enforcement of the continuous-map loop (DESIGN.md §15).
//!
//! The epoch engine's whole contract is one sentence: an incremental
//! rebuild of exactly the dirty campaigns is *byte-identical* to a
//! from-scratch build of the mutated substrate. These tests enforce that
//! sentence literally, for every epoch of a multi-epoch trajectory,
//! under both churn profiles, at one worker thread and at eight.
//!
//! The from-scratch reference is built by *replaying* the trajectory on a
//! fresh substrate — `apply_epoch` is a pure function of
//! `(seeds, plan, epoch)`, so applying epochs `1..=k` to a newborn
//! substrate reproduces the same world as having lived through them. That
//! replay is exactly what the CI `epoch` job does out-of-process with
//! `cmp`; this harness is the in-process, always-on version.

use itm_core::{
    apply_epoch, build_incremental, map_fingerprint, snapshot_bytes, MapConfig, ParallelExecutor,
    TrafficMap,
};
use itm_measure::{Substrate, SubstrateConfig};
use itm_types::EpochPlan;

const SEED: u64 = 42;
const EPOCHS: u32 = 3;

/// Run `EPOCHS` epochs under `plan`, asserting at every epoch that the
/// incremental map matches a from-scratch build of the replayed world,
/// both as snapshot bytes and as the full (wider-than-snapshot) map
/// fingerprint. Returns the final epoch's snapshot bytes so callers can
/// compare trajectories across thread counts.
fn differential(plan: &EpochPlan, threads: usize) -> Vec<u8> {
    let exec = ParallelExecutor::new(threads);
    let cfg = MapConfig::default();
    let mut s = Substrate::build(SubstrateConfig::small(), SEED).expect("substrate builds");
    let mut map = TrafficMap::build_with(&s, &cfg, &exec).expect("initial full build");
    let mut last = snapshot_bytes(&s, &map);
    for epoch in 1..=EPOCHS {
        let (actions, dirty) = apply_epoch(&mut s, plan, epoch);
        assert!(
            !actions.is_empty(),
            "profile plans must mutate something each epoch"
        );
        map = build_incremental(&s, &cfg, &exec, map, &dirty).expect("incremental build");

        // The reference world: replay the whole trajectory from scratch.
        let mut fresh = Substrate::build(SubstrateConfig::small(), SEED).expect("substrate builds");
        for e in 1..=epoch {
            apply_epoch(&mut fresh, plan, e);
        }
        let full = TrafficMap::build_with(&fresh, &cfg, &exec).expect("reference full build");

        last = snapshot_bytes(&s, &map);
        assert_eq!(
            last,
            snapshot_bytes(&fresh, &full),
            "epoch {epoch} ({threads} threads): incremental snapshot diverged"
        );
        assert_eq!(
            map_fingerprint(&s, &map),
            map_fingerprint(&fresh, &full),
            "epoch {epoch} ({threads} threads): non-snapshot map state diverged"
        );
    }
    last
}

#[test]
fn light_plan_incremental_matches_full_rebuild_single_thread() {
    differential(&EpochPlan::light(), 1);
}

#[test]
fn heavy_plan_incremental_matches_full_rebuild_single_thread() {
    differential(&EpochPlan::heavy(), 1);
}

#[test]
fn trajectories_are_thread_count_invariant() {
    // Eight-thread runs must not only match their own full rebuilds (the
    // assertions inside `differential`) but also land on the same final
    // bytes as the single-thread trajectory.
    assert_eq!(
        differential(&EpochPlan::light(), 1),
        differential(&EpochPlan::light(), 8),
        "light trajectory differs across thread counts"
    );
    assert_eq!(
        differential(&EpochPlan::heavy(), 1),
        differential(&EpochPlan::heavy(), 8),
        "heavy trajectory differs across thread counts"
    );
}

#[test]
fn off_plan_trajectory_is_static() {
    let exec = ParallelExecutor::new(2);
    let cfg = MapConfig::default();
    let mut s = Substrate::build(SubstrateConfig::small(), SEED).expect("substrate builds");
    let map = TrafficMap::build_with(&s, &cfg, &exec).expect("full build");
    let before = snapshot_bytes(&s, &map);
    let (actions, dirty) = apply_epoch(&mut s, &EpochPlan::off(), 1);
    assert!(actions.is_empty());
    assert!(dirty.is_clean());
    let map = build_incremental(&s, &cfg, &exec, map, &dirty).expect("clean rebuild");
    assert_eq!(before, snapshot_bytes(&s, &map), "off plan changed the map");
}
