//! CLI contract tests for the `repro` binary: bad invocations must exit
//! with status 2 *before* any expensive work, for both `--out` and
//! `--trace` (the two output-path preflights share one contract).
//!
//! Unwritable paths are made via ENOTDIR — a path whose parent is a
//! regular file — because permission bits don't stop a root test runner.

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A path that cannot be created: its parent is a regular file.
fn unwritable(name: &str) -> String {
    let blocker = scratch().join(format!("blocker-{name}"));
    std::fs::write(&blocker, b"not a directory").unwrap();
    blocker.join(name).to_string_lossy().into_owned()
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unwritable_out_dir_exits_2() {
    let out = repro(&["--exp", "map", "--out", &unwritable("outdir")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot create output dir"), "{err}");
}

#[test]
fn unwritable_trace_file_exits_2() {
    let out_dir = scratch().join("trace-ok-out");
    let out = repro(&[
        "--exp",
        "map",
        "--out",
        out_dir.to_str().unwrap(),
        "--trace",
        &unwritable("trace.json"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    // The preflight fires before the substrate build starts.
    assert!(err.contains("is not writable"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn bad_threads_exits_2() {
    for bad in ["0", "eight"] {
        let out = repro(&["--threads", bad]);
        assert_eq!(out.status.code(), Some(2), "--threads {bad}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--threads expects a positive integer"),
            "{err}"
        );
    }
}

#[test]
fn unknown_experiment_exits_2() {
    let out = repro(&["--exp", "definitely-not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_fault_profile_exits_2_with_usage() {
    let out = repro(&["--exp", "map", "--faults", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("neither a profile"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
    // The rejection fires before any expensive work.
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn unreadable_fault_file_exits_2_with_usage() {
    let missing = scratch().join("no-such-plan.json");
    let out = repro(&["--faults", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("nor a readable plan file"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn malformed_fault_file_exits_2() {
    let dir = scratch();
    let garbled = dir.join("garbled-plan.json");
    std::fs::write(&garbled, b"{ this is not json").unwrap();
    let out = repro(&["--faults", garbled.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse plan file"), "{err}");

    // Parseable but invalid: rates above 1 fail validation.
    let invalid = dir.join("invalid-plan.json");
    std::fs::write(&invalid, br#"{"loss": 2.0}"#).unwrap();
    let out = repro(&["--faults", invalid.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid plan"), "{err}");
}

#[test]
fn named_profiles_and_plan_files_are_accepted() {
    let out_dir = scratch().join("faults-light-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "11",
        "--faults",
        "light",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let summary = std::fs::read_to_string(out_dir.join("map_summary.json")).unwrap();
    assert!(
        summary.contains("\"faults\""),
        "faulted summary lacks accounting: {summary}"
    );

    // A custom plan file works end to end; `{}` is the valid clean plan.
    let plan = scratch().join("clean-plan.json");
    std::fs::write(&plan, b"{}").unwrap();
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "11",
        "--faults",
        plan.to_str().unwrap(),
        "--out",
        scratch().join("faults-file-out").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn faults_default_is_off_and_byte_identical() {
    let plain_dir = scratch().join("faults-default-out");
    let off_dir = scratch().join("faults-off-out");
    let base = ["--exp", "map", "--size", "small", "--seed", "23", "--out"];
    let mut plain_args: Vec<&str> = base.to_vec();
    let plain_path = plain_dir.to_str().unwrap().to_owned();
    plain_args.push(&plain_path);
    let out = repro(&plain_args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let off_path = off_dir.to_str().unwrap().to_owned();
    let mut off_args: Vec<&str> = base.to_vec();
    off_args.push(&off_path);
    off_args.extend(["--faults", "off"]);
    let out = repro(&off_args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let plain = std::fs::read(plain_dir.join("map_summary.json")).unwrap();
    let off = std::fs::read(off_dir.join("map_summary.json")).unwrap();
    assert_eq!(plain, off, "--faults off is not the no-flag pipeline");
    assert!(!String::from_utf8_lossy(&off).contains("\"faults\""));
}
