//! CLI contract tests for the `repro` binary: bad invocations must exit
//! with status 2 *before* any expensive work, for both `--out` and
//! `--trace` (the two output-path preflights share one contract).
//!
//! Unwritable paths are made via ENOTDIR — a path whose parent is a
//! regular file — because permission bits don't stop a root test runner.

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A path that cannot be created: its parent is a regular file.
fn unwritable(name: &str) -> String {
    let blocker = scratch().join(format!("blocker-{name}"));
    std::fs::write(&blocker, b"not a directory").unwrap();
    blocker.join(name).to_string_lossy().into_owned()
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unwritable_out_dir_exits_2() {
    let out = repro(&["--exp", "map", "--out", &unwritable("outdir")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot create output dir"), "{err}");
}

#[test]
fn unwritable_trace_file_exits_2() {
    let out_dir = scratch().join("trace-ok-out");
    let out = repro(&[
        "--exp",
        "map",
        "--out",
        out_dir.to_str().unwrap(),
        "--trace",
        &unwritable("trace.json"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    // The preflight fires before the substrate build starts.
    assert!(err.contains("is not writable"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn bad_threads_exits_2() {
    for bad in ["0", "eight"] {
        let out = repro(&["--threads", bad]);
        assert_eq!(out.status.code(), Some(2), "--threads {bad}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--threads expects a positive integer"),
            "{err}"
        );
    }
}

#[test]
fn unknown_experiment_exits_2() {
    let out = repro(&["--exp", "definitely-not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
