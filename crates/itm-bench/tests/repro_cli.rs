//! CLI contract tests for the `repro` binary: bad invocations must exit
//! with status 2 *before* any expensive work, for both `--out` and
//! `--trace` (the two output-path preflights share one contract).
//!
//! Unwritable paths are made via ENOTDIR — a path whose parent is a
//! regular file — because permission bits don't stop a root test runner.

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A path that cannot be created: its parent is a regular file.
fn unwritable(name: &str) -> String {
    let blocker = scratch().join(format!("blocker-{name}"));
    std::fs::write(&blocker, b"not a directory").unwrap();
    blocker.join(name).to_string_lossy().into_owned()
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unwritable_out_dir_exits_2() {
    let out = repro(&["--exp", "map", "--out", &unwritable("outdir")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot create output dir"), "{err}");
}

#[test]
fn unwritable_trace_file_exits_2() {
    let out_dir = scratch().join("trace-ok-out");
    let out = repro(&[
        "--exp",
        "map",
        "--out",
        out_dir.to_str().unwrap(),
        "--trace",
        &unwritable("trace.json"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    // The preflight fires before the substrate build starts.
    assert!(err.contains("is not writable"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn unwritable_audit_file_exits_2() {
    let out_dir = scratch().join("audit-ok-out");
    let target = format!("out={}", unwritable("quality.json"));
    let out = repro(&[
        "--exp",
        "map",
        "--out",
        out_dir.to_str().unwrap(),
        "--audit",
        &target,
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    // The preflight fires before the substrate build starts.
    assert!(err.contains("is not writable"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn unknown_audit_sub_option_exits_2() {
    for bad in ["frobnicate=1", "out=", "quality.json"] {
        let out = repro(&["--exp", "map", "--audit", bad]);
        assert_eq!(out.status.code(), Some(2), "--audit {bad}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown sub-option"), "{err}");
        assert!(err.contains("usage: repro"), "{err}");
        assert!(!err.contains("building substrate"), "{err}");
    }
}

#[test]
fn audit_with_non_map_experiment_exits_2() {
    let out = repro(&["--exp", "pathlen", "--audit"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("map-building experiment"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn bad_threads_exits_2() {
    for bad in ["0", "eight"] {
        let out = repro(&["--threads", bad]);
        assert_eq!(out.status.code(), Some(2), "--threads {bad}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--threads expects a positive integer"),
            "{err}"
        );
    }
}

#[test]
fn unknown_experiment_exits_2() {
    let out = repro(&["--exp", "definitely-not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_fault_profile_exits_2_with_usage() {
    let out = repro(&["--exp", "map", "--faults", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("neither a profile"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
    // The rejection fires before any expensive work.
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn unreadable_fault_file_exits_2_with_usage() {
    let missing = scratch().join("no-such-plan.json");
    let out = repro(&["--faults", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("nor a readable plan file"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn malformed_fault_file_exits_2() {
    let dir = scratch();
    let garbled = dir.join("garbled-plan.json");
    std::fs::write(&garbled, b"{ this is not json").unwrap();
    let out = repro(&["--faults", garbled.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse plan file"), "{err}");

    // Parseable but invalid: rates above 1 fail validation.
    let invalid = dir.join("invalid-plan.json");
    std::fs::write(&invalid, br#"{"loss": 2.0}"#).unwrap();
    let out = repro(&["--faults", invalid.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid plan"), "{err}");
}

#[test]
fn named_profiles_and_plan_files_are_accepted() {
    let out_dir = scratch().join("faults-light-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "11",
        "--faults",
        "light",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let summary = std::fs::read_to_string(out_dir.join("map_summary.json")).unwrap();
    assert!(
        summary.contains("\"faults\""),
        "faulted summary lacks accounting: {summary}"
    );

    // A custom plan file works end to end; `{}` is the valid clean plan.
    let plan = scratch().join("clean-plan.json");
    std::fs::write(&plan, b"{}").unwrap();
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "11",
        "--faults",
        plan.to_str().unwrap(),
        "--out",
        scratch().join("faults-file-out").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn faults_default_is_off_and_byte_identical() {
    let plain_dir = scratch().join("faults-default-out");
    let off_dir = scratch().join("faults-off-out");
    let base = ["--exp", "map", "--size", "small", "--seed", "23", "--out"];
    let mut plain_args: Vec<&str> = base.to_vec();
    let plain_path = plain_dir.to_str().unwrap().to_owned();
    plain_args.push(&plain_path);
    let out = repro(&plain_args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let off_path = off_dir.to_str().unwrap().to_owned();
    let mut off_args: Vec<&str> = base.to_vec();
    off_args.push(&off_path);
    off_args.extend(["--faults", "off"]);
    let out = repro(&off_args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let plain = std::fs::read(plain_dir.join("map_summary.json")).unwrap();
    let off = std::fs::read(off_dir.join("map_summary.json")).unwrap();
    assert_eq!(plain, off, "--faults off is not the no-flag pipeline");
    assert!(!String::from_utf8_lossy(&off).contains("\"faults\""));
}

#[test]
fn metrics_run_surfaces_fault_accounting() {
    let out_dir = scratch().join("metrics-faults-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "7",
        "--metrics",
        "--faults",
        "light",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(out_dir.join("metrics.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();

    // The per-technique fault ledger reaches metrics.json, not only the
    // map summary, and its arithmetic holds: issued = observed +
    // degraded + lost for every technique.
    let faults = match v.get("faults") {
        Some(serde_json::Value::Object(m)) => m,
        other => panic!("metrics.json lacks the faults section: {other:?}"),
    };
    assert!(!faults.is_empty());
    for name in ["cache_probe", "root_crawl", "ecs_mapping"] {
        assert!(
            faults.get(name).is_some(),
            "no fault row for {name}: {text}"
        );
    }
    for (technique, st) in faults.iter() {
        let field = |k: &str| {
            st.get(k)
                .and_then(|x| x.as_u64())
                .unwrap_or_else(|| panic!("faults.{technique}.{k} missing"))
        };
        assert_eq!(
            field("issued"),
            field("observed") + field("degraded") + field("lost"),
            "fault ledger does not balance for {technique}"
        );
    }

    // --metrics also turns on allocation profiling, so the resource
    // section rides along.
    let resources = v.get("resources").expect("metrics.json lacks resources");
    assert!(
        resources
            .get("tracked")
            .and_then(|t| t.get("total_bytes"))
            .and_then(|b| b.as_u64())
            .unwrap_or(0)
            > 0,
        "no tracked allocations: {text}"
    );

    // A clean metrics run carries neither key-with-null nor empty object:
    // the faults key is simply absent.
    let clean_dir = scratch().join("metrics-clean-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "7",
        "--metrics",
        "--out",
        clean_dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let clean = std::fs::read_to_string(clean_dir.join("metrics.json")).unwrap();
    assert!(!clean.contains("\"faults\""), "{clean}");
}

#[test]
fn bench_record_rows_are_schema_versioned_and_reproducible() {
    let file = scratch().join("bench-repro.json");
    let path = file.to_str().unwrap();
    for _ in 0..2 {
        let out = repro(&["--bench-record", "--size", "small", "--bench-out", path]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
    }
    let text = std::fs::read_to_string(&file).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v.get("schema_version").and_then(|s| s.as_u64()), Some(1));
    let rows = v.get("rows").and_then(|r| r.as_array()).unwrap();
    assert_eq!(rows.len(), 2, "append did not accumulate: {text}");

    for row in rows {
        assert_eq!(row.get("schema_version").and_then(|s| s.as_u64()), Some(1));
        assert_eq!(row.get("size").and_then(|s| s.as_str()), Some("small"));
        assert_eq!(row.get("seed").and_then(|s| s.as_u64()), Some(42));
        // bench-record pins one worker unless --threads is explicit.
        assert_eq!(row.get("threads").and_then(|t| t.as_u64()), Some(1));
        let top = row.get("top_phases").and_then(|t| t.as_array()).unwrap();
        assert!(!top.is_empty() && top.len() <= 3, "{row}");
        for p in top {
            assert!(p.get("phase").and_then(|x| x.as_str()).is_some());
            assert!(p.get("total_bytes").and_then(|x| x.as_u64()).is_some());
        }
    }

    // Two separate processes, same seed and threads: every deterministic
    // field matches exactly. Only wall time, OS RSS, and shard skew
    // (timing-dependent) may differ.
    let nondeterministic = ["build_ms", "peak_rss_bytes", "shard_skew_x1000"];
    let (serde_json::Value::Object(a), serde_json::Value::Object(b)) = (&rows[0], &rows[1]) else {
        panic!("rows are not objects: {text}");
    };
    assert_eq!(a.len(), b.len());
    for (key, value) in a.iter() {
        if nondeterministic.contains(&key.as_str()) {
            continue;
        }
        assert_eq!(
            Some(value),
            b.get(key),
            "deterministic field {key} drifted between runs"
        );
    }
    let peak = a
        .get("tracked_peak_bytes")
        .and_then(|p| p.as_u64())
        .unwrap();
    assert!(peak > 0, "profiled build tracked no memory");
}

#[test]
fn bench_record_bad_invocations_exit_2() {
    // Unknown size name.
    let out = repro(&["--bench-record", "--size", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown size"), "{err}");

    // Size lists are a bench-record-only syntax.
    let out = repro(&["--exp", "map", "--size", "small,default"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // --bench-baseline requires a path.
    let out = repro(&["--bench-record", "--bench-baseline"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unwritable trajectory file fails the preflight before any build.
    let out = repro(&[
        "--bench-record",
        "--size",
        "small",
        "--bench-out",
        &unwritable("bench.json"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("building substrate"), "{err}");

    // An existing trajectory with a foreign schema version is an error,
    // not something to silently rewrite.
    let stale = scratch().join("bench-stale.json");
    std::fs::write(&stale, br#"{"schema_version": 99, "rows": []}"#).unwrap();
    let out = repro(&[
        "--bench-record",
        "--size",
        "small",
        "--bench-out",
        stale.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("schema_version"), "{err}");
}

#[test]
fn unknown_size_exits_2_with_usage() {
    let out = repro(&["--size", "lrage"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown --size \"lrage\""), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
    // The rejection fires before any expensive work: a typo'd size must
    // never silently run (and mislabel) a default-size build.
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn unknown_size_is_checked_before_filesystem_work() {
    // With the old silent-default behavior this invocation would have
    // failed on the unwritable out dir; the size check must win.
    let out = repro(&["--size", "lrage", "--out", &unwritable("size-order")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown --size"), "{err}");
    assert!(!err.contains("cannot create output dir"), "{err}");
}

#[test]
fn size_missing_value_exits_2() {
    // At the end of the argument list…
    let out = repro(&["--exp", "map", "--size"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--size expects"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");

    // …and when the next token is another flag (which sibling flags like
    // --bench-out already rejected; --size silently meant "default").
    let out = repro(&["--size", "--metrics"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--size expects"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn bench_record_rejects_unknown_comma_list_entry() {
    let out = repro(&["--bench-record", "--size", "small,lrage"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown size \"lrage\""), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn valid_sizes_are_unaffected_by_the_size_check() {
    // `small` still runs end to end (pathlen is substrate-only and fast).
    let out = repro(&[
        "--exp",
        "pathlen",
        "--size",
        "small",
        "--out",
        scratch().join("size-ok-out").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn snapshot_with_non_map_experiment_exits_2() {
    let out = repro(&["--exp", "pathlen", "--snapshot"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("map-building experiment"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn unwritable_snapshot_file_exits_2_before_build() {
    let out = repro(&[
        "--exp",
        "map",
        "--out",
        scratch().join("snap-ok-out").to_str().unwrap(),
        "--snapshot",
        &unwritable("map.snap"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("is not writable"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");
}

#[test]
fn malformed_query_specs_exit_2() {
    // Unknown kind, wrong arity, and bare --query are all usage errors
    // caught before the snapshot is even opened.
    for spec in [
        vec!["--query"],
        vec!["--query", "bogus", "x"],
        vec!["--query", "point", "pfx0"],
        vec!["--query", "reverse"],
        vec!["--query", "route", "0", "1", "2"],
    ] {
        let out = repro(&spec);
        assert_eq!(out.status.code(), Some(2), "{spec:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--query expects"), "{err}");
    }
}

#[test]
fn query_against_missing_snapshot_exits_2() {
    let out = repro(&[
        "--query",
        "route",
        "0",
        "--snapshot",
        scratch().join("no-such.snap").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot open snapshot"), "{err}");
}

#[test]
fn diverging_modes_are_mutually_exclusive() {
    for spec in [
        vec!["--bench-record", "--bench-query"],
        vec!["--bench-query", "--query", "route", "0"],
        vec!["--bench-record", "--query", "route", "0"],
    ] {
        let out = repro(&spec);
        assert_eq!(out.status.code(), Some(2), "{spec:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("mutually exclusive"), "{err}");
    }
}

#[test]
fn snapshot_writes_queries_answer_and_corruption_is_rejected() {
    let dir = scratch().join("snapshot-e2e-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "17",
        "--out",
        dir.to_str().unwrap(),
        "--snapshot",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let snap_path = dir.join("map.snap");
    let snap = std::fs::read(&snap_path).unwrap();
    assert!(!snap.is_empty());

    // Route queries answer off the snapshot with no substrate build.
    let out = repro(&[
        "--query",
        "route",
        "0",
        "--snapshot",
        snap_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("building substrate"), "{err}");
    assert!(err.contains("neighbor(s)"), "{err}");

    // A resolvable but unmapped point query is exit 1, not an error.
    let out = repro(&[
        "--query",
        "point",
        "pfx0",
        "svc0",
        "--snapshot",
        snap_path.to_str().unwrap(),
    ]);
    assert!(matches!(out.status.code(), Some(0) | Some(1)), "{out:?}");

    // One flipped byte anywhere makes the snapshot unopenable.
    let mut bad = snap.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    let bad_path = dir.join("corrupt.snap");
    std::fs::write(&bad_path, &bad).unwrap();
    let out = repro(&[
        "--query",
        "route",
        "0",
        "--snapshot",
        bad_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checksum"), "{err}");
}

#[test]
fn bench_query_records_a_schema_versioned_row() {
    let file = scratch().join("bench-query.json");
    let path = file.to_str().unwrap();
    let out = repro(&["--bench-query", "--size", "small", "--bench-out", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("queries/sec"), "{err}");

    let text = std::fs::read_to_string(&file).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v.get("schema_version").and_then(|s| s.as_u64()), Some(1));
    let rows = v.get("rows").and_then(|r| r.as_array()).unwrap();
    assert_eq!(rows.len(), 1, "{text}");
    let row = &rows[0];
    assert_eq!(row.get("size").and_then(|s| s.as_str()), Some("small"));
    assert!(row.get("qps").and_then(|q| q.as_u64()).unwrap_or(0) > 0);
    assert!(row.get("hits").and_then(|h| h.as_u64()).unwrap_or(0) > 0);
    assert!(
        row.get("snapshot_bytes")
            .and_then(|b| b.as_u64())
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn epoch_bad_invocations_exit_2_before_any_build() {
    // Zero epochs, garbage counts, and a missing value are usage errors.
    for bad in ["0", "three", "-1", ""] {
        let out = if bad.is_empty() {
            repro(&["--epochs"])
        } else {
            repro(&["--epochs", bad])
        };
        assert_eq!(out.status.code(), Some(2), "--epochs {bad:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--epochs expects a positive integer"), "{err}");
        assert!(err.contains("usage: repro"), "{err}");
        assert!(!err.contains("building substrate"), "{err}");
    }

    // Epoch sub-flags without the mode itself are silent no-ops — reject.
    for spec in [vec!["--epoch-plan", "light"], vec!["--epoch-verify"]] {
        let out = repro(&spec);
        assert_eq!(out.status.code(), Some(2), "{spec:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("need --epochs"), "{err}");
    }

    // The loop drives its own builds: experiment selection, query modes,
    // and the bench recorders do not compose with it.
    for spec in [
        vec!["--epochs", "2", "--exp", "map"],
        vec!["--epochs", "2", "--bench-record"],
        vec!["--epochs", "2", "--query", "route", "0"],
    ] {
        let out = repro(&spec);
        assert_eq!(out.status.code(), Some(2), "{spec:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("does not combine"), "{err}");
        assert!(!err.contains("building substrate"), "{err}");
    }
}

#[test]
fn epoch_plan_errors_exit_2_with_usage() {
    let dir = scratch();

    // Unknown profile name (falls through to the file read).
    let out = repro(&["--epochs", "2", "--epoch-plan", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("neither a profile"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
    assert!(!err.contains("building substrate"), "{err}");

    // Unparseable plan file.
    let garbled = dir.join("garbled-epoch-plan.json");
    std::fs::write(&garbled, b"{ not json").unwrap();
    let out = repro(&["--epochs", "2", "--epoch-plan", garbled.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse plan file"), "{err}");

    // Parseable but out of range: rates above 1 fail validation.
    let invalid = dir.join("invalid-epoch-plan.json");
    std::fs::write(&invalid, br#"{"resolver_churn": 2.0}"#).unwrap();
    let out = repro(&["--epochs", "2", "--epoch-plan", invalid.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid plan"), "{err}");
}

#[test]
fn epoch_loop_runs_end_to_end_and_verifies_byte_identity() {
    let dir = scratch().join("epoch-e2e-out");
    let bench = scratch().join("epoch-e2e-bench.json");
    let out = repro(&[
        "--epochs",
        "2",
        "--size",
        "small",
        "--seed",
        "29",
        "--epoch-plan",
        "light",
        "--epoch-verify",
        "--snapshot",
        "--out",
        dir.to_str().unwrap(),
        "--bench-out",
        bench.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("verified byte-identical"), "{err}");

    // Per-epoch metrics rows: epoch 0 is the full build, later epochs
    // carry their dirty campaign lists and changed fingerprints.
    let text = std::fs::read_to_string(dir.join("epoch_metrics.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v.get("schema_version").and_then(|s| s.as_u64()), Some(1));
    assert_eq!(v.get("plan").and_then(|p| p.as_str()), Some("light"));
    let rows = v.get("rows").and_then(|r| r.as_array()).unwrap();
    assert_eq!(rows.len(), 3, "{text}");
    assert_eq!(rows[0].get("epoch").and_then(|e| e.as_u64()), Some(0));
    assert_eq!(
        rows[0]
            .get("dirty")
            .and_then(|d| d.as_array())
            .map(Vec::len),
        Some(0)
    );
    for row in &rows[1..] {
        assert!(
            !row.get("dirty")
                .and_then(|d| d.as_array())
                .unwrap()
                .is_empty(),
            "churn epoch with empty dirty set: {row}"
        );
    }
    let fp = |i: usize| rows[i].get("fingerprint").and_then(|f| f.as_str()).unwrap();
    assert_ne!(fp(0), fp(1), "churn did not change the map");

    // The speedup trajectory: one verified row per churn epoch.
    let text = std::fs::read_to_string(&bench).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let rows = v.get("rows").and_then(|r| r.as_array()).unwrap();
    assert_eq!(rows.len(), 2, "{text}");
    for row in rows {
        assert_eq!(
            row.get("byte_identical").and_then(|b| b.as_bool()),
            Some(true)
        );
        assert!(
            row.get("speedup_x1000").and_then(|s| s.as_u64()).unwrap() > 0,
            "{row}"
        );
    }

    // Every epoch's snapshot exists, the final one also at the base path,
    // and the diff between first and last epoch is non-empty while the
    // self-diff is empty (both exit 0).
    let e0 = dir.join("map.snap.epoch0");
    let e2 = dir.join("map.snap.epoch2");
    assert_eq!(
        std::fs::read(&e2).unwrap(),
        std::fs::read(dir.join("map.snap")).unwrap(),
        "base snapshot is not the final epoch"
    );
    let out = repro(&[
        "--diff",
        e0.to_str().unwrap(),
        e0.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("snapshots are identical"), "{err}");
    let text = std::fs::read_to_string(dir.join("map_diff.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(
        v.get("cells").and_then(|c| c.as_array()).map(Vec::len),
        Some(0),
        "{text}"
    );

    let out = repro(&[
        "--diff",
        e0.to_str().unwrap(),
        e2.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(dir.join("map_diff.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let cells = v.get("cells").and_then(|c| c.as_array()).unwrap();
    assert!(!cells.is_empty(), "two churned epochs diff empty: {text}");
    for cell in cells {
        let kind = cell.get("kind").and_then(|k| k.as_str()).unwrap();
        assert!(
            ["added", "removed", "moved", "re-evidenced"].contains(&kind),
            "{cell}"
        );
        // Provenance rides along with every delta.
        assert!(cell
            .get("new_techniques")
            .and_then(|t| t.as_array())
            .is_some());
    }
}

#[test]
fn diff_bad_snapshots_exit_2() {
    let dir = scratch();

    // Missing operands are usage errors.
    let out = repro(&["--diff", "only-one.snap"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--diff expects two snapshot paths"), "{err}");

    // Diff mode never composes with build modes.
    let out = repro(&["--diff", "a.snap", "b.snap", "--exp", "map"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Missing file.
    let missing = dir.join("no-such-a.snap");
    let out = repro(&[
        "--diff",
        missing.to_str().unwrap(),
        missing.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot open snapshot"), "{err}");

    // Build one real snapshot to corrupt and to version-bump.
    let snap_dir = dir.join("diff-snap-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "31",
        "--out",
        snap_dir.to_str().unwrap(),
        "--snapshot",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let good_path = snap_dir.join("map.snap");
    let good = std::fs::read(&good_path).unwrap();

    // One flipped payload byte fails the checksum.
    let mut corrupt = good.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let corrupt_path = dir.join("diff-corrupt.snap");
    std::fs::write(&corrupt_path, &corrupt).unwrap();
    let out = repro(&[
        "--diff",
        good_path.to_str().unwrap(),
        corrupt_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checksum"), "{err}");

    // A foreign format version is rejected as such (the version field
    // sits at byte 8, checked before the checksum).
    let mut foreign = good.clone();
    foreign[8] = foreign[8].wrapping_add(1);
    let foreign_path = dir.join("diff-foreign.snap");
    std::fs::write(&foreign_path, &foreign).unwrap();
    let out = repro(&[
        "--diff",
        good_path.to_str().unwrap(),
        foreign_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("version"), "{err}");

    // Snapshots of different universes (another seed) are incompatible.
    let other_dir = dir.join("diff-other-out");
    let out = repro(&[
        "--exp",
        "map",
        "--size",
        "small",
        "--seed",
        "32",
        "--out",
        other_dir.to_str().unwrap(),
        "--snapshot",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = repro(&[
        "--diff",
        good_path.to_str().unwrap(),
        other_dir.join("map.snap").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not comparable"), "{err}");
}

#[test]
fn bench_baseline_gates_peak_memory_regressions() {
    let dir = scratch();

    // A baseline with an absurdly small peak: any real build regresses.
    let tight = dir.join("bench-baseline-tight.json");
    std::fs::write(
        &tight,
        br#"{"schema_version": 1, "rows": [{"size": "small", "tracked_peak_bytes": 1}]}"#,
    )
    .unwrap();
    let out_file = dir.join("bench-gated.json");
    let out = repro(&[
        "--bench-record",
        "--size",
        "small",
        "--bench-out",
        out_file.to_str().unwrap(),
        "--bench-baseline",
        tight.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("REGRESSION"), "{err}");

    // Re-run against the trajectory just recorded: same build, same
    // accounting, so the +10% gate passes.
    let out = repro(&[
        "--bench-record",
        "--size",
        "small",
        "--bench-out",
        dir.join("bench-gated2.json").to_str().unwrap(),
        "--bench-baseline",
        out_file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("within 10% of baseline"), "{err}");

    // A size missing from the baseline passes vacuously, with a note.
    let empty = dir.join("bench-baseline-empty.json");
    std::fs::write(&empty, br#"{"schema_version": 1, "rows": []}"#).unwrap();
    let out = repro(&[
        "--bench-record",
        "--size",
        "small",
        "--bench-out",
        dir.join("bench-gated3.json").to_str().unwrap(),
        "--bench-baseline",
        empty.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no baseline row for size=small"), "{err}");
}
