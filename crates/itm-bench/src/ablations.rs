//! The D1–D5 design-choice ablations called out in DESIGN.md §4.

use crate::{pct, ExperimentResult};
use itm_core::recommend::RecommenderWeights;
use itm_core::{PeeringRecommender, RecommendationEval};
use itm_measure::{CacheProbeCampaign, RootCrawler, Substrate, SubstrateConfig};
use itm_routing::CollectorSet;
use itm_types::Asn;
use std::collections::BTreeSet;

/// D1 — ECS scope granularity: per-prefix (ECS) vs resolver-wide caches.
///
/// Table 1's "Prefix vs AS" precision axis: with ECS, cache probing sees
/// individual /24s; without, one cache entry covers an entire PoP and the
/// per-prefix signal disappears. We compare discovery precision using only
/// ECS domains against only non-ECS domains.
pub fn ab_ecs_scope(s: &Substrate) -> ExperimentResult {
    let resolver = s.open_resolver().expect("open resolver");

    // ECS campaign (the default picks ECS-supporting domains).
    let ecs_result = CacheProbeCampaign::default().run(s, &resolver);
    let ecs_fdr = ecs_result.false_discovery_rate(s);
    let ecs_cov =
        s.traffic
            .provider_coverage(&s.topo, &s.users, &s.catalog, &ecs_result.discovered, None);

    // Non-ECS probing: every prefix behind a PoP reports hit/miss
    // identically, so "discoveries" include userless prefixes behind busy
    // PoPs — precision collapses.
    let non_ecs_domains: Vec<String> = s
        .catalog
        .services
        .iter()
        .filter(|svc| !svc.ecs_support)
        .take(10)
        .map(|svc| svc.domain.clone())
        .collect();
    let mut discovered = BTreeSet::new();
    for rec in s.topo.prefixes.iter() {
        for d in &non_ecs_domains {
            for round in 0..8u64 {
                let t = itm_types::SimTime(round * 10_800);
                if matches!(resolver.probe(rec.net, d, t), itm_dns::ProbeResult::Hit(_)) {
                    discovered.insert(rec.id);
                }
            }
        }
    }
    let non_fdr = if discovered.is_empty() {
        0.0
    } else {
        discovered
            .iter()
            .filter(|&&p| s.users.users_of(p) <= 0.0)
            .count() as f64
            / discovered.len() as f64
    };
    let non_cov = s
        .traffic
        .provider_coverage(&s.topo, &s.users, &s.catalog, &discovered, None);

    ExperimentResult {
        id: "ab_ecs_scope",
        title: "D1: per-prefix (ECS) vs resolver-wide cache scope".into(),
        csv_header: "scope,discovered,false_discovery_rate,traffic_coverage".into(),
        csv_rows: vec![
            format!(
                "ecs_prefix,{},{ecs_fdr:.4},{ecs_cov:.4}",
                ecs_result.discovered.len()
            ),
            format!("pop_wide,{},{non_fdr:.4},{non_cov:.4}", discovered.len()),
        ],
        headline: vec![
            ("ECS false-discovery rate".into(), pct(ecs_fdr)),
            ("PoP-wide false-discovery rate".into(), pct(non_fdr)),
            (
                "precision collapse without ECS".into(),
                format!(
                    "{:.0}x more false positives",
                    (non_fdr / ecs_fdr.max(1e-6)).max(1.0)
                ),
            ),
        ],
    }
}

/// D2 — resolver co-location assumption: sweep the fraction of ASes whose
/// resolver sits elsewhere and watch root-log attribution degrade.
pub fn ab_resolver_assumption(base_cfg: &SubstrateConfig, seed: u64) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut cfg = base_cfg.clone();
        cfg.resolvers.offnet_resolver_fraction = frac;
        let s = Substrate::build(cfg, seed).expect("valid config");
        let resolver = s.open_resolver().expect("open resolver");
        let result = RootCrawler::default().run(&s, &resolver);
        let ases: BTreeSet<Asn> = result.client_ases(&s).into_iter().collect();
        let cov = s
            .traffic
            .provider_coverage_as(&s.topo, &s.users, &s.catalog, &ases, None);
        rows.push(format!("{frac:.1},{},{cov:.4}", ases.len()));
        // itm-lint: allow(F001): exact grid values taken from the sweep iterator, never computed
        if frac == 0.0 || frac == 0.8 {
            headline.push((format!("coverage at offnet={frac:.1}"), pct(cov)));
        }
    }
    ExperimentResult {
        id: "ab_resolver_assumption",
        title: "D2: root-log coverage vs resolver co-location violations".into(),
        csv_header: "offnet_resolver_fraction,client_ases,traffic_coverage".into(),
        csv_rows: rows,
        headline,
    }
}

/// D3 — collector placement: invisible-link fraction vs feeder count.
pub fn ab_collectors(s: &Substrate) -> ExperimentResult {
    let view = s.full_view();
    let mut rows = Vec::new();
    let mut first = None;
    let mut last = None;
    for n in [2usize, 5, 10, 20, 40, 80] {
        let n = n.min(s.topo.n_ases());
        let set = CollectorSet::with_count(&s.topo, &s.seeds, n);
        let visible = set.visible_links(&s.topo, &view);
        let peering_total = s.topo.links.iter().filter(|l| l.is_peering()).count();
        let peering_vis = s
            .topo
            .links
            .iter()
            .filter(|l| l.is_peering() && visible.contains(&l.key()))
            .count();
        let inv = 1.0 - peering_vis as f64 / peering_total.max(1) as f64;
        rows.push(format!("{n},{},{inv:.4}", visible.len()));
        if first.is_none() {
            first = Some(inv);
        }
        last = Some(inv);
    }
    ExperimentResult {
        id: "ab_collectors",
        title: "D3: peering invisibility vs collector count".into(),
        csv_header: "feeders,visible_links,invisible_peering_fraction".into(),
        csv_rows: rows,
        headline: vec![
            (
                "invisible peering, 2 feeders".into(),
                pct(first.unwrap_or(0.0)),
            ),
            (
                "invisible peering, 80 feeders".into(),
                pct(last.unwrap_or(0.0)),
            ),
        ],
    }
}

/// D4 — recommender feature ablation: drop each feature and re-score.
pub fn ab_recommend_features(s: &Substrate) -> ExperimentResult {
    let collectors = CollectorSet::typical(&s.topo, &s.seeds);
    let (public, _) = collectors.public_view(&s.topo);

    let variants: Vec<(&str, RecommenderWeights)> = vec![
        ("full", RecommenderWeights::default()),
        (
            "no_collaborative",
            RecommenderWeights {
                collaborative: 0.0,
                ..Default::default()
            },
        ),
        (
            "no_policy",
            RecommenderWeights {
                policy: 0.0,
                ..Default::default()
            },
        ),
        (
            "no_type_prior",
            RecommenderWeights {
                type_prior: 0.0,
                ..Default::default()
            },
        ),
        (
            "no_cone",
            RecommenderWeights {
                cone: 0.0,
                ..Default::default()
            },
        ),
        (
            "no_activity",
            RecommenderWeights {
                activity: 0.0,
                ..Default::default()
            },
        ),
        (
            "no_colocation",
            RecommenderWeights {
                colocation: 0.0,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for (name, w) in variants {
        let rec = PeeringRecommender::new(s, &public, w);
        let eval = RecommendationEval::evaluate(
            s,
            &rec.recommend().expect("finite recommendation scores"),
        );
        let p_top = eval.top_precision();
        let (k, p_k, r_k) = eval.at_k.last().copied().unwrap_or((0, 0.0, 0.0));
        rows.push(format!("{name},{p_top:.4},{k},{p_k:.4},{r_k:.4}"));
        if name == "full" || name == "no_collaborative" {
            headline.push((format!("precision@top [{name}]"), format!("{p_top:.3}")));
        }
    }
    ExperimentResult {
        id: "ab_recommend_features",
        title: "D4: recommender feature ablation".into(),
        csv_header: "variant,precision_top,k,precision_at_k,recall_at_k".into(),
        csv_rows: rows,
        headline,
    }
}

/// D5 — probe budget: coverage vs probing rounds per day.
pub fn ab_probe_budget(s: &Substrate) -> ExperimentResult {
    let resolver = s.open_resolver().expect("open resolver");
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for rounds in [1u32, 2, 4, 8, 16, 32] {
        let campaign = CacheProbeCampaign {
            rounds_per_day: rounds,
            ..Default::default()
        };
        let result = campaign.run(s, &resolver);
        let cov =
            s.traffic
                .provider_coverage(&s.topo, &s.users, &s.catalog, &result.discovered, None);
        let probes = result.probes_per_prefix as u64 * s.topo.prefixes.len() as u64;
        rows.push(format!(
            "{rounds},{probes},{},{cov:.4}",
            result.discovered.len()
        ));
        if rounds == 1 || rounds == 32 {
            headline.push((format!("coverage at {rounds} rounds/day"), pct(cov)));
        }
    }
    ExperimentResult {
        id: "ab_probe_budget",
        title: "D5: cache-probe budget vs coverage".into(),
        csv_header: "rounds_per_day,total_probes,discovered,traffic_coverage".into(),
        csv_rows: rows,
        headline,
    }
}
