//! # itm-bench — experiment reproduction harness and benchmarks
//!
//! One function per paper artifact (every table, figure, and quantitative
//! claim — the E1–E13 index in `DESIGN.md`), plus the D1–D5 ablations.
//! Each experiment returns a [`ExperimentResult`]: a human-readable table
//! and machine-readable CSV rows, which the `repro` binary prints and
//! writes under `results/`.
//!
//! Criterion benchmarks for the computational kernels live in `benches/`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ablations;
pub mod experiments;

use std::fmt::Write as _;

/// The outcome of one reproduced experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig2"`).
    pub id: &'static str,
    /// One-line title.
    pub title: String,
    /// CSV header.
    pub csv_header: String,
    /// CSV data rows.
    pub csv_rows: Vec<String>,
    /// Headline (key, value) pairs compared against the paper.
    pub headline: Vec<(String, String)>,
}

impl ExperimentResult {
    /// Render the CSV body.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.csv_header);
        for r in &self.csv_rows {
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// Render the human-readable summary.
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for (k, v) in &self.headline {
            let _ = writeln!(out, "  {k}: {v}");
        }
        out
    }
}

/// Helper: format a float percentage.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: "sample",
            title: "a sample experiment".into(),
            csv_header: "a,b".into(),
            csv_rows: vec!["1,2".into(), "3,4".into()],
            headline: vec![("metric".into(), "42%".into())],
        }
    }

    #[test]
    fn csv_rendering_includes_header_and_rows() {
        let csv = sample().csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["a,b", "1,2", "3,4"]);
    }

    #[test]
    fn text_rendering_includes_id_title_and_headlines() {
        let text = sample().text();
        assert!(text.contains("sample"));
        assert!(text.contains("a sample experiment"));
        assert!(text.contains("metric: 42%"));
    }

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
