//! The E1–E13 experiment reproductions (see DESIGN.md §3).
//!
//! Each function takes a built [`Substrate`] (and usually a built
//! [`TrafficMap`]) and produces an [`ExperimentResult`] with the same
//! rows/series the paper's artifact reports.

use crate::{pct, ExperimentResult};
use itm_core::recommend::RecommenderWeights;
use itm_core::{
    coverage, AnycastAnalysis, CoverageReport, PathLengthAnalysis, PeeringRecommender,
    PredictionExperiment, RecommendationEval, TrafficMap,
};
use itm_measure::activity::Fig2Analysis;
use itm_measure::{CloudProbeResult, IpidCampaign, Substrate};
use itm_routing::{CollectorSet, VantagePoints};
use itm_traffic::DeliveryMode;
use itm_types::stats::top_k_for_share;
use itm_types::SeedDomain;

/// E1 — Table 1: per-component precision and coverage.
pub fn table1(s: &Substrate, map: &TrafficMap) -> ExperimentResult {
    let report = CoverageReport::score(s, map, None);
    let rows = coverage::table1(s, map, &report);
    ExperimentResult {
        id: "table1",
        title: "ITM component precision & coverage (Table 1)".into(),
        csv_header: "component,temporal,network_precision,coverage".into(),
        csv_rows: rows
            .iter()
            .map(|r| {
                format!(
                    "\"{}\",\"{}\",\"{}\",\"{}\"",
                    r.component, r.temporal, r.network_precision, r.coverage
                )
            })
            .collect(),
        headline: rows
            .iter()
            .map(|r| (r.component.clone(), r.coverage.clone()))
            .collect(),
    }
}

/// E2 — Figure 1a: discovered-prefix count per open-resolver PoP.
pub fn fig1a(s: &Substrate, map: &TrafficMap) -> ExperimentResult {
    let counts = coverage::fig1a_pop_counts(map);
    let resolver = s.open_resolver().expect("open resolver");
    let mut rows = Vec::new();
    for pop in resolver.pops() {
        let n = counts.get(&pop.id).copied().unwrap_or(0);
        rows.push(format!("{},{},{}", pop.id, pop.city, n));
    }
    let max = counts.values().copied().max().unwrap_or(0);
    let min = counts.values().copied().min().unwrap_or(0);
    ExperimentResult {
        id: "fig1a",
        title: "client prefixes detected per probed PoP (Figure 1a)".into(),
        csv_header: "pop,city,prefixes_detected".into(),
        csv_rows: rows,
        headline: vec![
            ("PoPs probed".into(), resolver.pops().len().to_string()),
            ("max prefixes at one PoP".into(), max.to_string()),
            ("min prefixes at one PoP".into(), min.to_string()),
            (
                "spread (paper: counts span ~10^0..10^5)".into(),
                format!("{min}..{max}"),
            ),
        ],
    }
}

/// E3 — Figure 1b: per-country user coverage (shading) + detected server
/// sites (dots).
pub fn fig1b(s: &Substrate, map: &TrafficMap) -> ExperimentResult {
    let rows = coverage::fig1b_rows(s, map);
    let report = CoverageReport::score(s, map, None);
    let well = rows.iter().filter(|r| r.user_coverage_pct > 80.0).count();
    ExperimentResult {
        id: "fig1b",
        title: "per-country APNIC-user coverage and server sites (Figure 1b)".into(),
        csv_header: "country,user_coverage_pct,server_sites".into(),
        csv_rows: rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.1},{}",
                    r.country, r.user_coverage_pct, r.server_sites
                )
            })
            .collect(),
        headline: vec![
            (
                "global APNIC-user coverage (paper: 98%)".into(),
                pct(report.apnic_user_share),
            ),
            (
                "countries >80% covered".into(),
                format!("{well}/{}", rows.len()),
            ),
            (
                "total detected server sites".into(),
                rows.iter()
                    .map(|r| r.server_sites)
                    .sum::<usize>()
                    .to_string(),
            ),
        ],
    }
}

/// E4 — Figure 2: ISP subscribers vs cache hit rate and APNIC estimates.
pub fn fig2(s: &Substrate, map: &TrafficMap) -> ExperimentResult {
    // Case-study country: the most populous one (the paper uses France).
    let country = s
        .topo
        .world
        .countries
        .iter()
        .max_by(|a, b| {
            a.population_weight
                .partial_cmp(&b.population_weight)
                .unwrap()
        })
        .unwrap()
        .country;
    let f = Fig2Analysis::run(s, &map.cache_result, country, 6);
    let mut rows = Vec::new();
    for (asn, subs, hit, apnic) in &f.rows {
        rows.push(format!(
            "{},{:.0},{:.6},{}",
            asn,
            subs,
            hit,
            apnic.map(|a| format!("{a:.0}")).unwrap_or_default()
        ));
    }
    ExperimentResult {
        id: "fig2",
        title: format!("subscribers vs cache hit rate, {country} ISPs (Figure 2)"),
        csv_header: "asn,subscribers,cache_hit_rate,apnic_estimate".into(),
        csv_rows: rows,
        headline: vec![
            (
                "hit-rate Spearman vs subscribers".into(),
                f.hit_rate_spearman
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or("n/a".into()),
            ),
            (
                "hit-rate Kendall tau".into(),
                f.hit_rate_kendall
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or("n/a".into()),
            ),
            (
                "APNIC Spearman vs subscribers".into(),
                f.apnic_spearman
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or("n/a".into()),
            ),
            (
                "hit rate orders top ISPs correctly (paper: yes)".into(),
                f.hit_rate_orders_top.to_string(),
            ),
            (
                "fit slope (subs on hit rate)".into(),
                f.hit_rate_fit
                    .map(|(m, _, r2)| format!("{m:.1} (r²={r2:.2})"))
                    .unwrap_or("n/a".into()),
            ),
        ],
    }
}

/// E5 — §2.1 path-length swing: unweighted vs traffic-weighted CDFs.
pub fn pathlen(s: &Substrate) -> ExperimentResult {
    let view = s.full_view();
    let a = PathLengthAnalysis::run(s, &view);
    let mut rows = Vec::new();
    for len in 0..=8 {
        rows.push(format!(
            "{},{:.4},{:.4}",
            len,
            a.unweighted.fraction_at(len as f64),
            a.weighted.fraction_at(len as f64)
        ));
    }
    ExperimentResult {
        id: "pathlen",
        title: "path lengths: unweighted vs traffic-weighted CDF (§2.1)".into(),
        csv_header: "as_hops,unweighted_cdf,weighted_cdf".into(),
        csv_rows: rows,
        headline: vec![
            (
                "short paths unweighted (paper analogue: 2%)".into(),
                pct(a.short_paths_unweighted),
            ),
            (
                "short traffic weighted (paper: 73%)".into(),
                pct(a.short_traffic_weighted),
            ),
        ],
    }
}

/// E6 — §2.1/§3.2.3 anycast optimality: routes vs users.
pub fn anycast(s: &Substrate) -> ExperimentResult {
    let view = s.full_view();
    let a = AnycastAnalysis::run(s, &view, 0.15, &SeedDomain::new(s.seed ^ 0xE6));
    let mut rows = Vec::new();
    for km in [0, 50, 100, 250, 500, 1000, 2500, 5000, 10000] {
        rows.push(format!(
            "{},{:.4}",
            km,
            a.excess_distance.fraction_at(km as f64)
        ));
    }
    ExperimentResult {
        id: "anycast",
        title: "anycast catchment optimality (§2.1, [38])".into(),
        csv_header: "excess_km,user_cdf".into(),
        csv_rows: rows,
        headline: vec![
            (
                "routes to closest site (paper: 31%)".into(),
                pct(a.routes_to_closest),
            ),
            (
                "users to optimal site (paper: 60%)".into(),
                pct(a.users_to_optimal),
            ),
            (
                "users within 500 km (paper [38]: 80%)".into(),
                pct(a.users_within_500km),
            ),
        ],
    }
}

/// E7 — §3.1.2 coverage claims: cache probing / root logs / union.
pub fn coverage_claims(s: &Substrate, map: &TrafficMap) -> ExperimentResult {
    let all = CoverageReport::score(s, map, None);
    // Also score against the largest hypergiant only (the paper scores
    // against Microsoft's CDN specifically).
    let hg = s.topo.hypergiants()[0];
    let one = CoverageReport::score(s, map, Some(hg));
    ExperimentResult {
        id: "coverage",
        title: "technique coverage vs ground-truth traffic (§3.1.2)".into(),
        csv_header: "scope,cache_probe,root_logs,union,fdr,apnic_share".into(),
        csv_rows: vec![
            format!(
                "all,{:.4},{:.4},{:.4},{:.4},{:.4}",
                all.cache_probe_traffic,
                all.root_logs_traffic,
                all.union_traffic,
                all.false_discovery_rate,
                all.apnic_user_share
            ),
            format!(
                "hypergiant0,{:.4},{:.4},{:.4},{:.4},{:.4}",
                one.cache_probe_traffic,
                one.root_logs_traffic,
                one.union_traffic,
                one.false_discovery_rate,
                one.apnic_user_share
            ),
        ],
        headline: vec![
            (
                "cache probing (paper: 95%)".into(),
                pct(all.cache_probe_traffic),
            ),
            ("root logs (paper: 60%)".into(), pct(all.root_logs_traffic)),
            ("union (paper: 99%)".into(), pct(all.union_traffic)),
            (
                "false discovery (paper: <1%)".into(),
                pct(all.false_discovery_rate),
            ),
            ("APNIC users (paper: 98%)".into(), pct(all.apnic_user_share)),
        ],
    }
}

/// E8 — §3.2.3 ECS adoption statistics.
pub fn ecs(s: &Substrate, map: &TrafficMap) -> ExperimentResult {
    let top20 = s.catalog.top(20);
    let top_ecs = top20.iter().filter(|x| x.ecs_support).count();
    let top_traffic: f64 = top20.iter().map(|x| x.traffic_share).sum();
    let top_ecs_traffic: f64 = top20
        .iter()
        .filter(|x| x.ecs_support)
        .map(|x| x.traffic_share)
        .sum();
    // The paper's "35% of Internet traffic" counts the ECS-supporting
    // top-20 sites against all traffic.
    let top_ecs_of_all: f64 = top20
        .iter()
        .filter(|x| x.ecs_support)
        .map(|x| x.traffic_share)
        .sum();
    let measurable = map.user_mapping.measurable_traffic_share(s);
    let rows = s
        .catalog
        .services
        .iter()
        .map(|x| {
            format!(
                "{},{},{:?},{},{:.6}",
                x.id, x.domain, x.mode, x.ecs_support, x.traffic_share
            )
        })
        .collect();
    ExperimentResult {
        id: "ecs",
        title: "ECS adoption among popular services (§3.2.3)".into(),
        csv_header: "service,domain,mode,ecs_support,traffic_share".into(),
        csv_rows: rows,
        headline: vec![
            (
                "top-20 sites supporting ECS (paper: 15/20)".into(),
                format!("{top_ecs}/20"),
            ),
            (
                "top-20 ECS supporters' share of all traffic (paper: 35%)".into(),
                pct(top_ecs_of_all),
            ),
            (
                "ECS share of top-20 traffic (paper: 91%)".into(),
                pct(top_ecs_traffic / top_traffic),
            ),
            ("traffic measurable via ECS mapping".into(), pct(measurable)),
        ],
    }
}

/// E9 — §3.3 path prediction on public vs augmented views.
pub fn pathpred(s: &Substrate) -> ExperimentResult {
    let truth = s.full_view();
    let vantage = VantagePoints::typical(&s.topo, &s.seeds);
    let exp = PredictionExperiment::typical(s, &vantage);

    let collectors = CollectorSet::typical(&s.topo, &s.seeds);
    let (public, _) = collectors.public_view(&s.topo);
    let pub_rep = exp.evaluate(&truth, &public);

    let cloud = CloudProbeResult::run(s, &truth, &SeedDomain::new(s.seed ^ 0xE9));
    let augmented = public.with_extra_links(cloud.as_links(s).iter());
    let aug_rep = exp.evaluate(&truth, &augmented);

    // Realistic variant: the same visible paths, but relationships
    // *inferred* from the archive (Gao voting) instead of granted.
    let archive = collectors.archived_paths(&s.topo, &truth);
    let inferred = itm_routing::InferredRelationships::infer(&archive);
    let inferred_view = inferred.to_view(s.topo.n_ases());
    let inf_rep = exp.evaluate(&truth, &inferred_view);
    let (rel_correct, rel_total) = inferred.accuracy(&s.topo);

    let perfect = exp.evaluate(&truth, &truth);

    let row = |name: &str, r: &itm_core::PredictionReport| {
        format!(
            "{name},{},{},{},{},{:.3}",
            r.pairs, r.unreachable, r.exact, r.first_hop_correct, r.mean_length_error
        )
    };
    ExperimentResult {
        id: "pathpred",
        title: "path prediction: public vs cloud-augmented views (§3.3.1)".into(),
        csv_header: "view,pairs,unreachable,exact,first_hop_correct,mean_len_error".into(),
        csv_rows: vec![
            row("public", &pub_rep),
            row("public-inferred-rels", &inf_rep),
            row("public+cloud", &aug_rep),
            row("ground-truth", &perfect),
        ],
        headline: vec![
            (
                "not exactly predicted on public view (paper: >50% unpredictable)".into(),
                pct(1.0 - pub_rep.exact_fraction()),
            ),
            ("exact on public view".into(), pct(pub_rep.exact_fraction())),
            (
                "exact on public+cloud view".into(),
                pct(aug_rep.exact_fraction()),
            ),
            (
                "mean length error public → augmented".into(),
                format!(
                    "{:.2} → {:.2} hops",
                    pub_rep.mean_length_error, aug_rep.mean_length_error
                ),
            ),
            (
                "relationship inference accuracy".into(),
                format!(
                    "{:.1}% ({rel_correct}/{rel_total})",
                    100.0 * rel_correct as f64 / rel_total.max(1) as f64
                ),
            ),
            (
                "exact with inferred relationships".into(),
                pct(inf_rep.exact_fraction()),
            ),
        ],
    }
}

/// E10 — §3.3.3 peering recommendation quality.
pub fn recommend(s: &Substrate) -> ExperimentResult {
    let collectors = CollectorSet::typical(&s.topo, &s.seeds);
    let (public, _) = collectors.public_view(&s.topo);
    let rec = PeeringRecommender::new(s, &public, RecommenderWeights::default());
    let recs = rec.recommend().expect("finite recommendation scores");
    let eval = RecommendationEval::evaluate(s, &recs);
    ExperimentResult {
        id: "recommend",
        title: "peering-link recommender precision/recall (§3.3.3)".into(),
        csv_header: "k,precision_at_k,recall_at_k,base_rate".into(),
        csv_rows: eval
            .at_k
            .iter()
            .map(|(k, p, r)| format!("{k},{p:.4},{r:.4},{:.4}", eval.base_rate))
            .collect(),
        headline: vec![
            ("candidates".into(), eval.candidates.to_string()),
            ("real invisible links".into(), eval.positives.to_string()),
            ("base rate".into(), format!("{:.3}", eval.base_rate)),
            (
                "precision@top".into(),
                format!(
                    "{:.3} ({:.1}x over random)",
                    eval.top_precision(),
                    eval.top_precision() / eval.base_rate.max(1e-9)
                ),
            ),
        ],
    }
}

/// E11 — §3.1.3 IP ID velocity vs forwarded traffic.
pub fn ipid(s: &Substrate) -> ExperimentResult {
    let result = IpidCampaign::default().run(s);
    let rho = result.load_correlation(s).unwrap_or(0.0);
    let diurnal = result.diurnal_fraction(1.5);
    let rows = result
        .observations
        .iter()
        .map(|o| {
            format!(
                "{},{},{:.2},{:.2}",
                o.router,
                o.asn,
                o.mean_velocity(),
                o.peak_trough_ratio()
            )
        })
        .collect();
    ExperimentResult {
        id: "ipid",
        title: "IP ID velocity as a traffic proxy (§3.1.3)".into(),
        csv_header: "router,asn,mean_velocity,peak_trough_ratio".into(),
        csv_rows: rows,
        headline: vec![
            (
                "routers probed".into(),
                result.observations.len().to_string(),
            ),
            (
                "velocity–load Spearman (proposal: positive)".into(),
                format!("{rho:.3}"),
            ),
            ("diurnal routers (paper: 'most')".into(), pct(diurnal)),
        ],
    }
}

/// E12 — §1 (Ager et al. \[4\]) link visibility by class.
pub fn visibility(s: &Substrate) -> ExperimentResult {
    let collectors = CollectorSet::typical(&s.topo, &s.seeds);
    let (_, report) = collectors.public_view(&s.topo);
    let rows = report
        .by_class
        .iter()
        .map(|(label, total, vis)| {
            let inv = if *total > 0 {
                1.0 - *vis as f64 / *total as f64
            } else {
                0.0
            };
            format!("{label},{total},{vis},{inv:.4}")
        })
        .collect();
    ExperimentResult {
        id: "visibility",
        title: "link visibility in public BGP data (§1, [4])".into(),
        csv_header: "class,total_links,visible_links,invisible_fraction".into(),
        csv_rows: rows,
        headline: vec![
            (
                "peering links invisible (paper: >90% at IXP)".into(),
                pct(report.invisible_fraction("all-peering").unwrap_or(0.0)),
            ),
            (
                "transit links invisible".into(),
                pct(report.invisible_fraction("transit").unwrap_or(0.0)),
            ),
            (
                "private peering invisible".into(),
                pct(report.invisible_fraction("private-peering").unwrap_or(0.0)),
            ),
        ],
    }
}

/// E13 — §2 consolidation: a handful of providers carry ~90% of traffic.
pub fn consolidation(s: &Substrate) -> ExperimentResult {
    let totals = s.traffic.provider_totals(&s.catalog);
    let volumes: Vec<f64> = totals.iter().map(|(_, b)| b.raw()).collect();
    let k90 = top_k_for_share(&volumes, 0.9);
    let grand: f64 = volumes.iter().sum();
    let rows = totals
        .iter()
        .map(|(a, b)| {
            let class = s.topo.as_info(*a).class.label();
            format!("{a},{class},{:.0},{:.4}", b.raw(), b.raw() / grand)
        })
        .collect();
    // Off-net reach: hosts per hypergiant.
    let offnet_hosts = s.topo.offnets.distinct_hosts();
    let mode_split: Vec<(DeliveryMode, f64)> = [
        DeliveryMode::DnsRedirection,
        DeliveryMode::Anycast,
        DeliveryMode::CustomUrl,
    ]
    .into_iter()
    .map(|m| {
        (
            m,
            s.catalog
                .services
                .iter()
                .filter(|x| x.mode == m)
                .map(|x| x.traffic_share)
                .sum(),
        )
    })
    .collect();
    ExperimentResult {
        id: "consolidation",
        title: "traffic consolidation across providers (§1, [25, 40])".into(),
        csv_header: "asn,class,traffic_bps,share".into(),
        csv_rows: rows,
        headline: vec![
            (
                "providers for 90% of traffic (paper: 'a handful')".into(),
                k90.to_string(),
            ),
            (
                "distinct off-net host ASes (paper: 'thousands' at scale)".into(),
                offnet_hosts.to_string(),
            ),
            (
                "delivery-mode traffic split (dns/anycast/custom)".into(),
                mode_split
                    .iter()
                    .map(|(_, v)| pct(*v))
                    .collect::<Vec<_>>()
                    .join(" / "),
            ),
        ],
    }
}

/// E14 (extension) — §3.2.3's proposed hosted-cache validation: hit rates
/// under normal operation vs flash events, checked against the Che
/// approximation.
pub fn cachehost(s: &Substrate) -> ExperimentResult {
    use itm_measure::CacheHostExperiment;
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for (label, svc_rank) in [("top-service", 0usize), ("mid-service", 10)] {
        let svc = s.catalog.services[svc_rank.min(s.catalog.len() - 1)].id;
        let exp = CacheHostExperiment::typical(svc);
        let r = exp.run(s, &SeedDomain::new(s.seed ^ 0xE14));
        rows.push(format!(
            "{label},{},{},{:.4},{:.4},{:.4},{:.4}",
            exp.capacity,
            r.n_objects,
            r.normal_hit_rate,
            r.che_prediction,
            r.flash_hit_rate,
            r.flash_set_hit_rate
        ));
        if svc_rank == 0 {
            headline.push(("normal hit rate".into(), pct(r.normal_hit_rate)));
            headline.push(("Che prediction".into(), pct(r.che_prediction)));
            headline.push((
                "flash hit rate (intuition: rises)".into(),
                pct(r.flash_hit_rate),
            ));
            headline.push(("hit rate on flash set".into(), pct(r.flash_set_hit_rate)));
        }
    }
    ExperimentResult {
        id: "cachehost",
        title: "hosted edge cache: normal vs flash hit rates (§3.2.3)".into(),
        csv_header: "scenario,capacity,n_objects,normal_hit,che_prediction,flash_hit,flash_set_hit"
            .into(),
        csv_rows: rows,
        headline,
    }
}

/// E15 (extension) — §3.1.3's resolver↔client association \[43\]: correcting
/// root-log attribution with instrumented-page observations.
pub fn assoc(s: &Substrate) -> ExperimentResult {
    use itm_measure::{ResolverAssociation, RootCrawler};
    use itm_types::Asn;
    use std::collections::BTreeSet;

    let resolver = s.open_resolver().expect("open resolver");
    let crawler = RootCrawler::default();
    let naive = crawler.run(s, &resolver);

    let cov = |r: &itm_measure::RootCrawlResult| {
        let ases: BTreeSet<Asn> = r.client_ases(s).into_iter().collect();
        (
            ases.len(),
            s.traffic
                .provider_coverage_as(&s.topo, &s.users, &s.catalog, &ases, None),
        )
    };
    let (n_naive, c_naive) = cov(&naive);

    let mut rows = vec![format!("naive,0,{n_naive},{c_naive:.4}")];
    let mut headline = vec![("naive root-log coverage".into(), pct(c_naive))];
    for reach in [0.5, 2.0, 8.0] {
        let a = ResolverAssociation::measure(s, &resolver, reach, &SeedDomain::new(s.seed ^ 0xE15));
        let logs = itm_dns::RootLogs::collect(
            &s.topo,
            &s.resolvers,
            &s.chromium,
            &resolver,
            &crawler.roots,
            crawler.window,
            &s.seeds,
        );
        let corrected = a.correct_attribution(s, &logs);
        let (n_c, c_c) = cov(&corrected);
        rows.push(format!(
            "assoc_reach_{reach},{},{n_c},{c_c:.4}",
            a.prefixes_observed
        ));
        // itm-lint: allow(F001): exact grid value taken from the sweep iterator, never computed
        if reach == 8.0 {
            headline.push((
                "corrected coverage (reach=8)".into(),
                format!("{} ({} prefixes observed)", pct(c_c), a.prefixes_observed),
            ));
        }
    }
    ExperimentResult {
        id: "assoc",
        title: "resolver↔client association corrects root-log attribution (§3.1.3, [43])".into(),
        csv_header: "variant,prefixes_observed,client_ases,traffic_coverage".into(),
        csv_rows: rows,
        headline,
    }
}

/// E16 (extension) — map staleness under Internet drift: why Table 1's
/// temporal-precision column demands daily/hourly refresh.
pub fn staleness(s: &Substrate) -> ExperimentResult {
    use itm_measure::{evolution, UserMapping};
    let resolver = s.open_resolver().expect("open resolver");
    let mapping = UserMapping::measure(s, &resolver);
    let cfg = evolution::EvolutionConfig::default();
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for days in [1u64, 7, 30, 90] {
        let evolved = evolution::evolve(s, days, &cfg);
        let rep = evolution::staleness(s, &evolved, &mapping, days);
        rows.push(format!(
            "{days},{:.4},{},{}",
            rep.mapping_stale_fraction, rep.new_offnets, rep.new_links
        ));
        if days == 7 || days == 90 {
            headline.push((
                format!("mapping stale after {days} days"),
                pct(rep.mapping_stale_fraction),
            ));
        }
    }
    ExperimentResult {
        id: "staleness",
        title: "map staleness under Internet drift (Table 1, temporal axis)".into(),
        csv_header: "days,mapping_stale_fraction,new_offnets,new_links".into(),
        csv_rows: rows,
        headline,
    }
}
