//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p itm-bench --bin repro                 # everything
//! cargo run --release -p itm-bench --bin repro -- --exp fig2   # one artifact
//! cargo run --release -p itm-bench --bin repro -- --size small --seed 7
//! cargo run --release -p itm-bench --bin repro -- --ablations  # D1–D5 too
//! cargo run --release -p itm-bench --bin repro -- --exp coverage --metrics
//! cargo run --release -p itm-bench --bin repro -- --exp map --trace
//! cargo run --release -p itm-bench --bin repro -- --exp map --threads 8
//! cargo run --release -p itm-bench --bin repro -- --size small --explain pfx0 svc0
//! cargo run --release -p itm-bench --bin repro -- --exp map --faults light
//! cargo run --release -p itm-bench --bin repro -- --exp map --audit
//! cargo run --release -p itm-bench --bin repro -- --exp map --audit out=q.json
//! cargo run --release -p itm-bench --bin repro -- --bench-record
//! cargo run --release -p itm-bench --bin repro -- --bench-record --size small,default
//! cargo run --release -p itm-bench --bin repro -- --exp map --snapshot
//! cargo run --release -p itm-bench --bin repro -- --query point pfx0 svc0
//! cargo run --release -p itm-bench --bin repro -- --query reverse 10.0.0.1
//! cargo run --release -p itm-bench --bin repro -- --query route 0 1
//! cargo run --release -p itm-bench --bin repro -- --bench-query --size small
//! cargo run --release -p itm-bench --bin repro -- --epochs 5
//! cargo run --release -p itm-bench --bin repro -- --epochs 5 --epoch-plan heavy
//! cargo run --release -p itm-bench --bin repro -- --epochs 3 --epoch-verify
//! cargo run --release -p itm-bench --bin repro -- --diff a.snap b.snap
//! ```
//!
//! Results land in `results/<id>.csv` plus a combined
//! `results/summary.txt`; `--metrics` additionally records pipeline
//! instrumentation (phase timings, probe budgets) to
//! `results/metrics.json`; `--trace [path]` records the causal event
//! trace in Chrome trace format (load it in Perfetto / `chrome://tracing`);
//! `--explain <prefix> <service>` builds the map with tracing on and
//! prints the evidence chain behind one asserted map edge;
//! `--threads N` sizes the map-build worker pool (default: available
//! parallelism) — output is byte-identical at any thread count;
//! `--faults PROFILE` runs the campaigns under a deterministic fault plan
//! (`off` | `light` | `heavy` | a JSON plan file) — the same profile is
//! byte-reproducible across runs and thread counts, and `--faults off`
//! (the default) is byte-identical to not passing the flag at all;
//! `--bench-record` runs the map build once per size in `--size` (a
//! comma list in this mode, default `small,default,large`) with resource
//! profiling on and appends one schema-versioned row per size to the
//! `BENCH_map_build.json` trajectory (`--bench-out` overrides the path,
//! `--bench-baseline FILE` exits 1 if peak tracked bytes regress more
//! than 10% against the matching rows of a baseline trajectory).
//!
//! `--snapshot [FILE]` serializes the assembled map into the versioned,
//! checksummed binary snapshot (wire format: DESIGN.md §14; default
//! `<out>/map.snap`): byte-identical at any `--threads`, and rejected on
//! open if any single byte is corrupted. `--query` answers point, reverse,
//! and route lookups zero-copy off such a snapshot — no substrate build,
//! the provenance (technique claim list) of every point answer included —
//! and `--bench-query` builds the map once and appends a sustained
//! point-lookup throughput row to the schema-versioned `BENCH_query.json`
//! trajectory.
//!
//! `--audit [out=FILE]` scores every measurement technique against the
//! substrate's ground truth and writes a schema-versioned
//! `results/map_quality.json` (per-technique precision/recall/coverage
//! with service-class and population-tier breakdowns, the per-cell
//! disagreement index, pairwise agreement). The report is byte-identical
//! at any `--threads`, composes with `--faults` (a `faults` section
//! appears exactly as in the map summary), and with it off no artifact
//! changes by a byte.
//!
//! `--metrics` also turns on allocation profiling: `metrics.json` gains a
//! `resources` section (peak RSS, allocator-tracked bytes, per-phase
//! attribution). Profiling never changes map bytes — with it off, output
//! is byte-identical to builds that predate the profiler.
//!
//! `--epochs N` runs the continuous-map loop (DESIGN.md §15): one full
//! build (epoch 0), then N epochs of deterministic substrate churn under
//! `--epoch-plan` (`off` | `light` | `heavy` | a JSON plan file; default
//! `light`), each followed by an *incremental* rebuild that recomputes
//! only the campaigns the churn invalidated. Per-epoch rows land in
//! `results/epoch_metrics.json`; with `--snapshot` every epoch's map is
//! serialized to `<path>.epochK` (and the final epoch to `<path>` itself).
//! `--epoch-verify` additionally runs a from-scratch build each epoch,
//! asserts the incremental map is byte-identical (exit 1 on divergence),
//! and appends one incremental-vs-full speedup row per epoch to the
//! schema-versioned `BENCH_epoch.json` trajectory (`--bench-out`
//! overrides the path).
//!
//! `--diff A B` compares two map snapshots of the same universe and
//! writes every edge added, removed, moved, or re-evidenced — with the
//! technique provenance behind each delta — to the deterministic
//! `results/map_diff.json`, printing a kind-by-kind tally. Snapshots
//! that are missing, corrupted, version-mismatched, or describe
//! different universes exit 2; an empty delta (e.g. a snapshot diffed
//! against itself) exits 0.

use itm_bench::{ablations, experiments, ExperimentResult};
use itm_core::{MapConfig, MapSummary, ParallelExecutor, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};
use itm_obs::ProvenanceIndex;
use itm_topology::TopologyConfig;
use itm_types::{FaultPlan, PrefixId, ServiceId};
use std::io::Write;
use std::time::Instant;

// The instrumented allocator wrapper. Installation is free when tracking
// is off (one relaxed load per allocation) and is what lets `--metrics`
// and `--bench-record` attribute bytes to pipeline phases.
#[global_allocator]
static ALLOC: itm_obs::alloc::TrackingAlloc = itm_obs::alloc::TrackingAlloc::new();

/// Schema version stamped on the `BENCH_map_build.json` trajectory file
/// and each of its rows.
const BENCH_SCHEMA_VERSION: u64 = 1;

/// Experiment ids, in run order.
const EXPERIMENT_IDS: &[&str] = &[
    "map",
    "table1",
    "fig1a",
    "fig1b",
    "fig2",
    "pathlen",
    "anycast",
    "coverage",
    "ecs",
    "pathpred",
    "recommend",
    "ipid",
    "visibility",
    "consolidation",
    "cachehost",
    "assoc",
    "staleness",
];

/// Ablation ids (run with `--ablations`, or singly via `--exp ab_*`).
const ABLATION_IDS: &[&str] = &[
    "ab_ecs_scope",
    "ab_resolver_assumption",
    "ab_collectors",
    "ab_recommend_features",
    "ab_probe_budget",
];

struct Args {
    exp: Option<String>,
    seed: u64,
    size: String,
    ablations: bool,
    out_dir: String,
    metrics: bool,
    /// Worker threads for the map build (0 was rejected at parse time);
    /// defaults to the machine's available parallelism. Any value produces
    /// byte-identical output — shards are fixed, threads only run them.
    threads: usize,
    /// `--trace` was given; `Some(path)` if it carried an explicit output
    /// path, `None` for the default `<out>/trace.json`.
    trace: Option<Option<String>>,
    /// `--explain <prefix> <service>`: explain one map edge and exit.
    explain: Option<(String, String)>,
    /// `--audit` was given; `Some(spec)` if it carried a sub-option
    /// string (`out=FILE`), `None` for the defaults.
    audit: Option<Option<String>>,
    /// Fault plan the map build runs under (default: off).
    faults: FaultPlan,
    /// `--threads` was given explicitly (bench-record defaults to one
    /// worker otherwise, so peak-byte accounting is deterministic).
    threads_explicit: bool,
    /// `--size` was given explicitly (bench-record records the full
    /// small,default,large trajectory otherwise).
    size_explicit: bool,
    /// `--bench-record`: run the map build per size with profiling on and
    /// append trajectory rows instead of running experiments.
    bench_record: bool,
    /// Trajectory file `--bench-record` appends to.
    bench_out: String,
    /// `--bench-baseline FILE`: exit 1 if peak tracked bytes regress >10%
    /// against the matching-size rows of this baseline trajectory.
    bench_baseline: Option<String>,
    /// `--bench-out` was given explicitly (`--bench-query` appends to
    /// `BENCH_query.json` by default instead of the map-build trajectory).
    bench_out_explicit: bool,
    /// `--snapshot` was given; `Some(path)` if it carried an explicit
    /// file, `None` for the default `<out>/map.snap`. In build mode this
    /// is where the snapshot is written; with `--query` it is where the
    /// snapshot is read from.
    snapshot: Option<Option<String>>,
    /// `--query KIND ARGS…`: answer one query off an existing snapshot
    /// and exit without building anything.
    query: Option<Vec<String>>,
    /// `--bench-query`: build the map once, snapshot it, and benchmark
    /// sustained point-lookup throughput into the query trajectory.
    bench_query: bool,
    /// `--epochs N`: run the continuous-map loop for N epochs of churn
    /// after the initial full build.
    epochs: Option<u32>,
    /// Churn plan the epoch loop runs under (default: light).
    epoch_plan: itm_types::EpochPlan,
    /// Raw `--epoch-plan` argument, kept for labelling metrics rows.
    epoch_plan_raw: String,
    /// `--epoch-plan` was given explicitly (only legal with `--epochs`).
    epoch_plan_explicit: bool,
    /// `--epoch-verify`: full-rebuild every epoch, assert byte-identity,
    /// and record incremental-vs-full speedup rows.
    epoch_verify: bool,
    /// `--diff A B`: diff two snapshots and exit without building.
    diff: Option<(String, String)>,
}

fn usage() -> String {
    format!(
        "usage: repro [--exp <id>] [--seed N] [--size small|default|large] \
         [--threads N] [--ablations] [--metrics] [--trace [FILE]] \
         [--audit [out=FILE]] [--explain PREFIX SERVICE] \
         [--faults off|light|heavy|FILE] [--out DIR] \
         [--snapshot [FILE]] \
         [--query point PREFIX SERVICE | reverse ADDR | route ASN [ASN]] \
         [--epochs N] [--epoch-plan off|light|heavy|FILE] [--epoch-verify] \
         [--diff SNAP_A SNAP_B] \
         [--bench-record] [--bench-query] [--bench-out FILE] \
         [--bench-baseline FILE] [--help|-h]\n\
         with --bench-record, --size takes a comma list (default \
         small,default,large) and --threads defaults to 1;\n\
         --snapshot writes the queryable map snapshot (default \
         <out>/map.snap) and needs a map-building experiment; \
         --query answers one lookup off an existing snapshot (path from \
         --snapshot, default <out>/map.snap) without building anything; \
         --bench-query benchmarks point-lookup throughput into \
         BENCH_query.json (override with --bench-out);\n\
         --epochs runs the continuous-map loop: one full build, then N \
         epochs of deterministic churn (--epoch-plan, default light) each \
         followed by an incremental rebuild; rows land in \
         <out>/epoch_metrics.json, --epoch-verify asserts byte-identity \
         against a from-scratch build every epoch and records speedup \
         rows to BENCH_epoch.json (override with --bench-out); \
         an --epoch-plan FILE is a JSON object with any of: \
         resolver_churn, link_flaps, vm_churn, rehome_services, \
         diurnal_shift_hours;\n\
         --diff writes every cell and route delta between two snapshots \
         (with technique provenance) to <out>/map_diff.json;\n\
         --audit writes <out>/map_quality.json (override with out=FILE) and \
         needs a map-building experiment: map table1 fig1a fig1b fig2 \
         coverage ecs;\n\
         PREFIX is pfxN, a bare index, or a /24 like 10.0.0.0/24;\n\
         SERVICE is svcN, a bare index, or a domain like svc0.example;\n\
         a --faults FILE is a JSON object with any of: loss, timeout, \
         refusal, churn, max_retries, backoff_base_secs, backoff_cap_secs\n\
         experiment ids: {}\n\
         ablation ids (with --exp): {}",
        EXPERIMENT_IDS.join(" "),
        ABLATION_IDS.join(" ")
    )
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: None,
        seed: 42,
        size: "default".into(),
        ablations: false,
        out_dir: "results".into(),
        metrics: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        trace: None,
        explain: None,
        audit: None,
        faults: FaultPlan::off(),
        threads_explicit: false,
        size_explicit: false,
        bench_record: false,
        bench_out: "BENCH_map_build.json".into(),
        bench_baseline: None,
        bench_out_explicit: false,
        snapshot: None,
        query: None,
        bench_query: false,
        epochs: None,
        epoch_plan: itm_types::EpochPlan::light(),
        epoch_plan_raw: "light".into(),
        epoch_plan_explicit: false,
        epoch_verify: false,
        diff: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let a = argv[i].as_str();
        // The value following a flag, if any (flags never start another
        // flag's value).
        let value = |i: usize| -> Option<String> {
            argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned()
        };
        match a {
            "--exp" => {
                args.exp = value(i);
                i += 2;
            }
            "--seed" => {
                let raw = value(i).unwrap_or_default();
                args.seed = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an integer, got {raw:?}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--size" => {
                // A missing value must not silently mean "default": the
                // size labels bench rows and artifacts, so it follows the
                // same exit-2 contract as --bench-out and friends.
                let Some(v) = value(i) else {
                    eprintln!(
                        "--size expects small|default|large (a comma list \
                         with --bench-record)\n{}",
                        usage()
                    );
                    std::process::exit(2);
                };
                args.size = v;
                args.size_explicit = true;
                i += 2;
            }
            "--ablations" => {
                args.ablations = true;
                i += 1;
            }
            "--threads" => {
                let raw = value(i).unwrap_or_default();
                args.threads = match raw.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--threads expects a positive integer, got {raw:?}");
                        std::process::exit(2);
                    }
                };
                args.threads_explicit = true;
                i += 2;
            }
            "--bench-record" => {
                args.bench_record = true;
                i += 1;
            }
            "--epochs" => {
                let raw = value(i).unwrap_or_default();
                args.epochs = match raw.parse::<u32>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!(
                            "--epochs expects a positive integer, got {raw:?}\n{}",
                            usage()
                        );
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--epoch-plan" => {
                let raw = value(i).unwrap_or_default();
                args.epoch_plan = parse_epoch_plan(&raw);
                args.epoch_plan_raw = raw;
                args.epoch_plan_explicit = true;
                i += 2;
            }
            "--epoch-verify" => {
                args.epoch_verify = true;
                i += 1;
            }
            "--diff" => {
                let (Some(a), Some(b)) = (value(i), value(i + 1)) else {
                    eprintln!("--diff expects two snapshot paths\n{}", usage());
                    std::process::exit(2);
                };
                args.diff = Some((a, b));
                i += 3;
            }
            "--bench-query" => {
                args.bench_query = true;
                i += 1;
            }
            "--snapshot" => match value(i) {
                Some(path) => {
                    args.snapshot = Some(Some(path));
                    i += 2;
                }
                None => {
                    args.snapshot = Some(None);
                    i += 1;
                }
            },
            "--query" => {
                // Greedy: the kind plus every following non-flag operand.
                let mut spec = Vec::new();
                let mut j = i + 1;
                while j < argv.len() && !argv[j].starts_with("--") {
                    spec.push(argv[j].clone());
                    j += 1;
                }
                if spec.is_empty() {
                    eprintln!(
                        "--query expects: point PREFIX SERVICE | reverse ADDR | \
                         route ASN [ASN]\n{}",
                        usage()
                    );
                    std::process::exit(2);
                }
                args.query = Some(spec);
                i = j;
            }
            "--bench-out" => {
                let Some(path) = value(i) else {
                    eprintln!("--bench-out expects a file path\n{}", usage());
                    std::process::exit(2);
                };
                args.bench_out = path;
                args.bench_out_explicit = true;
                i += 2;
            }
            "--bench-baseline" => {
                let Some(path) = value(i) else {
                    eprintln!("--bench-baseline expects a file path\n{}", usage());
                    std::process::exit(2);
                };
                args.bench_baseline = Some(path);
                i += 2;
            }
            "--metrics" => {
                args.metrics = true;
                i += 1;
            }
            "--trace" => match value(i) {
                Some(path) => {
                    args.trace = Some(Some(path));
                    i += 2;
                }
                None => {
                    args.trace = Some(None);
                    i += 1;
                }
            },
            "--audit" => match value(i) {
                Some(spec) => {
                    args.audit = Some(Some(spec));
                    i += 2;
                }
                None => {
                    args.audit = Some(None);
                    i += 1;
                }
            },
            "--explain" => {
                let (Some(pfx), Some(svc)) = (value(i), value(i + 1)) else {
                    eprintln!("--explain expects PREFIX and SERVICE\n{}", usage());
                    std::process::exit(2);
                };
                args.explain = Some((pfx, svc));
                i += 3;
            }
            "--faults" => {
                let raw = value(i).unwrap_or_default();
                args.faults = parse_fault_plan(&raw);
                i += 2;
            }
            "--out" => {
                args.out_dir = value(i).unwrap_or_else(|| "results".into());
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    // Reject unknown experiment ids up front, before the (expensive)
    // substrate build.
    if let Some(exp) = args.exp.as_deref() {
        if !EXPERIMENT_IDS.contains(&exp) && !ABLATION_IDS.contains(&exp) {
            eprintln!("unknown experiment id {exp:?}\n{}", usage());
            std::process::exit(2);
        }
    }
    // Comma-separated sizes exist only in bench-record mode; everywhere
    // else an unknown size silently meaning "default" would be a trap.
    if !args.bench_record && args.size.contains(',') {
        eprintln!(
            "--size takes a comma list only with --bench-record\n{}",
            usage()
        );
        std::process::exit(2);
    }
    // Unknown sizes are usage errors everywhere — checked here, before
    // any filesystem work, so `--size lrage` can never label artifacts
    // from a silently-substituted default build. Bench-record validates
    // its comma list entry-by-entry in `bench_sizes` instead.
    if !args.bench_record && !matches!(args.size.as_str(), "small" | "default" | "large") {
        eprintln!(
            "unknown --size {:?} (small|default|large)\n{}",
            args.size,
            usage()
        );
        std::process::exit(2);
    }
    // The three diverging modes are mutually exclusive.
    if (args.bench_record && args.bench_query)
        || (args.query.is_some() && (args.bench_record || args.bench_query))
    {
        eprintln!(
            "--bench-record, --bench-query, and --query are mutually \
             exclusive\n{}",
            usage()
        );
        std::process::exit(2);
    }
    // Validate the --query spec shape up front: kind + argument count.
    if let Some(spec) = &args.query {
        let ok = match spec.first().map(|s| s.as_str()) {
            Some("point") => spec.len() == 3,
            Some("reverse") => spec.len() == 2,
            Some("route") => spec.len() == 2 || spec.len() == 3,
            _ => false,
        };
        if !ok {
            eprintln!(
                "--query expects: point PREFIX SERVICE | reverse ADDR | \
                 route ASN [ASN]\n{}",
                usage()
            );
            std::process::exit(2);
        }
    }
    // The diff mode is read-mostly and never builds anything; combining
    // it with a build mode would silently ignore one of the two.
    if args.diff.is_some()
        && (args.epochs.is_some()
            || args.query.is_some()
            || args.bench_record
            || args.bench_query
            || args.exp.is_some()
            || args.explain.is_some()
            || args.audit.is_some()
            || args.snapshot.is_some()
            || args.ablations)
    {
        eprintln!("--diff does not combine with other modes\n{}", usage());
        std::process::exit(2);
    }
    // The epoch loop drives its own builds; experiment selection, query
    // modes, and the bench recorders do not compose with it.
    if args.epochs.is_some()
        && (args.query.is_some()
            || args.bench_record
            || args.bench_query
            || args.exp.is_some()
            || args.explain.is_some()
            || args.audit.is_some()
            || args.ablations)
    {
        eprintln!(
            "--epochs does not combine with --exp, --explain, --query, \
             --audit, --ablations, or the bench recorders\n{}",
            usage()
        );
        std::process::exit(2);
    }
    // Epoch sub-flags without the mode itself are silent no-ops — reject.
    if args.epochs.is_none() && (args.epoch_plan_explicit || args.epoch_verify) {
        eprintln!(
            "--epoch-plan and --epoch-verify need --epochs N\n{}",
            usage()
        );
        std::process::exit(2);
    }
    args
}

/// The sizes a `--bench-record` run covers, parsed from `--size` (comma
/// list; default all three). Unknown names are usage errors — unlike the
/// experiment path, nothing here may silently fall back to `default`.
fn bench_sizes(args: &Args) -> Vec<String> {
    let raw = if args.size_explicit {
        args.size.clone()
    } else {
        // --size was not given: record the whole trajectory.
        "small,default,large".to_string()
    };
    let sizes: Vec<String> = raw
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if sizes.is_empty() {
        eprintln!("--bench-record: --size lists no sizes\n{}", usage());
        std::process::exit(2);
    }
    for s in &sizes {
        if !matches!(s.as_str(), "small" | "default" | "large") {
            eprintln!(
                "--bench-record: unknown size {s:?} (small|default|large)\n{}",
                usage()
            );
            std::process::exit(2);
        }
    }
    sizes
}

/// The `--bench-record` mode: one profiled map build per requested size,
/// one schema-versioned row appended to the trajectory file per build.
///
/// Counters are zeroed *after* each substrate build, so a row accounts
/// for the map build alone. Worker count defaults to 1 (unless
/// `--threads` was given) because allocator peaks are interleaving-
/// dependent: at one thread every count and byte in a row except
/// `build_ms`, `peak_rss_bytes`, and `shard_skew_x1000` reproduces
/// exactly for the same seed.
fn bench_record(args: &Args) -> ! {
    let sizes = bench_sizes(args);
    require_writable_file(&args.bench_out);
    let threads = if args.threads_explicit {
        args.threads
    } else {
        1
    };
    itm_obs::alloc::set_enabled(true);
    itm_obs::set_enabled(true);
    let mut new_rows: Vec<serde_json::Value> = Vec::new();
    for size in &sizes {
        let cfg = config_for(size);
        let t0 = Instant::now();
        eprintln!(
            "bench-record: building substrate (size={size}, seed={})…",
            args.seed
        );
        let s = Substrate::build(cfg, args.seed).expect("valid config");
        eprintln!(
            "  substrate up [{:.1?}]; profiling map build…",
            t0.elapsed()
        );
        // Zero every counter now: the row measures the map build, not the
        // substrate generation before it.
        itm_obs::reset();
        itm_obs::alloc::reset();
        let exec = ParallelExecutor::new(threads);
        let t1 = Instant::now();
        let m = TrafficMap::build_with(&s, &MapConfig::default(), &exec).expect("map build");
        let build_ms = t1.elapsed().as_millis() as u64;
        let summary = MapSummary::extract(&s, &m);
        let report = itm_obs::snapshot();
        let resources = report.resources.clone().unwrap_or_default();
        let skew = report
            .histograms
            .get("exec.skew_x1000")
            .map(|h| h.max)
            .unwrap_or(0);
        let top_phases: Vec<serde_json::Value> = resources
            .top_phases(3)
            .into_iter()
            .map(|(name, p)| {
                serde_json::json!({
                    "phase": name,
                    "total_bytes": p.total_bytes,
                    "peak_bytes": p.peak_bytes,
                })
            })
            .collect();
        let peak_rss = match resources.peak_rss_bytes {
            Some(v) => serde_json::Value::from(v),
            None => serde_json::Value::Null,
        };
        eprintln!(
            "  {size}: build {build_ms} ms, tracked peak {} B (total {} B over {} allocs), \
             {} cells, skew x1000 = {skew}",
            resources.alloc.peak_bytes,
            resources.alloc.total_bytes,
            resources.alloc.allocs,
            summary.mapping_cells
        );
        new_rows.push(serde_json::json!({
            "schema_version": BENCH_SCHEMA_VERSION,
            "size": size.as_str(),
            "seed": args.seed,
            "threads": threads as u64,
            "build_ms": build_ms,
            "peak_rss_bytes": peak_rss,
            "tracked_peak_bytes": resources.alloc.peak_bytes,
            "tracked_total_bytes": resources.alloc.total_bytes,
            "allocs": resources.alloc.allocs,
            "deallocs": resources.alloc.deallocs,
            "mapping_cells": summary.mapping_cells as u64,
            "user_prefixes": summary.user_prefixes.len() as u64,
            "route_edges": summary.route_edges as u64,
            "shard_skew_x1000": skew,
            "top_phases": top_phases,
        }));
    }
    append_bench_rows(&args.bench_out, &new_rows);
    eprintln!(
        "bench-record: appended {} row(s) to {}",
        new_rows.len(),
        args.bench_out
    );
    if let Some(baseline) = &args.bench_baseline {
        check_bench_regression(baseline, &new_rows);
    }
    std::process::exit(0);
}

/// Append rows to the trajectory file, creating it (with the schema
/// header) if absent. A file with a different schema version or shape is
/// an error, not something to silently rewrite.
fn append_bench_rows(path: &str, new_rows: &[serde_json::Value]) {
    use serde_json::Value;
    let mut rows: Vec<Value> = Vec::new();
    match std::fs::read_to_string(path) {
        Ok(text) if !text.trim().is_empty() => {
            let v: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("{path}: existing trajectory is not valid JSON: {e}");
                std::process::exit(2);
            });
            match v.get("schema_version").and_then(|s| s.as_u64()) {
                Some(BENCH_SCHEMA_VERSION) => {}
                other => {
                    eprintln!(
                        "{path}: trajectory schema_version {other:?} != {BENCH_SCHEMA_VERSION}"
                    );
                    std::process::exit(2);
                }
            }
            match v.get("rows").and_then(|r| r.as_array()) {
                Some(existing) => rows.extend(existing.iter().cloned()),
                None => {
                    eprintln!("{path}: trajectory has no rows array");
                    std::process::exit(2);
                }
            }
        }
        _ => {}
    }
    rows.extend(new_rows.iter().cloned());
    let doc = serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "rows": rows,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(path, text).expect("write trajectory");
}

/// Compare freshly recorded rows against the latest matching-size row of
/// a baseline trajectory: a >10% growth in peak tracked bytes fails the
/// run (exit 1). Sizes absent from the baseline pass vacuously.
fn check_bench_regression(baseline_path: &str, new_rows: &[serde_json::Value]) {
    use serde_json::Value;
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("--bench-baseline: cannot read {baseline_path}: {e}");
        std::process::exit(2);
    });
    let v: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("--bench-baseline: {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let empty = Vec::new();
    let base_rows = v.get("rows").and_then(|r| r.as_array()).unwrap_or(&empty);
    let mut regressed = false;
    for row in new_rows {
        let size = row.get("size").and_then(|s| s.as_str()).unwrap_or("");
        let new_peak = row
            .get("tracked_peak_bytes")
            .and_then(|p| p.as_u64())
            .unwrap_or(0);
        // Latest baseline row for this size wins.
        let base_peak = base_rows
            .iter()
            .filter(|r| r.get("size").and_then(|s| s.as_str()) == Some(size))
            .filter_map(|r| r.get("tracked_peak_bytes").and_then(|p| p.as_u64()))
            .next_back();
        let Some(base_peak) = base_peak else {
            eprintln!("bench-record: no baseline row for size={size}; skipping check");
            continue;
        };
        // >10% growth fails; integer math, no float drift.
        let limit = base_peak + base_peak / 10;
        if base_peak > 0 && new_peak > limit {
            eprintln!(
                "bench-record: REGRESSION at size={size}: peak tracked bytes \
                 {new_peak} > {limit} (baseline {base_peak} +10%)"
            );
            regressed = true;
        } else {
            eprintln!(
                "bench-record: size={size} peak tracked bytes {new_peak} \
                 within 10% of baseline {base_peak}"
            );
        }
    }
    if regressed {
        std::process::exit(1);
    }
}

/// The snapshot path: explicit `--snapshot FILE` or `<out>/map.snap`.
fn snapshot_path(args: &Args) -> String {
    match &args.snapshot {
        Some(Some(path)) => path.clone(),
        _ => format!("{}/map.snap", args.out_dir),
    }
}

/// Resolve a `--query` PREFIX argument (pfxN, bare index, or a /24 like
/// 10.0.0.0/24) against the snapshot's prefix table.
fn snap_prefix(snap: &itm_serve::Snapshot, raw: &str) -> Option<PrefixId> {
    let text = raw.strip_prefix("pfx").unwrap_or(raw);
    if let Ok(n) = text.parse::<u32>() {
        return ((n as usize) < snap.n_prefixes()).then_some(PrefixId(n));
    }
    let net: itm_types::Ipv4Net = raw.parse().ok()?;
    snap.find_prefix(net)
}

/// Resolve a `--query` SERVICE argument (svcN, bare index, or a domain
/// name) against the snapshot's domain table.
fn snap_service(snap: &itm_serve::Snapshot, raw: &str) -> Option<ServiceId> {
    let text = raw.strip_prefix("svc").unwrap_or(raw);
    if let Ok(n) = text.parse::<u32>() {
        return ((n as usize) < snap.n_services()).then_some(ServiceId(n));
    }
    snap.service_named(raw)
}

/// Resolve a `--query` ASN argument (asN or a bare index).
fn snap_asn(snap: &itm_serve::Snapshot, raw: &str) -> Option<itm_types::Asn> {
    let text = raw.strip_prefix("as").unwrap_or(raw);
    let n: u32 = text.parse().ok()?;
    ((n as usize) < snap.n_ases()).then_some(itm_types::Asn(n))
}

/// The `--query` mode: open the snapshot and answer one lookup, exiting
/// 0 on a hit, 1 when the query is well-formed but the map asserts
/// nothing, and 2 on unresolvable arguments or an unopenable (missing,
/// corrupted, foreign-version) snapshot. Never builds a substrate — the
/// whole point of the serving layer is that queries cost microseconds.
fn run_query(args: &Args, spec: &[String]) -> ! {
    let path = snapshot_path(args);
    let snap = match itm_serve::Snapshot::open(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open snapshot {path}: {e}");
            std::process::exit(2);
        }
    };
    let found = match spec[0].as_str() {
        "point" => {
            let Some(prefix) = snap_prefix(&snap, &spec[1]) else {
                eprintln!("cannot resolve prefix {:?}\n{}", spec[1], usage());
                std::process::exit(2);
            };
            let Some(service) = snap_service(&snap, &spec[2]) else {
                eprintln!("cannot resolve service {:?}\n{}", spec[2], usage());
                std::process::exit(2);
            };
            let net = snap
                .prefix_net(prefix)
                .map(|n| n.to_string())
                .unwrap_or_default();
            let client_as = snap.prefix_owner(prefix).map(|a| a.raw()).unwrap_or(0);
            let domain = snap.domain_of(service).unwrap_or("").to_string();
            match snap.point(service, prefix) {
                Some(ans) => {
                    let front = match ans.front_as {
                        Some(a) => format!("AS{}", a.raw()),
                        None => "unknown AS".into(),
                    };
                    println!(
                        "pfx{} ({net}, client AS{client_as}) × svc{} ({domain}) → {} ({front})",
                        prefix.raw(),
                        service.raw(),
                        ans.addr
                    );
                    println!("  techniques: {}", ans.techniques().join(", "));
                    true
                }
                None => {
                    eprintln!(
                        "no cell asserted for pfx{} ({net}) × svc{} ({domain})",
                        prefix.raw(),
                        service.raw()
                    );
                    false
                }
            }
        }
        "reverse" => {
            let Ok(addr) = spec[1].parse::<itm_types::Ipv4Addr>() else {
                eprintln!("cannot parse address {:?}\n{}", spec[1], usage());
                std::process::exit(2);
            };
            let cells = snap.reverse(addr);
            for (service, prefix) in &cells {
                println!(
                    "svc{} ({}) × pfx{} ({})",
                    service.raw(),
                    snap.domain_of(*service).unwrap_or(""),
                    prefix.raw(),
                    snap.prefix_net(*prefix)
                        .map(|n| n.to_string())
                        .unwrap_or_default()
                );
            }
            match snap.front_as_of(addr) {
                Some(a) => eprintln!(
                    "{addr} (front AS{}): serves {} cell(s)",
                    a.raw(),
                    cells.len()
                ),
                None => eprintln!("{addr}: serves {} cell(s)", cells.len()),
            }
            !cells.is_empty()
        }
        // Shape was validated at parse time, so this arm is "route".
        _ => {
            let Some(a) = snap_asn(&snap, &spec[1]) else {
                eprintln!("cannot resolve ASN {:?}\n{}", spec[1], usage());
                std::process::exit(2);
            };
            match spec.get(2) {
                Some(raw_b) => {
                    let Some(b) = snap_asn(&snap, raw_b) else {
                        eprintln!("cannot resolve ASN {raw_b:?}\n{}", usage());
                        std::process::exit(2);
                    };
                    match snap.edge(a, b) {
                        Some(code) => {
                            println!(
                                "AS{} → AS{}: {}",
                                a.raw(),
                                b.raw(),
                                itm_types::snap::rel::name(code).unwrap_or("?")
                            );
                            true
                        }
                        None => {
                            eprintln!("no edge AS{} → AS{}", a.raw(), b.raw());
                            false
                        }
                    }
                }
                None => {
                    let nbrs: Vec<_> = snap.neighbors(a).collect();
                    for (nbr, code) in &nbrs {
                        println!(
                            "AS{} {}",
                            nbr.raw(),
                            itm_types::snap::rel::name(*code).unwrap_or("?")
                        );
                    }
                    eprintln!("AS{}: {} neighbor(s)", a.raw(), nbrs.len());
                    !nbrs.is_empty()
                }
            }
        }
    };
    std::process::exit(if found { 0 } else { 1 });
}

/// The `--bench-query` mode: build the map once at `--size` (default
/// `default`), serialize it, open the snapshot, and time a deterministic
/// mix of ~2M point lookups (half sampled from live cells, half uniform
/// over the id space). One schema-versioned row lands in the
/// `BENCH_query.json` trajectory (`--bench-out` overrides the path).
///
/// The query list is pre-generated from the run seed so the timed loop
/// measures lookups only, and the same seed replays the same mix.
fn bench_query(args: &Args) -> ! {
    use rand::Rng;
    let bench_out = if args.bench_out_explicit {
        args.bench_out.clone()
    } else {
        "BENCH_query.json".to_string()
    };
    require_writable_file(&bench_out);
    let cfg = config_for(&args.size);
    let t0 = Instant::now();
    eprintln!(
        "bench-query: building substrate (size={}, seed={})…",
        args.size, args.seed
    );
    let s = Substrate::build(cfg, args.seed).expect("valid config");
    eprintln!(
        "  substrate up [{:.1?}]; building map ({} threads)…",
        t0.elapsed(),
        args.threads
    );
    let exec = ParallelExecutor::new(args.threads);
    let map = TrafficMap::build_with(&s, &MapConfig::default(), &exec).expect("map build");
    eprintln!("  map built [{:.1?}]; serializing snapshot…", t0.elapsed());
    let bytes = itm_core::snapshot_bytes(&s, &map);
    let snapshot_bytes_len = bytes.len() as u64;
    let snap = itm_serve::Snapshot::from_bytes(bytes).expect("fresh snapshot validates");
    let n_cells = snap.n_cells();
    let n_services = snap.n_services() as u32;
    let n_prefixes = snap.n_prefixes() as u32;

    const N_QUERIES: usize = 2_000_000;
    let mut rng = itm_types::SeedDomain::new(args.seed).rng("bench.query");
    let mut queries: Vec<(u32, u32)> = Vec::with_capacity(N_QUERIES);
    for k in 0..N_QUERIES {
        if k % 2 == 0 && n_cells > 0 {
            // A live cell: guaranteed hit.
            let (service, prefix, _) = snap
                .cell(rng.gen_range(0..n_cells))
                .expect("index in range");
            queries.push((service.raw(), prefix.raw()));
        } else {
            // Uniform over the id space: overwhelmingly misses.
            queries.push((rng.gen_range(0..n_services), rng.gen_range(0..n_prefixes)));
        }
    }

    eprintln!("  timing {N_QUERIES} point lookups…");
    let t1 = Instant::now();
    let mut hits = 0u64;
    for &(service, prefix) in &queries {
        if let Some(ans) = snap.point(ServiceId(service), PrefixId(prefix)) {
            hits += 1;
            std::hint::black_box(ans.addr.0);
        }
    }
    let elapsed = t1.elapsed();
    let qps = (N_QUERIES as f64 / elapsed.as_secs_f64()) as u64;
    eprintln!(
        "  {qps} queries/sec ({N_QUERIES} lookups, {hits} hits, {} ms) \
         over a {snapshot_bytes_len} byte snapshot of {n_cells} cells",
        elapsed.as_millis()
    );
    append_bench_rows(
        &bench_out,
        &[serde_json::json!({
            "schema_version": BENCH_SCHEMA_VERSION,
            "size": args.size.as_str(),
            "seed": args.seed,
            "threads": args.threads as u64,
            "queries": N_QUERIES as u64,
            "elapsed_ms": elapsed.as_millis() as u64,
            "qps": qps,
            "hits": hits,
            "cells": n_cells as u64,
            "snapshot_bytes": snapshot_bytes_len,
        })],
    );
    eprintln!("bench-query: appended 1 row to {bench_out}");
    std::process::exit(0);
}

/// JSON null for `None`, the displayed value otherwise.
fn opt_json<T: std::fmt::Display>(v: Option<T>) -> serde_json::Value {
    match v {
        Some(x) => serde_json::Value::from(x.to_string()),
        None => serde_json::Value::Null,
    }
}

/// The `--diff` mode: open two snapshots, compute every cell and route
/// delta between them, write the deterministic `<out>/map_diff.json`,
/// and print a kind-by-kind tally. Unopenable snapshots (missing,
/// corrupted, foreign-version) and snapshots of different universes exit
/// 2; any computed diff — including an empty one — exits 0.
fn run_diff(args: &Args, path_a: &str, path_b: &str) -> ! {
    let open = |path: &str| match itm_serve::Snapshot::open(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--diff: cannot open snapshot {path}: {e}");
            std::process::exit(2);
        }
    };
    let a = open(path_a);
    let b = open(path_b);
    let diff = match itm_serve::MapDiff::compute(&a, &b) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("--diff: {path_a} vs {path_b}: {e}");
            std::process::exit(2);
        }
    };
    ensure_out_dir(&args.out_dir);
    let cells: Vec<serde_json::Value> = diff
        .cells
        .iter()
        .map(|d| {
            serde_json::json!({
                "kind": d.kind(),
                "service": d.service.raw(),
                "domain": a.domain_of(d.service).unwrap_or(""),
                "prefix": d.prefix.raw(),
                "net": opt_json(a.prefix_net(d.prefix)),
                "old_addr": opt_json(d.old_addr),
                "new_addr": opt_json(d.new_addr),
                "old_techniques": d.old_techniques(),
                "new_techniques": d.new_techniques(),
            })
        })
        .collect();
    let routes: Vec<serde_json::Value> = diff
        .routes
        .iter()
        .map(|d| {
            serde_json::json!({
                "kind": d.kind(),
                "from": d.from.raw(),
                "to": d.to.raw(),
                "old_rel": opt_json(d.old_kind.and_then(itm_types::snap::rel::name)),
                "new_rel": opt_json(d.new_kind.and_then(itm_types::snap::rel::name)),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": a.seed(),
        "a": path_a,
        "b": path_b,
        "cells": cells,
        "routes": routes,
    });
    let out = format!("{}/map_diff.json", args.out_dir);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(&out, text).expect("write diff report");
    for kind in ["added", "removed", "moved", "re-evidenced"] {
        println!("cells {kind}: {}", diff.n_cells_of_kind(kind));
    }
    println!("route deltas: {}", diff.routes.len());
    if diff.is_empty() {
        eprintln!("snapshots are identical; wrote empty delta to {out}");
    } else {
        eprintln!(
            "wrote {} cell and {} route delta(s) to {out}",
            diff.cells.len(),
            diff.routes.len()
        );
    }
    std::process::exit(0);
}

/// The `--epochs` mode: one full build, then N epochs of deterministic
/// churn, each followed by an incremental rebuild of exactly the dirty
/// campaigns. Per-epoch rows land in `<out>/epoch_metrics.json`; with
/// `--snapshot` every epoch's map is serialized (the final epoch also to
/// the base path, so `--query` and `--diff` pick it up unadorned). With
/// `--epoch-verify`, every epoch also runs a from-scratch build and the
/// run dies (exit 1) unless the incremental map is byte-identical —
/// recording incremental-vs-full speedup rows to the `BENCH_epoch.json`
/// trajectory.
fn run_epochs(args: &Args, epochs: u32) -> ! {
    use itm_core::{apply_epoch, build_incremental, map_fingerprint};
    ensure_out_dir(&args.out_dir);
    let metrics_path = format!("{}/epoch_metrics.json", args.out_dir);
    require_writable_file(&metrics_path);
    let bench_out = if args.bench_out_explicit {
        args.bench_out.clone()
    } else {
        "BENCH_epoch.json".to_string()
    };
    if args.epoch_verify {
        require_writable_file(&bench_out);
    }
    let snap_base: Option<String> = args.snapshot.as_ref().map(|_| snapshot_path(args));
    if let Some(base) = &snap_base {
        require_writable_file(base);
    }

    let cfg = config_for(&args.size);
    let t0 = Instant::now();
    eprintln!(
        "building substrate (size={}, seed={})…",
        args.size, args.seed
    );
    let mut s = Substrate::build(cfg, args.seed).expect("valid config");
    eprintln!("  substrate up [{:.1?}]", t0.elapsed());
    let exec = ParallelExecutor::new(args.threads);
    let map_cfg = MapConfig {
        faults: args.faults.clone(),
        ..Default::default()
    };

    let write_snap = |s: &Substrate, map: &TrafficMap, epoch: u32| {
        let Some(base) = &snap_base else { return };
        let path = format!("{base}.epoch{epoch}");
        match itm_core::write_snapshot(s, map, &path) {
            Ok(n) => eprintln!("  wrote {path} ({n} bytes)"),
            Err(e) => {
                eprintln!("cannot write snapshot {path}: {e}");
                std::process::exit(2);
            }
        }
    };

    eprintln!(
        "epoch 0: full build ({} threads, plan {})…",
        args.threads, args.epoch_plan_raw
    );
    let t = Instant::now();
    let mut map = TrafficMap::build_with(&s, &map_cfg, &exec).expect("map build");
    let full0_ms = t.elapsed().as_millis() as u64;
    eprintln!(
        "  built [{} ms]: {} cells",
        full0_ms,
        map.user_mapping.mapping.len()
    );
    write_snap(&s, &map, 0);

    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut bench_rows: Vec<serde_json::Value> = Vec::new();
    rows.push(serde_json::json!({
        "epoch": 0u64,
        "actions": 0u64,
        "dirty": Vec::<&str>::new(),
        "build_ms": full0_ms,
        "mapping_cells": map.user_mapping.mapping.len() as u64,
        "fingerprint": format!("{:016x}", map_fingerprint(&s, &map)),
    }));

    for epoch in 1..=epochs {
        let (actions, dirty) = apply_epoch(&mut s, &args.epoch_plan, epoch);
        let t = Instant::now();
        map = build_incremental(&s, &map_cfg, &exec, map, &dirty).expect("incremental build");
        let inc_ms = t.elapsed().as_millis() as u64;
        eprintln!(
            "epoch {epoch}: {} mutation(s), dirty [{}], incremental rebuild {} ms",
            actions.len(),
            dirty.names().join(" "),
            inc_ms
        );
        rows.push(serde_json::json!({
            "epoch": u64::from(epoch),
            "actions": actions.len() as u64,
            "dirty": dirty.names(),
            "build_ms": inc_ms,
            "mapping_cells": map.user_mapping.mapping.len() as u64,
            "fingerprint": format!("{:016x}", map_fingerprint(&s, &map)),
        }));
        if args.epoch_verify {
            let t = Instant::now();
            let full = TrafficMap::build_with(&s, &map_cfg, &exec).expect("map build");
            let full_ms = t.elapsed().as_millis() as u64;
            let identical = itm_core::snapshot_bytes(&s, &map)
                == itm_core::snapshot_bytes(&s, &full)
                && map_fingerprint(&s, &map) == map_fingerprint(&s, &full);
            if !identical {
                eprintln!(
                    "epoch {epoch}: INCREMENTAL MAP DIVERGED from the \
                     from-scratch rebuild (plan {}, seed {})",
                    args.epoch_plan_raw, args.seed
                );
                std::process::exit(1);
            }
            let speedup_x1000 = full_ms.saturating_mul(1000) / inc_ms.max(1);
            eprintln!(
                "  verified byte-identical; full rebuild {} ms (speedup x{}.{:03})",
                full_ms,
                speedup_x1000 / 1000,
                speedup_x1000 % 1000
            );
            bench_rows.push(serde_json::json!({
                "schema_version": BENCH_SCHEMA_VERSION,
                "size": args.size.as_str(),
                "seed": args.seed,
                "threads": args.threads as u64,
                "plan": args.epoch_plan_raw.as_str(),
                "epoch": u64::from(epoch),
                "incremental_ms": inc_ms,
                "full_ms": full_ms,
                "speedup_x1000": speedup_x1000,
                "dirty": dirty.names(),
                "byte_identical": true,
            }));
        }
        write_snap(&s, &map, epoch);
    }

    // The final epoch's snapshot also lands at the base path, so query
    // and diff tooling finds the freshest map without a suffix.
    if let (Some(base), true) = (&snap_base, epochs > 0) {
        match itm_core::write_snapshot(&s, &map, base) {
            Ok(n) => eprintln!("  wrote {base} ({n} bytes)"),
            Err(e) => {
                eprintln!("cannot write snapshot {base}: {e}");
                std::process::exit(2);
            }
        }
    }

    let doc = serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "size": args.size.as_str(),
        "seed": args.seed,
        "threads": args.threads as u64,
        "plan": args.epoch_plan_raw.as_str(),
        "epochs": u64::from(epochs),
        "rows": rows,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(&metrics_path, text).expect("write epoch metrics");
    eprintln!("wrote {metrics_path}");
    if args.epoch_verify {
        append_bench_rows(&bench_out, &bench_rows);
        eprintln!(
            "epochs: appended {} row(s) to {bench_out}",
            bench_rows.len()
        );
    }
    eprintln!(
        "ran {epochs} epoch(s) under plan {} [total {:.1?}]",
        args.epoch_plan_raw,
        t0.elapsed()
    );
    std::process::exit(0);
}

/// Resolve a `--faults` argument: a named profile (`off`, `light`,
/// `heavy`) or a path to a JSON plan file. Unknown profiles, unreadable
/// files, malformed JSON, and out-of-range rates are all usage errors
/// (exit 2) caught before the expensive substrate build.
fn parse_fault_plan(raw: &str) -> FaultPlan {
    if raw.is_empty() {
        eprintln!("--faults expects off|light|heavy|FILE\n{}", usage());
        std::process::exit(2);
    }
    if let Some(plan) = FaultPlan::profile(raw) {
        return plan;
    }
    // Not a named profile: treat as a JSON plan file. Bare words that
    // were meant as profile names fall through here and fail the read
    // with a clear message either way.
    let text = match std::fs::read_to_string(raw) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "--faults: {raw:?} is neither a profile (off|light|heavy) \
                 nor a readable plan file: {e}\n{}",
                usage()
            );
            std::process::exit(2);
        }
    };
    let plan = match fault_plan_from_json(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("--faults: cannot parse plan file {raw}: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = plan.validate() {
        eprintln!("--faults: invalid plan in {raw}: {e}\n{}", usage());
        std::process::exit(2);
    }
    plan
}

/// Parse a JSON fault plan: an object whose fields all default to the
/// off plan's zeros, so `{}` is a valid (clean) plan and a partial file
/// like `{"loss": 0.1, "max_retries": 2}` works as expected.
fn fault_plan_from_json(text: &str) -> Result<FaultPlan, serde_json::Error> {
    use serde_json::{Error, Value};
    let v: Value = serde_json::from_str(text)?;
    if !matches!(v, Value::Object(_)) {
        return Err(Error::new("fault plan: expected a JSON object"));
    }
    let rate = |name: &str| -> Result<f64, Error> {
        match v.get(name) {
            None => Ok(0.0),
            Some(x) => x
                .as_f64()
                .ok_or_else(|| Error::new(format!("fault plan: {name} must be a number"))),
        }
    };
    let count = |name: &str| -> Result<u64, Error> {
        match v.get(name) {
            None => Ok(0),
            Some(x) => x.as_u64().ok_or_else(|| {
                Error::new(format!("fault plan: {name} must be a non-negative integer"))
            }),
        }
    };
    Ok(FaultPlan {
        loss: rate("loss")?,
        timeout: rate("timeout")?,
        refusal: rate("refusal")?,
        churn: rate("churn")?,
        max_retries: count("max_retries")?.min(u64::from(u32::MAX)) as u32,
        backoff_base_secs: count("backoff_base_secs")?,
        backoff_cap_secs: count("backoff_cap_secs")?,
    })
}

/// Resolve an `--epoch-plan` argument: a named profile (`off`, `light`,
/// `heavy`) or a path to a JSON plan file. Unknown profiles, unreadable
/// files, malformed JSON, and out-of-range rates are all usage errors
/// (exit 2) caught before the expensive substrate build — the same
/// contract as `--faults`.
fn parse_epoch_plan(raw: &str) -> itm_types::EpochPlan {
    if raw.is_empty() {
        eprintln!("--epoch-plan expects off|light|heavy|FILE\n{}", usage());
        std::process::exit(2);
    }
    if let Some(plan) = itm_types::EpochPlan::profile(raw) {
        return plan;
    }
    let text = match std::fs::read_to_string(raw) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "--epoch-plan: {raw:?} is neither a profile (off|light|heavy) \
                 nor a readable plan file: {e}\n{}",
                usage()
            );
            std::process::exit(2);
        }
    };
    let plan = match epoch_plan_from_json(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!(
                "--epoch-plan: cannot parse plan file {raw}: {e}\n{}",
                usage()
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = plan.validate() {
        eprintln!("--epoch-plan: invalid plan in {raw}: {e}\n{}", usage());
        std::process::exit(2);
    }
    plan
}

/// Parse a JSON epoch plan: an object whose fields all default to the
/// off plan's zeros, so `{}` is a valid (static) plan and a partial file
/// like `{"link_flaps": 4, "rehome_services": 2}` works as expected.
fn epoch_plan_from_json(text: &str) -> Result<itm_types::EpochPlan, serde_json::Error> {
    use serde_json::{Error, Value};
    let v: Value = serde_json::from_str(text)?;
    if !matches!(v, Value::Object(_)) {
        return Err(Error::new("epoch plan: expected a JSON object"));
    }
    let num = |name: &str| -> Result<f64, Error> {
        match v.get(name) {
            None => Ok(0.0),
            Some(x) => x
                .as_f64()
                .ok_or_else(|| Error::new(format!("epoch plan: {name} must be a number"))),
        }
    };
    let count = |name: &str| -> Result<u32, Error> {
        match v.get(name) {
            None => Ok(0),
            Some(x) => x
                .as_u64()
                .ok_or_else(|| {
                    Error::new(format!("epoch plan: {name} must be a non-negative integer"))
                })
                .map(|n| n.min(u64::from(u32::MAX)) as u32),
        }
    };
    Ok(itm_types::EpochPlan {
        resolver_churn: num("resolver_churn")?,
        link_flaps: count("link_flaps")?,
        vm_churn: num("vm_churn")?,
        rehome_services: count("rehome_services")?,
        diurnal_shift_hours: num("diurnal_shift_hours")?,
    })
}

/// Experiments that build (and share) the full traffic map.
fn needs_map(id: &str) -> bool {
    matches!(
        id,
        "map" | "table1" | "fig1a" | "fig1b" | "fig2" | "coverage" | "ecs"
    )
}

/// Resolve a `--audit` sub-option string: a comma list of `key=value`
/// pairs where the only recognized key is `out` (the report path).
/// Unknown sub-options are usage errors (exit 2), caught before any
/// expensive work. Returns the explicit output path, if one was given.
fn parse_audit_out(spec: &str) -> Option<String> {
    let mut out = None;
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some(("out", path)) if !path.is_empty() => out = Some(path.to_string()),
            _ => {
                eprintln!(
                    "--audit: unknown sub-option {part:?} (expected out=FILE)\n{}",
                    usage()
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Resolve a size name to a substrate config. Unknown names are usage
/// errors (exit 2): a typo'd `--size` must never silently run — and
/// mislabel — a default-size build. `parse_args` rejects bad sizes before
/// any filesystem work; this arm is the backstop for new call sites.
fn config_for(size: &str) -> SubstrateConfig {
    match size {
        "small" => SubstrateConfig::small(),
        "default" => SubstrateConfig::default(),
        "large" => SubstrateConfig {
            topology: TopologyConfig::large(),
            ..Default::default()
        },
        other => {
            eprintln!(
                "unknown --size {other:?} (small|default|large)\n{}",
                usage()
            );
            std::process::exit(2);
        }
    }
}

/// Create the output directory and verify it is actually writable
/// (`create_dir_all` succeeds on an existing read-only directory), exiting
/// with status 2 on failure as for any other bad invocation.
fn ensure_out_dir(dir: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create output dir {dir}: {e}");
        std::process::exit(2);
    }
    let probe = format!("{dir}/.write_probe");
    if let Err(e) = std::fs::write(&probe, b"") {
        eprintln!("output dir {dir} is not writable: {e}");
        std::process::exit(2);
    }
    let _ = std::fs::remove_file(&probe);
}

/// Verify an output file path is writable before doing any expensive
/// work, exiting with status 2 otherwise — the same preflight contract as
/// `ensure_out_dir`, so `--trace FILE` can no longer burn a full map
/// build and then fail at the final write. Opens in append mode so an
/// existing file's contents survive a later abort.
fn require_writable_file(path: &str) {
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        eprintln!("output file {path} is not writable: {e}");
        std::process::exit(2);
    }
}

/// Turn tracing on for this process: virtual timestamps seeded from the
/// run seed, ring reset so event ids start from zero. The metrics registry
/// is enabled too so span enter/exit events appear as Chrome durations.
fn enable_tracing(seed: u64) {
    itm_obs::set_enabled(true);
    itm_obs::trace::set_seed(seed);
    itm_obs::trace::reset();
    itm_obs::trace::set_enabled(true);
}

/// Resolve a `--explain` PREFIX argument (pfxN, bare index, or /24).
fn parse_prefix(s: &Substrate, raw: &str) -> Option<u32> {
    let text = raw.strip_prefix("pfx").unwrap_or(raw);
    if let Ok(n) = text.parse::<u32>() {
        return (n < s.topo.prefixes.len() as u32).then_some(n);
    }
    let net: itm_types::Ipv4Net = raw.parse().ok()?;
    s.topo.prefixes.find(net).map(|rec| rec.id.raw())
}

/// Resolve a `--explain` SERVICE argument (svcN, bare index, or domain).
fn parse_service(s: &Substrate, raw: &str) -> Option<u32> {
    let text = raw.strip_prefix("svc").unwrap_or(raw);
    if let Ok(n) = text.parse::<u32>() {
        return (n < s.catalog.len() as u32).then_some(n);
    }
    s.catalog.by_domain(raw).map(|svc| svc.id.raw())
}

/// The `--explain` mode: build the map with tracing on, index the trace,
/// and print the evidence chain behind one asserted edge. When the edge
/// is missing and the build ran under a fault plan, the recorded probe
/// failures for that cell explain the gap.
fn explain_edge(s: &Substrate, pfx_arg: &str, svc_arg: &str, faults: &FaultPlan) -> ! {
    let Some(prefix) = parse_prefix(s, pfx_arg) else {
        eprintln!("cannot resolve prefix {pfx_arg:?}\n{}", usage());
        std::process::exit(2);
    };
    let Some(service) = parse_service(s, svc_arg) else {
        eprintln!("cannot resolve service {svc_arg:?}\n{}", usage());
        std::process::exit(2);
    };
    let t = Instant::now();
    eprintln!("building map with tracing enabled…");
    let map_cfg = MapConfig {
        faults: faults.clone(),
        // Claim tables feed the per-technique verdict lines below.
        record_claims: true,
        ..Default::default()
    };
    let map = TrafficMap::build(s, &map_cfg).expect("map build");
    eprintln!("  map built [{:.1?}]", t.elapsed());
    let snap = itm_obs::trace::snapshot();
    eprintln!(
        "  {} trace events captured ({} dropped)",
        snap.records.len(),
        snap.dropped_events
    );
    let index = ProvenanceIndex::build(&snap);
    let found = match index.explain(prefix, service) {
        Some(chain) => {
            println!("{}", chain.render());
            true
        }
        None => {
            let failures = index.failures(prefix, service);
            if failures.is_empty() {
                eprintln!(
                    "no edge asserted for pfx{prefix} × svc{service}; the map \
                     did not measure that cell (try a user-access prefix and an \
                     ECS service, or list edges via a larger trace capacity)"
                );
            } else {
                eprintln!(
                    "no edge asserted for pfx{prefix} × svc{service}; \
                     {} recorded probe failure(s) explain the gap:",
                    failures.len()
                );
                const FAILURE_CAP: usize = 20;
                for r in failures.iter().take(FAILURE_CAP) {
                    eprintln!(
                        "  [{} {}] {}",
                        r.technique.as_str(),
                        r.kind.as_str(),
                        r.detail
                    );
                }
                if failures.len() > FAILURE_CAP {
                    eprintln!("  … and {} more", failures.len() - FAILURE_CAP);
                }
            }
            false
        }
    };
    print_cell_verdicts(s, &map, prefix, service);
    std::process::exit(if found { 0 } else { 1 });
}

/// The `--explain` quality addendum: what every replica estimator claims
/// for the cell, how each claim scores against the substrate's ground
/// truth, and the estimator's overall accuracy on this build for context.
fn print_cell_verdicts(s: &Substrate, map: &TrafficMap, prefix: u32, service: u32) {
    let rebuilt;
    let claims = match map.claims.as_ref() {
        Some(c) => c,
        None => {
            rebuilt = itm_core::MapClaims::record(s, map);
            &rebuilt
        }
    };
    let t = Instant::now();
    eprintln!("scoring techniques against ground truth…");
    let q = itm_core::audit(s, map);
    eprintln!("  audit done [{:.1?}]", t.elapsed());
    let (truth, verdicts) =
        itm_core::audit::explain_cell(s, map, claims, PrefixId(prefix), ServiceId(service));
    println!(
        "\ntechnique verdicts for pfx{prefix} × svc{service} (ground truth: AS{}):",
        truth.raw()
    );
    for v in &verdicts {
        let claim = match v.claimed {
            Some(a) => format!("AS{}", a.raw()),
            None => "-".to_string(),
        };
        let ctx = q
            .techniques
            .get(v.technique)
            .map(|t| {
                format!(
                    "overall precision {:.3}, coverage {:.3}",
                    t.overall.precision(),
                    t.overall.coverage()
                )
            })
            .unwrap_or_default();
        println!(
            "  {:<13} {:<12} {:<10} ({ctx})",
            v.technique,
            v.verdict.as_str(),
            claim
        );
    }
}

fn main() {
    let args = parse_args();
    if args.bench_record {
        bench_record(&args);
    }
    if args.bench_query {
        bench_query(&args);
    }
    // Query mode is read-only: it neither builds a substrate nor touches
    // the output dir, it just opens the snapshot and answers.
    if let Some(spec) = &args.query {
        run_query(&args, spec);
    }
    // Diff mode opens two existing snapshots; it never builds anything.
    if let Some((a, b)) = &args.diff {
        run_diff(&args, a, b);
    }
    // The continuous-map loop drives its own full + incremental builds.
    if let Some(n) = args.epochs {
        run_epochs(&args, n);
    }
    ensure_out_dir(&args.out_dir);

    // Resolve the snapshot destination and preflight it with the other
    // output paths; like --audit, a snapshot needs the assembled map, so
    // `--exp` (when given) must name a map-building experiment.
    let snapshot_file: Option<String> = args.snapshot.as_ref().map(|_| snapshot_path(&args));
    if snapshot_file.is_some() {
        if let Some(exp) = args.exp.as_deref() {
            if !needs_map(exp) {
                eprintln!(
                    "--snapshot needs a map-building experiment (map table1 \
                     fig1a fig1b fig2 coverage ecs), got {exp:?}\n{}",
                    usage()
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &snapshot_file {
        require_writable_file(path);
    }

    // Resolve the trace destination now and preflight it alongside the
    // output dir: both failure modes exit 2 before the substrate build.
    let trace_file: Option<String> = args.trace.as_ref().map(|t| {
        t.clone()
            .unwrap_or_else(|| format!("{}/trace.json", args.out_dir))
    });
    if let Some(path) = &trace_file {
        require_writable_file(path);
    }

    // Resolve the audit destination and preflight it the same way. An
    // audit needs the assembled map, so `--exp` (when given) must name a
    // map-building experiment — also checked before the substrate build.
    let audit_file: Option<String> = args.audit.as_ref().map(|spec| {
        spec.as_deref()
            .and_then(parse_audit_out)
            .unwrap_or_else(|| format!("{}/map_quality.json", args.out_dir))
    });
    if audit_file.is_some() {
        if let Some(exp) = args.exp.as_deref() {
            if !needs_map(exp) {
                eprintln!(
                    "--audit needs a map-building experiment (map table1 fig1a \
                     fig1b fig2 coverage ecs), got {exp:?}\n{}",
                    usage()
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &audit_file {
        require_writable_file(path);
    }

    if args.trace.is_some() || args.explain.is_some() {
        enable_tracing(args.seed);
    }

    if args.metrics {
        itm_obs::set_enabled(true);
        itm_obs::reset();
        // Metrics runs profile memory too: metrics.json gains a
        // `resources` section (peak RSS, tracked bytes, per-phase
        // attribution). Map bytes are unaffected either way.
        itm_obs::alloc::set_enabled(true);
        itm_obs::alloc::reset();
        // Pre-register the headline probe counters so metrics.json always
        // carries them (at zero) even when a run skips a technique.
        itm_obs::counter_with("probe.queries", &[("technique", "cache_probe")]);
        itm_obs::counter_with("probe.queries", &[("technique", "ecs_mapping")]);
        itm_obs::counter_with("probe.log_lines", &[("technique", "root_crawl")]);
        itm_obs::counter_with("probe.pings", &[("technique", "ipid_probe")]);
        itm_obs::counter_with("probe.connects", &[("technique", "tls_scan")]);
        itm_obs::counter_with("probe.connects", &[("technique", "sni_scan")]);
    }

    let cfg = config_for(&args.size);
    let t0 = Instant::now();
    eprintln!(
        "building substrate (size={}, seed={})…",
        args.size, args.seed
    );
    let s = Substrate::build(cfg.clone(), args.seed).expect("valid config");
    eprintln!(
        "  {} ASes, {} links, {} /24s, {} services [{:.1?}]",
        s.topo.n_ases(),
        s.topo.links.len(),
        s.topo.prefixes.len(),
        s.catalog.len(),
        t0.elapsed()
    );

    if let Some((pfx_arg, svc_arg)) = &args.explain {
        explain_edge(&s, pfx_arg, svc_arg, &args.faults);
    }

    // Experiments that need the full map share one build.
    let want = |id: &str| args.exp.as_deref().map(|e| e == id).unwrap_or(true);

    let map = if ["map", "table1", "fig1a", "fig1b", "fig2", "coverage", "ecs"]
        .iter()
        .any(|id| want(id) && needs_map(id))
    {
        let t1 = Instant::now();
        if args.faults.is_off() {
            eprintln!("running measurement pipeline ({} threads)…", args.threads);
        } else {
            eprintln!(
                "running measurement pipeline ({} threads, faults on: \
                 loss={} timeout={} refusal={} churn={} retries={})…",
                args.threads,
                args.faults.loss,
                args.faults.timeout,
                args.faults.refusal,
                args.faults.churn,
                args.faults.max_retries
            );
        }
        let exec = ParallelExecutor::new(args.threads);
        let map_cfg = MapConfig {
            faults: args.faults.clone(),
            record_claims: audit_file.is_some(),
            ..Default::default()
        };
        let m = TrafficMap::build_with(&s, &map_cfg, &exec).expect("map build");
        eprintln!("  map built [{:.1?}]", t1.elapsed());
        Some(m)
    } else {
        None
    };

    // The map snapshot: a pure function of (substrate, map), so the file
    // is byte-identical at any thread count and any machine for one seed.
    if let (Some(path), Some(map)) = (&snapshot_file, &map) {
        let t = Instant::now();
        eprintln!("writing snapshot…");
        match itm_core::write_snapshot(&s, map, path) {
            Ok(n) => eprintln!("  wrote {path} ({n} bytes) [{:.1?}]", t.elapsed()),
            Err(e) => {
                eprintln!("cannot write snapshot {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    // The quality audit: score every technique against ground truth and
    // write the schema-versioned report. Pure function of (substrate,
    // map), so it is byte-identical at any thread count; with --audit off
    // no artifact changes by a byte.
    if let (Some(path), Some(map)) = (&audit_file, &map) {
        let t = Instant::now();
        eprintln!("auditing map quality…");
        let q = itm_core::audit(&s, map);
        assert!(q.is_consistent(), "audit accounting invariant violated");
        let mut v = q.to_json_value();
        // A faulted audit carries the per-technique fault accounting,
        // exactly as the map summary does; a clean one omits the key.
        if !map.fault_report.is_empty() {
            if let serde_json::Value::Object(root) = &mut v {
                let mut faults = serde_json::Map::new();
                for (technique, st) in &map.fault_report {
                    faults.insert(
                        technique.clone(),
                        serde_json::json!({
                            "issued": st.issued(),
                            "observed": st.observed,
                            "degraded": st.degraded,
                            "lost": st.lost,
                            "retries": st.retries,
                        }),
                    );
                }
                root.insert("faults".into(), serde_json::Value::Object(faults));
            }
        }
        let text = serde_json::to_string_pretty(&v).expect("serializable");
        std::fs::write(path, text).expect("write audit report");
        eprintln!("  wrote {path} [{:.1?}]", t.elapsed());
    }

    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut run = |id: &str, f: &mut dyn FnMut() -> ExperimentResult| {
        if want(id) {
            let t = Instant::now();
            eprintln!("running {id}…");
            let r = f();
            eprintln!("  done [{:.1?}]", t.elapsed());
            results.push(r);
        }
    };

    if let Some(map) = &map {
        run("map", &mut || {
            let summary = MapSummary::extract(&s, map);
            let path = format!("{}/map_summary.json", args.out_dir);
            std::fs::write(&path, summary.to_json().expect("serializable"))
                .expect("write map summary");
            eprintln!("  wrote {path}");
            ExperimentResult {
                id: "map",
                title: "assembled traffic map (map_summary.json)".into(),
                csv_header: "metric,value".into(),
                csv_rows: vec![
                    format!("user_prefixes,{}", summary.user_prefixes.len()),
                    format!("mapping_cells,{}", summary.mapping_cells),
                    format!("offnets,{}", summary.offnets.len()),
                    format!("route_edges,{}", summary.route_edges),
                    format!("invisible_peering,{:.4}", summary.invisible_peering),
                ],
                headline: vec![
                    (
                        "user prefixes".into(),
                        summary.user_prefixes.len().to_string(),
                    ),
                    ("mapping cells".into(), summary.mapping_cells.to_string()),
                    (
                        "offnet deployments".into(),
                        summary.offnets.len().to_string(),
                    ),
                    ("route edges".into(), summary.route_edges.to_string()),
                ],
            }
        });
        run("table1", &mut || experiments::table1(&s, map));
        run("fig1a", &mut || experiments::fig1a(&s, map));
        run("fig1b", &mut || experiments::fig1b(&s, map));
        run("fig2", &mut || experiments::fig2(&s, map));
        run("coverage", &mut || experiments::coverage_claims(&s, map));
        run("ecs", &mut || experiments::ecs(&s, map));
    }
    run("pathlen", &mut || experiments::pathlen(&s));
    run("anycast", &mut || experiments::anycast(&s));
    run("pathpred", &mut || experiments::pathpred(&s));
    run("recommend", &mut || experiments::recommend(&s));
    run("ipid", &mut || experiments::ipid(&s));
    run("visibility", &mut || experiments::visibility(&s));
    run("consolidation", &mut || experiments::consolidation(&s));
    run("cachehost", &mut || experiments::cachehost(&s));
    run("assoc", &mut || experiments::assoc(&s));
    run("staleness", &mut || experiments::staleness(&s));

    if args.ablations
        || args
            .exp
            .as_deref()
            .map(|e| e.starts_with("ab_"))
            .unwrap_or(false)
    {
        run("ab_ecs_scope", &mut || ablations::ab_ecs_scope(&s));
        run("ab_resolver_assumption", &mut || {
            ablations::ab_resolver_assumption(&cfg, args.seed)
        });
        run("ab_collectors", &mut || ablations::ab_collectors(&s));
        run("ab_recommend_features", &mut || {
            ablations::ab_recommend_features(&s)
        });
        run("ab_probe_budget", &mut || ablations::ab_probe_budget(&s));
    }

    if results.is_empty() {
        // `--exp ab_*` without --ablations still runs (handled above), so
        // the only way here is an ablation id filtered out by a logic bug.
        eprintln!(
            "no experiment matched {:?}\n{}",
            args.exp.as_deref().unwrap_or(""),
            usage()
        );
        std::process::exit(2);
    }

    if args.metrics {
        let report = itm_obs::snapshot();
        let mut v = report.to_json();
        // A faulted metrics run surfaces the per-technique fault
        // accounting here too, not only in the map summary: issued =
        // observed + degraded + lost per technique.
        if let Some(map) = &map {
            if !map.fault_report.is_empty() {
                if let serde_json::Value::Object(root) = &mut v {
                    let mut faults = serde_json::Map::new();
                    for (technique, st) in &map.fault_report {
                        faults.insert(
                            technique.clone(),
                            serde_json::json!({
                                "issued": st.issued(),
                                "observed": st.observed,
                                "degraded": st.degraded,
                                "lost": st.lost,
                                "retries": st.retries,
                            }),
                        );
                    }
                    root.insert("faults".into(), serde_json::Value::Object(faults));
                }
            }
        }
        let path = format!("{}/metrics.json", args.out_dir);
        let text = serde_json::to_string_pretty(&v).expect("serializable");
        std::fs::write(&path, text).expect("write metrics");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &trace_file {
        let snap = itm_obs::trace::snapshot();
        let v = itm_obs::chrome_trace(&snap);
        let text = serde_json::to_string(&v).expect("serializable");
        std::fs::write(path, text).expect("write trace");
        eprintln!(
            "wrote {path} ({} events, {} dropped; open in Perfetto or chrome://tracing)",
            snap.records.len(),
            snap.dropped_events
        );
    }

    // Emit.
    let mut summary = String::new();
    for r in &results {
        let path = format!("{}/{}.csv", args.out_dir, r.id);
        std::fs::write(&path, r.csv()).expect("write csv");
        let text = r.text();
        print!("\n{text}");
        summary.push('\n');
        summary.push_str(&text);
    }
    let mut f =
        std::fs::File::create(format!("{}/summary.txt", args.out_dir)).expect("create summary");
    writeln!(
        f,
        "itm repro — size={}, seed={}, total {:.1?}",
        args.size,
        args.seed,
        t0.elapsed()
    )
    .unwrap();
    f.write_all(summary.as_bytes()).unwrap();
    eprintln!(
        "\nwrote {} experiment CSVs + summary.txt to {}/ [total {:.1?}]",
        results.len(),
        args.out_dir,
        t0.elapsed()
    );
}
