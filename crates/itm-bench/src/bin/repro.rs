//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p itm-bench --bin repro                 # everything
//! cargo run --release -p itm-bench --bin repro -- --exp fig2   # one artifact
//! cargo run --release -p itm-bench --bin repro -- --size small --seed 7
//! cargo run --release -p itm-bench --bin repro -- --ablations  # D1–D5 too
//! cargo run --release -p itm-bench --bin repro -- --exp coverage --metrics
//! ```
//!
//! Results land in `results/<id>.csv` plus a combined
//! `results/summary.txt`; `--metrics` additionally records pipeline
//! instrumentation (phase timings, probe budgets) to
//! `results/metrics.json`.

use itm_bench::{ablations, experiments, ExperimentResult};
use itm_core::{MapConfig, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};
use itm_topology::TopologyConfig;
use std::io::Write;
use std::time::Instant;

/// Experiment ids, in run order.
const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "fig1a",
    "fig1b",
    "fig2",
    "pathlen",
    "anycast",
    "coverage",
    "ecs",
    "pathpred",
    "recommend",
    "ipid",
    "visibility",
    "consolidation",
    "cachehost",
    "assoc",
    "staleness",
];

/// Ablation ids (run with `--ablations`, or singly via `--exp ab_*`).
const ABLATION_IDS: &[&str] = &[
    "ab_ecs_scope",
    "ab_resolver_assumption",
    "ab_collectors",
    "ab_recommend_features",
    "ab_probe_budget",
];

struct Args {
    exp: Option<String>,
    seed: u64,
    size: String,
    ablations: bool,
    out_dir: String,
    metrics: bool,
}

fn usage() -> String {
    format!(
        "usage: repro [--exp <id>] [--seed N] [--size small|default|large] \
         [--ablations] [--metrics] [--out DIR]\n\
         experiment ids: {}\n\
         ablation ids (with --exp): {}",
        EXPERIMENT_IDS.join(" "),
        ABLATION_IDS.join(" ")
    )
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: None,
        seed: 42,
        size: "default".into(),
        ablations: false,
        out_dir: "results".into(),
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => args.exp = it.next(),
            "--seed" => {
                let raw = it.next().unwrap_or_default();
                args.seed = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an integer, got {raw:?}");
                    std::process::exit(2);
                });
            }
            "--size" => args.size = it.next().unwrap_or_else(|| "default".into()),
            "--ablations" => args.ablations = true,
            "--metrics" => args.metrics = true,
            "--out" => args.out_dir = it.next().unwrap_or_else(|| "results".into()),
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    // Reject unknown experiment ids up front, before the (expensive)
    // substrate build.
    if let Some(exp) = args.exp.as_deref() {
        if !EXPERIMENT_IDS.contains(&exp) && !ABLATION_IDS.contains(&exp) {
            eprintln!("unknown experiment id {exp:?}\n{}", usage());
            std::process::exit(2);
        }
    }
    args
}

fn config_for(size: &str) -> SubstrateConfig {
    match size {
        "small" => SubstrateConfig::small(),
        "large" => SubstrateConfig {
            topology: TopologyConfig::large(),
            ..Default::default()
        },
        _ => SubstrateConfig::default(),
    }
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out_dir).expect("create output dir");

    if args.metrics {
        itm_obs::set_enabled(true);
        itm_obs::reset();
        // Pre-register the headline probe counters so metrics.json always
        // carries them (at zero) even when a run skips a technique.
        itm_obs::counter_with("probe.queries", &[("technique", "cache_probe")]);
        itm_obs::counter_with("probe.queries", &[("technique", "ecs_mapping")]);
        itm_obs::counter_with("probe.log_lines", &[("technique", "root_crawl")]);
        itm_obs::counter_with("probe.pings", &[("technique", "ipid_probe")]);
        itm_obs::counter_with("probe.connects", &[("technique", "tls_scan")]);
        itm_obs::counter_with("probe.connects", &[("technique", "sni_scan")]);
    }

    let cfg = config_for(&args.size);
    let t0 = Instant::now();
    eprintln!(
        "building substrate (size={}, seed={})…",
        args.size, args.seed
    );
    let s = Substrate::build(cfg.clone(), args.seed).expect("valid config");
    eprintln!(
        "  {} ASes, {} links, {} /24s, {} services [{:.1?}]",
        s.topo.n_ases(),
        s.topo.links.len(),
        s.topo.prefixes.len(),
        s.catalog.len(),
        t0.elapsed()
    );

    // Experiments that need the full map share one build.
    let needs_map = |id: &str| {
        matches!(
            id,
            "table1" | "fig1a" | "fig1b" | "fig2" | "coverage" | "ecs"
        )
    };
    let want = |id: &str| args.exp.as_deref().map(|e| e == id).unwrap_or(true);

    let map = if ["table1", "fig1a", "fig1b", "fig2", "coverage", "ecs"]
        .iter()
        .any(|id| want(id) && needs_map(id))
    {
        let t1 = Instant::now();
        eprintln!("running measurement pipeline…");
        let m = TrafficMap::build(&s, &MapConfig::default());
        eprintln!("  map built [{:.1?}]", t1.elapsed());
        Some(m)
    } else {
        None
    };

    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut run = |id: &str, f: &mut dyn FnMut() -> ExperimentResult| {
        if want(id) {
            let t = Instant::now();
            eprintln!("running {id}…");
            let r = f();
            eprintln!("  done [{:.1?}]", t.elapsed());
            results.push(r);
        }
    };

    if let Some(map) = &map {
        run("table1", &mut || experiments::table1(&s, map));
        run("fig1a", &mut || experiments::fig1a(&s, map));
        run("fig1b", &mut || experiments::fig1b(&s, map));
        run("fig2", &mut || experiments::fig2(&s, map));
        run("coverage", &mut || experiments::coverage_claims(&s, map));
        run("ecs", &mut || experiments::ecs(&s, map));
    }
    run("pathlen", &mut || experiments::pathlen(&s));
    run("anycast", &mut || experiments::anycast(&s));
    run("pathpred", &mut || experiments::pathpred(&s));
    run("recommend", &mut || experiments::recommend(&s));
    run("ipid", &mut || experiments::ipid(&s));
    run("visibility", &mut || experiments::visibility(&s));
    run("consolidation", &mut || experiments::consolidation(&s));
    run("cachehost", &mut || experiments::cachehost(&s));
    run("assoc", &mut || experiments::assoc(&s));
    run("staleness", &mut || experiments::staleness(&s));

    if args.ablations
        || args
            .exp
            .as_deref()
            .map(|e| e.starts_with("ab_"))
            .unwrap_or(false)
    {
        run("ab_ecs_scope", &mut || ablations::ab_ecs_scope(&s));
        run("ab_resolver_assumption", &mut || {
            ablations::ab_resolver_assumption(&cfg, args.seed)
        });
        run("ab_collectors", &mut || ablations::ab_collectors(&s));
        run("ab_recommend_features", &mut || {
            ablations::ab_recommend_features(&s)
        });
        run("ab_probe_budget", &mut || ablations::ab_probe_budget(&s));
    }

    if results.is_empty() {
        // `--exp ab_*` without --ablations still runs (handled above), so
        // the only way here is an ablation id filtered out by a logic bug.
        eprintln!(
            "no experiment matched {:?}\n{}",
            args.exp.as_deref().unwrap_or(""),
            usage()
        );
        std::process::exit(2);
    }

    if args.metrics {
        let report = itm_obs::snapshot();
        let path = format!("{}/metrics.json", args.out_dir);
        let text = serde_json::to_string_pretty(&report.to_json()).expect("serializable");
        std::fs::write(&path, text).expect("write metrics");
        eprintln!("wrote {path}");
    }

    // Emit.
    let mut summary = String::new();
    for r in &results {
        let path = format!("{}/{}.csv", args.out_dir, r.id);
        std::fs::write(&path, r.csv()).expect("write csv");
        let text = r.text();
        print!("\n{text}");
        summary.push('\n');
        summary.push_str(&text);
    }
    let mut f =
        std::fs::File::create(format!("{}/summary.txt", args.out_dir)).expect("create summary");
    writeln!(
        f,
        "itm repro — size={}, seed={}, total {:.1?}",
        args.size,
        args.seed,
        t0.elapsed()
    )
    .unwrap();
    f.write_all(summary.as_bytes()).unwrap();
    eprintln!(
        "\nwrote {} experiment CSVs + summary.txt to {}/ [total {:.1?}]",
        results.len(),
        args.out_dir,
        t0.elapsed()
    );
}
